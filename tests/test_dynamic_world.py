"""Tests for the dynamic-world layer: Timeline, generators, time-indexed
mobility operators, per-slot capacity views and the masked fleet kernels.

The two load-bearing contracts:

* **Golden seeds** — an empty timeline is bit-identical to the
  pre-refactor static path in both engines (digests captured from the
  code before the world layer existed);
* **Engine equivalence** — batch == loop bit-identically under any
  timeline (regimes + failures/capacity shocks + churn), and the fleet
  Monte-Carlo stays worker-count independent.

The worker count for sharded tests comes from ``REPRO_TEST_WORKERS``
(default 2) so CI can pin the process-pool path.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    trajectory_log_likelihoods,
)
from repro.core.strategies import get_strategy
from repro.mec.costs import CostModel
from repro.mec.fleet import (
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.placement import PlacementEngine
from repro.mec.policies import DistanceThresholdPolicy
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import ResultCache
from repro.sim.config import DynamicExperimentConfig
from repro.experiments.registry import run_experiment
from repro.world import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    Timeline,
    UserArrival,
    UserDeparture,
    dynamic_timeline,
    periodic_regime_events,
    poisson_site_failures,
    random_user_churn,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


@pytest.fixture(scope="module")
def chain9():
    return paper_synthetic_models(9, seed=2017)["non-skewed"]


@pytest.fixture(scope="module")
def regime9():
    return paper_synthetic_models(9, seed=2017)["temporally-skewed"]


@pytest.fixture(scope="module")
def grid9():
    return MECTopology.from_grid(GridTopology(3, 3), capacity=4)


def _digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


def _rich_timeline(regime) -> Timeline:
    return Timeline(
        events=(
            RegimeSwitch(slot=8, regime=1),
            RegimeSwitch(slot=16, regime=0),
            SiteDown(slot=5, cell=4),
            SiteUp(slot=12, cell=4),
            CapacityChange(slot=10, cell=0, capacity=1),
            SiteDown(slot=18, cell=1),
            UserArrival(slot=4, user=2),
            UserDeparture(slot=22, user=2),
            UserDeparture(slot=15, user=0),
            UserArrival(slot=9, user=5),
        ),
        regime_chains=(regime,),
    )


# ----------------------------------------------------------------------
# Timeline compilation semantics
# ----------------------------------------------------------------------


class TestTimelineCompile:
    def test_empty_timeline_is_static(self, chain9, grid9):
        schedule = Timeline().compile(
            horizon=10,
            n_cells=9,
            n_users=3,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        assert schedule.is_static
        assert schedule.transition_stack() is None
        assert np.all(schedule.capacities == 4)
        assert np.all(schedule.user_windows == [0, 10])

    def test_compiled_views(self, chain9, regime9, grid9):
        schedule = _rich_timeline(regime9).compile(
            horizon=30,
            n_cells=9,
            n_users=6,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        assert not schedule.is_static
        assert schedule.has_regime_switches
        assert schedule.has_capacity_events
        assert schedule.has_churn
        # regimes: 0 until slot 8, 1 until 16, 0 after
        assert schedule.regimes[7] == 0
        assert schedule.regimes[8] == 1
        assert schedule.regimes[16] == 0
        # capacities: site 4 down on [5, 12), site 0 shrunk from 10 on
        assert schedule.capacities[4, 4] == 4
        assert schedule.capacities[5, 4] == 0
        assert schedule.capacities[12, 4] == 4
        assert schedule.capacities[10, 0] == 1
        assert schedule.capacities[29, 1] == 0
        # windows
        assert list(schedule.user_windows[0]) == [0, 15]
        assert list(schedule.user_windows[2]) == [4, 22]
        assert list(schedule.user_windows[5]) == [9, 30]
        assert list(schedule.user_windows[1]) == [0, 30]
        active = schedule.active_users()
        assert active.shape == (6, 30)
        assert not active[2, 3] and active[2, 4] and not active[2, 22]

    def test_transition_stack_matches_regimes(self, chain9, regime9, grid9):
        schedule = _rich_timeline(regime9).compile(
            horizon=30,
            n_cells=9,
            n_users=6,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        stack = schedule.transition_stack()
        assert stack.shape == (29, 9, 9)
        # step into slot 8 follows regime 1; step into slot 7 the base
        assert np.array_equal(stack[6], chain9.transition_matrix)
        assert np.array_equal(stack[7], regime9.transition_matrix)

    def test_sparse_chains_compile_to_dense_stack(self, chain9, regime9, grid9):
        """Regression: ``compile`` densifies through ``dense_transition()``,
        so sparse base/regime chains yield the same per-slot stack as their
        dense twins instead of leaking CSR objects into ``matrices``."""
        from repro.mobility import SparseMarkovChain

        events = (RegimeSwitch(slot=5, regime=1),)
        kwargs = dict(
            horizon=12,
            n_cells=9,
            n_users=4,
            base_capacities=grid9.base_capacities(),
        )
        sparse_schedule = Timeline(
            events=events,
            regime_chains=(SparseMarkovChain.from_chain(regime9),),
        ).compile(base_chain=SparseMarkovChain.from_chain(chain9), **kwargs)
        dense_schedule = Timeline(
            events=events, regime_chains=(regime9,)
        ).compile(base_chain=chain9, **kwargs)
        for matrix in sparse_schedule.matrices:
            assert isinstance(matrix, np.ndarray)
        assert np.array_equal(
            sparse_schedule.transition_stack(), dense_schedule.transition_stack()
        )

    def test_siteup_restores_declared_capacity(self, chain9, grid9):
        timeline = Timeline(
            events=(
                CapacityChange(slot=2, cell=0, capacity=7),
                SiteDown(slot=4, cell=0),
                SiteUp(slot=6, cell=0),
            )
        )
        schedule = timeline.compile(
            horizon=10,
            n_cells=9,
            n_users=1,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        assert schedule.capacities[3, 0] == 7
        assert schedule.capacities[5, 0] == 0
        assert schedule.capacities[6, 0] == 7

    def test_events_beyond_horizon_are_inert(self, chain9, grid9):
        timeline = Timeline(events=(SiteDown(slot=50, cell=0),))
        schedule = timeline.compile(
            horizon=10,
            n_cells=9,
            n_users=1,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        assert schedule.is_static

    @pytest.mark.parametrize(
        "events, message",
        [
            ((UserArrival(slot=50, user=0),), "never be active"),
            (
                (UserArrival(slot=3, user=0), UserArrival(slot=5, user=0)),
                "more than one",
            ),
            ((UserDeparture(slot=0, user=0),), "empty activity window"),
            (
                (UserArrival(slot=5, user=0), UserDeparture(slot=3, user=0)),
                "empty activity window",
            ),
            ((SiteDown(slot=1, cell=99),), "outside the topology"),
            ((UserDeparture(slot=1, user=7),), "outside the fleet"),
            ((RegimeSwitch(slot=1, regime=3),), "undefined"),
        ],
    )
    def test_compile_rejects_bad_timelines(self, chain9, grid9, events, message):
        with pytest.raises(ValueError, match=message):
            Timeline(events=events).compile(
                horizon=10,
                n_cells=9,
                n_users=2,
                base_capacities=grid9.base_capacities(),
                base_chain=chain9,
            )

    def test_regime_chain_state_count_validated(self, chain9, grid9):
        other = paper_synthetic_models(10, seed=1)["non-skewed"]
        with pytest.raises(ValueError, match="states"):
            Timeline(
                events=(RegimeSwitch(slot=1, regime=1),), regime_chains=(other,)
            ).compile(
                horizon=10,
                n_cells=9,
                n_users=1,
                base_capacities=grid9.base_capacities(),
                base_chain=chain9,
            )


class TestGenerators:
    def test_periodic_regimes(self):
        events = periodic_regime_events(100, 25, 2)
        assert [(e.slot, e.regime) for e in events] == [(25, 1), (50, 0), (75, 1)]

    def test_poisson_failures_deterministic_and_paired(self):
        events = poisson_site_failures(60, 9, 0.3, seed=5, mean_downtime=4)
        assert events == poisson_site_failures(60, 9, 0.3, seed=5, mean_downtime=4)
        downs = [e for e in events if isinstance(e, SiteDown)]
        ups = [e for e in events if isinstance(e, SiteUp)]
        assert downs, "expected some failures at rate 0.3 over 60 slots"
        assert len(ups) <= len(downs)
        for up in ups:
            assert any(d.cell == up.cell and d.slot < up.slot for d in downs)

    def test_zero_rates_produce_no_events(self):
        assert poisson_site_failures(50, 9, 0.0, seed=1) == ()
        assert random_user_churn(50, 10, 0.0, seed=1) == ()

    def test_churn_windows_always_non_empty(self, chain9, grid9):
        events = random_user_churn(40, 30, 1.0, seed=9)
        schedule = Timeline(events=events).compile(
            horizon=40,
            n_cells=9,
            n_users=30,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        assert np.all(schedule.user_windows[:, 1] > schedule.user_windows[:, 0])

    def test_dynamic_timeline_deterministic(self, regime9):
        kwargs = dict(
            horizon=50,
            n_cells=9,
            n_users=10,
            seed=3,
            regime_chains=(regime9,),
            regime_period=10,
            failure_rate=0.2,
            churn_rate=0.5,
        )
        assert dynamic_timeline(**kwargs) == dynamic_timeline(**kwargs)


# ----------------------------------------------------------------------
# Time-indexed mobility operators
# ----------------------------------------------------------------------


class TestTimeVaryingChain:
    def test_base_stack_matches_static_sampling(self, chain9):
        stack = np.repeat(chain9.transition_matrix[None], 19, axis=0)
        t_static = chain9.sample_trajectory(20, np.random.default_rng(0))
        t_stack = chain9.sample_trajectory(
            20, np.random.default_rng(0), transition_stack=stack
        )
        assert np.array_equal(t_static, t_stack)
        initial = np.array([0, 3, 5])
        uniforms = np.random.default_rng(1).random((3, 19))
        assert np.array_equal(
            chain9.evolve_from_uniforms(initial, uniforms),
            chain9.evolve_from_uniforms(initial, uniforms, transition_stack=stack),
        )

    def test_scalar_and_batch_agree_under_stack(self, chain9, regime9):
        stack = np.stack(
            [
                (regime9 if t % 2 else chain9).transition_matrix
                for t in range(1, 25)
            ]
        )
        scalar = chain9.sample_trajectory(
            25, np.random.default_rng(7), transition_stack=stack
        )
        batched = chain9.sample_trajectories_batch(
            25, [np.random.default_rng(7)], transition_stack=stack
        )[0]
        assert np.array_equal(scalar, batched)

    def test_log_likelihoods_score_the_true_chain(self, chain9, regime9):
        stack = np.repeat(regime9.transition_matrix[None], 9, axis=0)
        traj = chain9.sample_trajectory(10, np.random.default_rng(3))
        scored = chain9.log_likelihoods(traj[None], transition_stack=stack)[0]
        expected = float(chain9.log_stationary[traj[0]]) + float(
            regime9.log_transition_matrix[traj[:-1], traj[1:]].sum()
        )
        assert scored == pytest.approx(expected)

    def test_stack_shape_validated(self, chain9):
        with pytest.raises(ValueError, match="transition_stack"):
            chain9.sample_trajectory(
                10,
                np.random.default_rng(0),
                transition_stack=np.eye(9)[None],
            )

    def test_ml_detector_uses_the_stack(self, chain9, regime9):
        # Two observations: one sampled from the base chain, one from the
        # regime chain.  Scoring under the regime stack must rank the
        # regime-generated row higher than scoring under the base chain
        # ranks it.
        rng = np.random.default_rng(11)
        base_row = chain9.sample_trajectory(60, rng)
        regime_row = regime9.sample_trajectory(60, rng)
        observed = np.stack([base_row, regime_row])
        stack = np.repeat(regime9.transition_matrix[None], 59, axis=0)
        static_scores = trajectory_log_likelihoods(chain9, observed)
        stacked_scores = trajectory_log_likelihoods(chain9, observed, stack)
        assert (stacked_scores[1] - stacked_scores[0]) > (
            static_scores[1] - static_scores[0]
        )
        detector = MaximumLikelihoodDetector()
        outcome = detector.detect(
            chain9, observed, np.random.default_rng(0), transition_stack=stack
        )
        assert outcome.scores == pytest.approx(stacked_scores)


# ----------------------------------------------------------------------
# Placement: per-slot capacity views, evictions, churn primitives
# ----------------------------------------------------------------------


class TestDynamicPlacement:
    def test_set_capacities_and_evict(self, grid9):
        engine = PlacementEngine(grid9)
        cells = engine.place_initial(np.array([0, 0, 0, 1]))
        assert list(cells) == [0, 0, 0, 1]
        engine.set_capacities(np.array([1, 4, 4, 4, 4, 4, 4, 4, 4]))
        new_cells, moved = engine.evict_overloaded(
            cells, np.ones(4, dtype=bool)
        )
        # rows 1 and 2 (latest placed on site 0) are pushed to the
        # nearest free site (cell 1: one hop, lowest index, room for
        # both); row 0 keeps its slot.
        assert list(moved) == [1, 2]
        assert new_cells[0] == 0
        assert list(new_cells[[1, 2]]) == [1, 1]
        assert engine.stats.evicted == 2
        assert engine.load[0] == 1
        assert engine.load[1] == 3

    def test_eviction_strands_when_world_is_full(self, chain9):
        topology = MECTopology.ring(3, capacity=1)
        engine = PlacementEngine(topology)
        cells = engine.place_initial(np.array([0, 1, 2]))
        engine.set_capacities(np.array([0, 1, 1]))
        new_cells, moved = engine.evict_overloaded(cells, np.ones(3, dtype=bool))
        assert moved.size == 0
        assert list(new_cells) == [0, 1, 2]
        assert engine.stats.stranded == 1
        assert engine.load[0] == 1  # still on the dead site

    def test_admit_arrivals_spills_and_strands(self):
        topology = MECTopology.ring(3, capacity=1)
        engine = PlacementEngine(topology)
        engine.place_initial(np.array([0]))
        placed = engine.admit_arrivals(np.array([0]))
        assert placed[0] in (1, 2)
        assert engine.stats.spilled == 1
        engine.admit_arrivals(np.array([3 - placed[0]]))  # the last free site
        # deployment now full: a further arrival strands at its request
        stranded = engine.admit_arrivals(np.array([0]))
        assert stranded[0] == 0
        assert engine.stats.stranded == 1
        assert engine.load[0] == 2

    def test_release_frees_slots(self, grid9):
        engine = PlacementEngine(grid9)
        cells = engine.place_initial(np.array([0, 0]))
        engine.release(cells)
        assert engine.load.sum() == 0
        with pytest.raises(ValueError, match="released more"):
            engine.release(np.array([0]))


# ----------------------------------------------------------------------
# Golden seeds: empty timeline == pre-refactor static path, bit for bit
# ----------------------------------------------------------------------

#: Digests pinning the static-path behaviour (same seeds, same configs,
#: both engines and the empty-timeline path all agree).  Regenerated when
#: ``paper_synthetic_models`` moved to SeedSequence-spawned generators
#: (the old ``default_rng(seed + offset)`` streams violated the seeding
#: contract), which re-drew the synthetic chains for every seed.
GOLDEN = {
    "case1": {
        "users": "bbcef84a8897757b",
        "plane": "5ad2a3e8e054c138",
        "cost": "fbacbfe3ea8d5f0e",
        "migrations": 396,
        "placement": {"admitted": 384, "spilled": 28, "rejected": 3},
        "tracking": "6071faff562d4b93",
        "detection": "f5a5fd42d16a2030",
        "total_cost": "1100.0",
    },
    "case2": {
        "users": "f7fc2e9a3fdd3168",
        "plane": "c81e8ac51256ac6f",
        "cost": "5269a1b15bd7fa0b",
        "migrations": 231,
        "placement": {"admitted": 175, "spilled": 68, "rejected": 3},
        "tracking": "a4c9a49169f54437",
        "detection": "17b0761f87b081d5",
        "total_cost": "561.7000000000002",
    },
}


def _golden_case(name: str, chain, topology) -> tuple[FleetSimulation, int]:
    if name == "case1":
        simulation = FleetSimulation(
            topology,
            chain,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=8, horizon=30, n_chaffs=1),
        )
        return simulation, 123
    simulation = FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("ML"),
        policy=DistanceThresholdPolicy(threshold=1),
        cost_model=CostModel(
            migration_cost_per_hop=0.7,
            migration_cost_fixed=0.3,
            communication_cost_per_hop=1.1,
            chaff_running_cost=0.25,
        ),
        config=FleetSimulationConfig(
            n_users=6,
            horizon=25,
            n_chaffs=(0, 1, 2, 1, 0, 2),
            start_cells=(0, 1, 2, 3, 4, 5),
        ),
    )
    return simulation, 777


class TestGoldenSeeds:
    @pytest.mark.parametrize("case", ["case1", "case2"])
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    @pytest.mark.parametrize("timeline", [None, Timeline()])
    def test_empty_timeline_matches_pre_refactor_golden(
        self, chain9, grid9, case, engine, timeline
    ):
        simulation, seed = _golden_case(case, chain9, grid9)
        if timeline is not None:
            simulation = FleetSimulation(
                grid9,
                chain9,
                strategy=simulation.strategies[0],
                policy=simulation.policy,
                cost_model=simulation.cost_model,
                config=simulation.config,
                timeline=timeline,
            )
        report = simulation.run(seed, engine=engine)
        evaluation = report.evaluate(chain9, MaximumLikelihoodDetector())
        golden = GOLDEN[case]
        assert _digest(report.user_trajectories) == golden["users"]
        assert (
            _digest(
                report.observations.trajectories,
                report.observations.service_ids,
                report.observations.owner_ids,
                report.observations.real_rows,
            )
            == golden["plane"]
        )
        assert _digest(report.per_user_cost) == golden["cost"]
        assert report.total_migrations == golden["migrations"]
        stats = report.placement.as_dict()
        for key, value in golden["placement"].items():
            assert stats[key] == value
        assert stats["evicted"] == 0 and stats["stranded"] == 0
        assert _digest(evaluation.tracking_per_user) == golden["tracking"]
        assert _digest(evaluation.detected_per_user) == golden["detection"]
        assert repr(report.total_cost) == golden["total_cost"]
        assert report.windows is None
        assert report.transition_stack is None

    def test_golden_case2_respects_per_user_strategies(self, chain9, grid9):
        # sanity: the heterogeneous case really exercises mixed budgets
        simulation, seed = _golden_case("case2", chain9, grid9)
        report = simulation.run(seed)
        budgets = simulation.config.chaffs_per_user()
        owners = report.observations.owner_ids
        for user, budget in enumerate(budgets):
            assert int((owners == user).sum()) == 1 + budget


# ----------------------------------------------------------------------
# Engine equivalence under dynamic worlds
# ----------------------------------------------------------------------


def _assert_reports_identical(batch, loop):
    assert np.array_equal(batch.user_trajectories, loop.user_trajectories)
    assert np.array_equal(
        batch.observations.trajectories, loop.observations.trajectories
    )
    assert np.array_equal(batch.observations.real_rows, loop.observations.real_rows)
    assert np.array_equal(batch.windows, loop.windows)
    assert batch.placement.as_dict() == loop.placement.as_dict()
    assert batch.total_migrations == loop.total_migrations
    for ledger_b, ledger_l in zip(batch.ledgers, loop.ledgers, strict=True):
        assert ledger_b.migration_total == ledger_l.migration_total
        assert ledger_b.communication_total == ledger_l.communication_total
        assert ledger_b.chaff_total == ledger_l.chaff_total
        assert ledger_b.migrations == ledger_l.migrations
        assert ledger_b.per_slot_totals == ledger_l.per_slot_totals


class TestDynamicEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 42, 999])
    def test_batch_equals_loop_under_rich_timeline(
        self, chain9, regime9, seed
    ):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=3)
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=6, horizon=30, n_chaffs=1),
            timeline=_rich_timeline(regime9),
        )
        batch = simulation.run(seed, engine="batch")
        loop = simulation.run(seed, engine="loop")
        _assert_reports_identical(batch, loop)
        assert batch.placement.evicted > 0  # the timeline actually bites
        for detector in (MaximumLikelihoodDetector(), RandomGuessDetector()):
            eval_b = batch.evaluate(chain9, detector)
            eval_l = loop.evaluate(chain9, detector)
            assert np.array_equal(eval_b.chosen_rows, eval_l.chosen_rows)
            assert np.array_equal(
                eval_b.tracking_per_user, eval_l.tracking_per_user
            )
            assert np.array_equal(
                eval_b.detected_per_user, eval_l.detected_per_user
            )

    def test_batch_equals_loop_under_generated_timeline(self, chain9, regime9):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=3)
        timeline = dynamic_timeline(
            horizon=25,
            n_cells=9,
            n_users=5,
            seed=3,
            regime_chains=(regime9,),
            regime_period=6,
            failure_rate=0.3,
            churn_rate=0.6,
        )
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=5, horizon=25, n_chaffs=1),
            timeline=timeline,
        )
        _assert_reports_identical(
            simulation.run(11, engine="batch"), simulation.run(11, engine="loop")
        )

    def test_histories_masked_exactly_on_windows(self, chain9, regime9):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=3)
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=6, horizon=30, n_chaffs=1),
            timeline=_rich_timeline(regime9),
        )
        report = simulation.run(0)
        slots = np.arange(30)
        live = (report.windows[:, :1] <= slots) & (slots < report.windows[:, 1:])
        assert np.all((report.observations.trajectories >= 0) == live)

    def test_inactive_slots_accrue_no_cost(self, chain9, regime9):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=4)
        timeline = Timeline(
            events=(UserArrival(slot=10, user=0), UserDeparture(slot=20, user=0))
        )
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=3, horizon=30, n_chaffs=1),
            timeline=timeline,
        )
        report = simulation.run(2)
        per_slot = report.ledgers[0].per_slot_totals
        assert per_slot[9] == 0.0  # nothing before arrival
        assert per_slot[29] == per_slot[20]  # nothing after departure
        assert report.ledgers[0].total > 0  # but the window itself is charged

    def test_monte_carlo_sharding_under_timeline(self, chain9, regime9):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=3)
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=5, horizon=25, n_chaffs=1),
            timeline=dynamic_timeline(
                horizon=25,
                n_cells=9,
                n_users=5,
                seed=3,
                regime_chains=(regime9,),
                regime_period=6,
                failure_rate=0.3,
                churn_rate=0.6,
            ),
        )
        serial = run_fleet_monte_carlo(simulation, n_runs=6, seed=5, workers=1)
        sharded = run_fleet_monte_carlo(
            simulation, n_runs=6, seed=5, workers=WORKERS
        )
        assert np.array_equal(serial.tracking_runs, sharded.tracking_runs)
        assert np.array_equal(serial.detection_runs, sharded.detection_runs)
        assert np.array_equal(serial.cost_runs, sharded.cost_runs)
        assert np.array_equal(serial.evicted_runs, sharded.evicted_runs)
        assert np.array_equal(serial.stranded_runs, sharded.stranded_runs)

    def test_infeasible_initial_world_rejected(self, chain9):
        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=1)
        timeline = Timeline(
            events=(SiteDown(slot=0, cell=0), SiteDown(slot=0, cell=1))
        )
        with pytest.raises(ValueError, match="slot 0"):
            FleetSimulation(
                topology,
                chain9,
                strategy=get_strategy("IM"),
                config=FleetSimulationConfig(n_users=4, horizon=10, n_chaffs=1),
                timeline=timeline,
            )

    def test_late_arrivals_relax_initial_feasibility(self, chain9):
        # 4 users x 2 services on 8 slots fits only because one user
        # arrives after another departed.
        topology = MECTopology.from_grid(GridTopology(2, 2), capacity=2)
        timeline = Timeline(
            events=(UserArrival(slot=6, user=3), UserDeparture(slot=4, user=0))
        )
        simulation = FleetSimulation(
            topology,
            paper_synthetic_models(4, seed=2017)["non-skewed"],
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=4, horizon=12, n_chaffs=1),
            timeline=timeline,
        )
        _assert_reports_identical(
            simulation.run(1, engine="batch"), simulation.run(1, engine="loop")
        )


# ----------------------------------------------------------------------
# The registered dynamic experiment
# ----------------------------------------------------------------------


def _small_dynamic_config(**overrides) -> DynamicExperimentConfig:
    base = dict(
        n_users=6,
        n_cells=9,
        site_capacity=3,
        horizon=16,
        n_runs=2,
        regime_period=5,
        failure_sweep=(0.0, 0.3),
        churn_sweep=(0.0, 0.5),
    )
    base.update(overrides)
    return DynamicExperimentConfig(**base)


class TestDynamicExperiment:
    def test_runs_and_reports_both_sweeps(self):
        result = run_experiment("dynamic", _small_dynamic_config())
        assert result.experiment_id == "dynamic"
        assert len(result.groups) == 2
        for series_list in result.groups.values():
            labels = [series.label for series in series_list]
            assert "detection-accuracy" in labels
            assert "forced-evictions" in labels
        assert "detection_at_max_failure_rate" in result.scalars

    def test_engine_and_workers_equivalence(self):
        base = run_experiment("dynamic", _small_dynamic_config())
        loop = run_experiment("dynamic", _small_dynamic_config(engine="loop"))
        pooled = run_experiment("dynamic", _small_dynamic_config(workers=WORKERS))
        assert base.scalars == loop.scalars
        assert base.scalars == pooled.scalars
        for name in base.groups:
            for series_b, series_o in zip(base.groups[name], loop.groups[name], strict=True):
                assert series_b.values == series_o.values
            for series_b, series_o in zip(base.groups[name], pooled.groups[name], strict=True):
                assert series_b.values == series_o.values

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _small_dynamic_config()
        first = run_experiment("dynamic", config, cache=cache)
        assert cache.misses == 1
        again = run_experiment("dynamic", config, cache=cache)
        assert cache.hits == 1
        assert again.scalars == first.scalars

    def test_config_round_trip_and_validation(self):
        config = _small_dynamic_config()
        assert DynamicExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="churn_rate"):
            DynamicExperimentConfig(churn_rate=1.5)
        with pytest.raises(ValueError, match="service slots"):
            DynamicExperimentConfig(n_users=500, n_cells=4, site_capacity=2)

    def test_cli_fleet_flags_switch_to_dynamic(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--users",
                "6",
                "--cells",
                "9",
                "--capacity",
                "3",
                "--runs",
                "1",
                "--horizon",
                "12",
                "--failure-rate",
                "0.2",
                "--churn-rate",
                "0.3",
                "--no-cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[dynamic]" in out
        assert "failure-rate" in out


class TestReviewRegressions:
    """Regressions for review findings on the dynamic-world refactor."""

    def test_stack_unaware_detector_raises_cleanly(self, chain9, regime9):
        # A regime-only (unmasked) report handed to a detector whose
        # detect() cannot score a time-varying chain must raise a clear
        # NotImplementedError, not a TypeError from kwarg forwarding.
        # (The strategy-aware detector used to be the example here; it is
        # stack-aware now, so the regression is pinned with a stub and
        # the advanced eavesdropper asserted to evaluate cleanly.)
        from repro.core.eavesdropper.advanced import StrategyAwareDetector
        from repro.core.eavesdropper.detector import (
            DetectionOutcome,
            TrajectoryDetector,
        )

        class StackUnawareDetector(TrajectoryDetector):
            name = "stack-unaware"

            def detect(self, chain, trajectories, rng):
                observed = np.asarray(trajectories, dtype=np.int64)
                return DetectionOutcome(
                    chosen_index=0,
                    scores=np.zeros(observed.shape[0]),
                    candidate_indices=np.arange(observed.shape[0]),
                )

        topology = MECTopology.from_grid(GridTopology(3, 3), capacity=4)
        simulation = FleetSimulation(
            topology,
            chain9,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=3, horizon=12, n_chaffs=1),
            timeline=Timeline(
                events=(RegimeSwitch(slot=4, regime=1),), regime_chains=(regime9,)
            ),
        )
        report = simulation.run(0)
        assert report.transition_stack is not None
        with pytest.raises(NotImplementedError, match="time-varying"):
            report.evaluate(chain9, StackUnawareDetector())
        # The Section VI-A eavesdropper is stack-aware now and scores the
        # regime report without complaint.
        evaluation = report.evaluate(
            chain9, StrategyAwareDetector(get_strategy("IM"))
        )
        assert evaluation.chosen_rows.shape == (3,)

    def test_fleet_subcommand_enables_only_requested_dynamics(self):
        # `fleet --failure-rate X` alone must not drag in regime
        # switching or the dynamic experiment's default churn.
        from repro.cli import build_parser, _build_config

        parser = build_parser()
        args = parser.parse_args(
            ["fleet", "--users", "6", "--cells", "9", "--capacity", "3",
             "--failure-rate", "0.1"]
        )
        config = _build_config(args, "dynamic")
        assert config.failure_rate == 0.1
        assert config.churn_rate == 0.0
        assert config.regime_period is None
        assert config.regime_model is None
        # ...while `run dynamic` keeps the experiment's defaults.
        args = parser.parse_args(["run", "dynamic"])
        defaults = DynamicExperimentConfig()
        config = _build_config(args, "dynamic")
        assert config.churn_rate == defaults.churn_rate
        assert config.regime_period == defaults.regime_period

    def test_explicit_zero_rate_still_opts_into_dynamic(self):
        # Flag presence (even at 0) opts into the dynamic experiment;
        # the resulting world simply has no failures.
        from repro.cli import build_parser, _wants_dynamic_world

        parser = build_parser()
        args = parser.parse_args(["fleet", "--failure-rate", "0"])
        assert _wants_dynamic_world(args)
        args = parser.parse_args(["fleet"])
        assert not _wants_dynamic_world(args)

    def test_unsorted_sweeps_report_true_max_scalars(self):
        # With a *descending* sweep the max-rate point is first, not
        # last: the "at_max" scalars must follow the rates, not the
        # listing position.
        result = run_experiment(
            "dynamic", _small_dynamic_config(failure_sweep=(0.3, 0.0),
                                             churn_sweep=(0.5, 0.0))
        )
        failure_group = next(
            series_list
            for name, series_list in result.groups.items()
            if name.startswith("failure-rate")
        )
        by_label = {series.label: series for series in failure_group}
        assert by_label["detection-accuracy"].index[0] == 0.3
        assert (
            result.scalars["detection_at_max_failure_rate"]
            == by_label["detection-accuracy"].values[0]
        )
        assert (
            result.scalars["evictions_at_max_failure_rate"]
            == by_label["forced-evictions"].values[0]
        )
        assert result.scalars["failure_privacy_shift"] == (
            by_label["detection-accuracy"].values[0]
            - by_label["detection-accuracy"].values[1]
        )
        churn_group = next(
            series_list
            for name, series_list in result.groups.items()
            if name.startswith("churn-rate")
        )
        churn_by_label = {series.label: series for series in churn_group}
        assert (
            result.scalars["detection_at_max_churn"]
            == churn_by_label["detection-accuracy"].values[0]
        )
        assert (
            result.scalars["cost_at_max_churn"]
            == churn_by_label["per-user-cost"].values[0]
        )

    def test_cumulative_stack_memoized(self, chain9, regime9):
        stack = np.repeat(regime9.transition_matrix[None], 9, axis=0)
        first = chain9._cumulative_stack(stack, 10)
        assert chain9._cumulative_stack(stack, 10) is first
        other = stack.copy()
        assert chain9._cumulative_stack(other, 10) is not first
