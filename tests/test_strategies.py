"""Tests for the chaff control strategies (IM, ML, CML, MO and the registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import (
    ChaffStrategy,
    ConstrainedMLController,
    ConstrainedMLStrategy,
    ImpersonatingStrategy,
    MaximumLikelihoodStrategy,
    MyopicOnlineController,
    MyopicOnlineStrategy,
    available_strategies,
    get_strategy,
)
from repro.core.strategies.base import StrategyRegistry, as_trajectory_array
from repro.core.trellis import most_likely_trajectory


class TestRegistry:
    def test_all_paper_strategies_registered(self):
        names = available_strategies()
        for expected in ("IM", "ML", "OO", "MO", "CML", "RML", "ROO", "RMO"):
            assert expected in names

    def test_get_strategy_case_insensitive(self):
        assert isinstance(get_strategy("im"), ImpersonatingStrategy)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            get_strategy("does-not-exist")

    def test_registry_rejects_non_strategy(self):
        registry = StrategyRegistry()
        with pytest.raises(TypeError):
            registry.register(dict)  # type: ignore[arg-type]

    def test_registry_rejects_duplicate_names(self):
        registry = StrategyRegistry()

        class First(ChaffStrategy):
            name = "dup"

            def generate(self, chain, user_trajectory, n_chaffs, rng):
                raise NotImplementedError

        class Second(ChaffStrategy):
            name = "dup"

            def generate(self, chain, user_trajectory, n_chaffs, rng):
                raise NotImplementedError

        registry.register(First)
        with pytest.raises(ValueError):
            registry.register(Second)

    def test_as_trajectory_array_validation(self):
        with pytest.raises(ValueError):
            as_trajectory_array([])
        with pytest.raises(ValueError):
            as_trajectory_array([[0, 1]])


class TestCommonStrategyContract:
    @pytest.mark.parametrize(
        "name", ["IM", "ML", "OO", "MO", "CML", "RML", "ROO", "RMO"]
    )
    def test_output_shape_and_range(self, name, random_chain, rng):
        strategy = get_strategy(name)
        user = random_chain.sample_trajectory(20, rng)
        chaffs = strategy.generate(random_chain, user, 3, rng)
        assert chaffs.shape == (3, 20)
        assert chaffs.min() >= 0 and chaffs.max() < random_chain.n_states

    @pytest.mark.parametrize(
        "name", ["IM", "ML", "OO", "MO", "CML", "RML", "ROO", "RMO"]
    )
    def test_rejects_zero_chaffs(self, name, random_chain, rng):
        strategy = get_strategy(name)
        user = random_chain.sample_trajectory(10, rng)
        with pytest.raises(ValueError):
            strategy.generate(random_chain, user, 0, rng)

    @pytest.mark.parametrize("name", ["IM", "ML", "OO", "MO", "CML"])
    def test_rejects_out_of_range_user(self, name, random_chain, rng):
        strategy = get_strategy(name)
        with pytest.raises(ValueError):
            strategy.generate(random_chain, np.array([0, 99]), 1, rng)

    def test_deterministic_flags(self):
        assert not get_strategy("IM").is_deterministic
        assert get_strategy("ML").is_deterministic
        assert get_strategy("OO").is_deterministic
        assert get_strategy("MO").is_deterministic
        assert get_strategy("CML").is_deterministic
        assert not get_strategy("RML").is_deterministic
        assert not get_strategy("ROO").is_deterministic
        assert not get_strategy("RMO").is_deterministic

    def test_online_flags(self):
        assert get_strategy("IM").is_online
        assert get_strategy("MO").is_online
        assert get_strategy("CML").is_online
        assert not get_strategy("OO").is_online
        assert not get_strategy("ROO").is_online

    def test_deterministic_map_none_for_randomised(self, random_chain, rng):
        user = random_chain.sample_trajectory(10, rng)
        assert get_strategy("IM").deterministic_map(random_chain, user) is None
        assert get_strategy("RML").deterministic_map(random_chain, user) is None

    @pytest.mark.parametrize("name", ["ML", "OO", "MO", "CML"])
    def test_deterministic_map_matches_first_chaff(self, name, random_chain, rng):
        strategy = get_strategy(name)
        user = random_chain.sample_trajectory(15, rng)
        gamma = strategy.deterministic_map(random_chain, user)
        chaffs = strategy.generate(random_chain, user, 1, np.random.default_rng(99))
        assert np.array_equal(gamma, chaffs[0])


class TestImpersonatingStrategy:
    def test_chaffs_follow_user_model_statistics(self, skewed_chain):
        rng = np.random.default_rng(0)
        strategy = ImpersonatingStrategy()
        user = skewed_chain.sample_trajectory(50, rng)
        chaffs = strategy.generate(skewed_chain, user, 40, rng)
        frequency = np.bincount(chaffs.ravel(), minlength=skewed_chain.n_states)
        frequency = frequency / frequency.sum()
        assert np.allclose(frequency, skewed_chain.stationary, atol=0.05)

    def test_chaffs_are_independent_of_user(self, random_chain):
        strategy = ImpersonatingStrategy()
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        user_a = np.zeros(10, dtype=np.int64)
        user_b = np.full(10, random_chain.n_states - 1, dtype=np.int64)
        chaffs_a = strategy.generate(random_chain, user_a, 2, rng_a)
        chaffs_b = strategy.generate(random_chain, user_b, 2, rng_b)
        assert np.array_equal(chaffs_a, chaffs_b)

    def test_different_chaffs_differ(self, random_chain, rng):
        strategy = ImpersonatingStrategy()
        user = random_chain.sample_trajectory(30, rng)
        chaffs = strategy.generate(random_chain, user, 2, rng)
        assert not np.array_equal(chaffs[0], chaffs[1])


class TestMaximumLikelihoodStrategy:
    def test_first_chaff_is_most_likely_trajectory(self, random_chain, rng):
        strategy = MaximumLikelihoodStrategy()
        user = random_chain.sample_trajectory(12, rng)
        chaffs = strategy.generate(random_chain, user, 1, rng)
        assert np.array_equal(chaffs[0], most_likely_trajectory(random_chain, 12))

    def test_chaff_likelihood_at_least_user(self, random_chain, rng):
        strategy = MaximumLikelihoodStrategy()
        for _ in range(10):
            user = random_chain.sample_trajectory(20, rng)
            chaff = strategy.generate(random_chain, user, 1, rng)[0]
            assert random_chain.log_likelihood(chaff) >= random_chain.log_likelihood(
                user
            ) - 1e-9

    def test_chaff_independent_of_user_trajectory(self, random_chain, rng):
        strategy = MaximumLikelihoodStrategy()
        user_a = random_chain.sample_trajectory(15, rng)
        user_b = random_chain.sample_trajectory(15, rng)
        chaff_a = strategy.generate(random_chain, user_a, 1, rng)[0]
        chaff_b = strategy.generate(random_chain, user_b, 1, rng)[0]
        assert np.array_equal(chaff_a, chaff_b)

    def test_skewed_chain_chaff_parks_in_hot_cell(self, skewed_chain, rng):
        strategy = MaximumLikelihoodStrategy()
        user = skewed_chain.sample_trajectory(8, rng)
        chaff = strategy.generate(skewed_chain, user, 1, rng)[0]
        assert np.all(chaff == 0)


class TestConstrainedMLStrategy:
    def test_chaff_never_colocates_with_user(self, random_chain, rng):
        strategy = ConstrainedMLStrategy()
        for _ in range(10):
            user = random_chain.sample_trajectory(25, rng)
            chaff = strategy.generate(random_chain, user, 1, rng)[0]
            assert not np.any(chaff == user)

    def test_controller_greedy_choice(self, skewed_chain):
        controller = ConstrainedMLController(skewed_chain)
        # User occupies the hot cell, so the chaff takes the second best.
        first = controller.step(0)
        assert first != 0
        # Next slot, user moves away; chaff may move to the hot cell.
        second = controller.step(3)
        assert second == 0

    def test_controller_rejects_bad_location(self, two_state_chain):
        controller = ConstrainedMLController(two_state_chain)
        with pytest.raises(ValueError):
            controller.step(7)

    def test_controller_all_excluded(self, two_state_chain):
        controller = ConstrainedMLController(two_state_chain)
        with pytest.raises(ValueError):
            controller.step(0, forbidden=frozenset({1}))

    def test_run_matches_stepwise(self, random_chain, rng):
        user = random_chain.sample_trajectory(15, rng)
        by_run = ConstrainedMLController(random_chain).run(user)
        controller = ConstrainedMLController(random_chain)
        by_step = np.array([controller.step(int(x)) for x in user])
        assert np.array_equal(by_run, by_step)


class TestMyopicOnlineStrategy:
    def test_online_causality(self, random_chain):
        """The chaff at slot t must not depend on the user's future."""
        strategy = MyopicOnlineStrategy()
        rng = np.random.default_rng(3)
        user = random_chain.sample_trajectory(20, rng)
        chaff_full = strategy.generate(random_chain, user, 1, np.random.default_rng(0))[0]
        # Change the future (last 5 slots) and re-run: the first 15 chaff
        # slots must be unchanged.
        altered = user.copy()
        altered[15:] = (altered[15:] + 1) % random_chain.n_states
        chaff_altered = strategy.generate(
            random_chain, altered, 1, np.random.default_rng(0)
        )[0]
        assert np.array_equal(chaff_full[:15], chaff_altered[:15])

    def test_avoids_user_when_likelihood_allows(self, random_chain, rng):
        strategy = MyopicOnlineStrategy()
        user = random_chain.sample_trajectory(30, rng)
        chaff = strategy.generate(random_chain, user, 1, rng)[0]
        # Co-location should be rare for a high-entropy user.
        assert np.mean(chaff == user) < 0.3

    def test_moves_to_ml_location_when_user_not_there(self, skewed_chain):
        controller = MyopicOnlineController(skewed_chain)
        # User starts away from the hot cell: chaff takes the hot cell.
        assert controller.step(2) == 0

    def test_takes_second_best_when_user_on_ml_cell_under_tie(self):
        """When another cell ties with the user's (ML) cell in stationary
        probability, Algorithm 2 moves the chaff there instead of
        co-locating."""
        from repro.mobility.models import uniform_iid_model

        controller = MyopicOnlineController(uniform_iid_model(5))
        chaff = controller.step(0)
        assert chaff != 0

    def test_colocates_when_user_cell_strictly_dominates(self, skewed_chain):
        """If the user sits on the strictly dominant cell, no other cell can
        match the likelihood, so Algorithm 2 accepts co-location (case 3)."""
        controller = MyopicOnlineController(skewed_chain)
        assert controller.step(0) == 0

    def test_gamma_tracks_log_likelihood_gap(self, random_chain, rng):
        user = random_chain.sample_trajectory(12, rng)
        controller = MyopicOnlineController(random_chain)
        chaff = np.array([controller.step(int(x)) for x in user])
        expected_gamma = random_chain.log_likelihood(user) - random_chain.log_likelihood(
            chaff
        )
        assert np.isclose(controller.gamma, expected_gamma)

    def test_forbidden_cells_respected(self, random_chain, rng):
        controller = MyopicOnlineController(random_chain)
        forbidden = frozenset({1, 2, 3})
        for _t in range(10):
            user_cell = int(rng.integers(0, random_chain.n_states))
            chaff = controller.step(user_cell, forbidden)
            assert chaff not in forbidden

    def test_too_many_forbidden_cells(self, two_state_chain):
        controller = MyopicOnlineController(two_state_chain)
        with pytest.raises(ValueError):
            controller.step(0, forbidden=frozenset({0, 1}))

    def test_chaff_keeps_likelihood_advantage_when_possible(self, random_chain, rng):
        # Whenever the chaff is not co-located at the end of the horizon, MO
        # guarantees gamma <= 0 or it moved to the ML cell; just check the
        # strategy usually ends with non-positive gamma for a random user.
        strategy = MyopicOnlineStrategy()
        wins = 0
        for seed in range(20):
            local_rng = np.random.default_rng(seed)
            user = random_chain.sample_trajectory(40, local_rng)
            chaff = strategy.generate(random_chain, user, 1, local_rng)[0]
            if random_chain.log_likelihood(chaff) >= random_chain.log_likelihood(user):
                wins += 1
        assert wins >= 18
