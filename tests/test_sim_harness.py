"""Tests for experiment configs, result containers, the Monte-Carlo runner
and the strategy sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eavesdropper import MaximumLikelihoodDetector
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.sim.config import SyntheticExperimentConfig, TraceExperimentConfig
from repro.sim.monte_carlo import MonteCarloRunner, run_game_monte_carlo
from repro.sim.results import ExperimentResult, SeriesResult, to_jsonable
from repro.sim.runner import sweep_strategies


class TestSyntheticConfig:
    def test_defaults_match_paper(self):
        config = SyntheticExperimentConfig()
        assert config.n_cells == 10
        assert config.horizon == 100
        assert config.n_runs == 1000

    def test_roundtrip_dict(self):
        config = SyntheticExperimentConfig(
            n_runs=50, strategies=("IM", "OO"), mobility_models=("non-skewed",)
        )
        assert SyntheticExperimentConfig.from_dict(config.to_dict()) == config

    def test_scaled_copy(self):
        config = SyntheticExperimentConfig().scaled(n_runs=10, horizon=20)
        assert config.n_runs == 10 and config.horizon == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticExperimentConfig(n_cells=1)
        with pytest.raises(ValueError):
            SyntheticExperimentConfig(n_runs=0)
        with pytest.raises(ValueError):
            SyntheticExperimentConfig(strategies=())


class TestTraceConfig:
    def test_defaults(self):
        config = TraceExperimentConfig()
        assert config.n_nodes == 174
        assert config.horizon == 100

    def test_roundtrip_dict(self):
        config = TraceExperimentConfig(n_nodes=30, strategies=("IM", "OO"))
        assert TraceExperimentConfig.from_dict(config.to_dict()) == config

    def test_scaled(self):
        config = TraceExperimentConfig().scaled(n_nodes=20, n_towers=30, horizon=40)
        assert (config.n_nodes, config.n_towers, config.horizon) == (20, 30, 40)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceExperimentConfig(n_nodes=1)
        with pytest.raises(ValueError):
            TraceExperimentConfig(top_k_users=0)


class TestSeriesResult:
    def test_from_array_and_stats(self):
        series = SeriesResult.from_array("x", np.array([1.0, 2.0, 3.0]), index=[0, 1, 2])
        assert series.mean_value() == 2.0
        assert series.final_value() == 3.0

    def test_roundtrip_dict(self):
        series = SeriesResult.from_array("x", [0.1, 0.2], index=[1, 2], note="hi")
        restored = SeriesResult.from_dict(series.to_dict())
        assert restored == series

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesResult(label="", values=(1.0,))
        with pytest.raises(ValueError):
            SeriesResult(label="x", values=(1.0,), index=(1.0, 2.0))


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="figX",
            description="demo",
            groups={"g": [SeriesResult.from_array("a", [1.0, 2.0])]},
            scalars={"s": 3.0},
            config={"n": 1},
        )

    def test_series_lookup(self):
        result = self._result()
        assert result.series("g", "a").values == (1.0, 2.0)
        assert result.group_labels("g") == ["a"]
        with pytest.raises(KeyError):
            result.series("g", "missing")

    def test_roundtrip_dict(self):
        result = self._result()
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_save_and_load(self, tmp_path):
        result = self._result()
        path = result.save(tmp_path / "out" / "figx.json")
        assert path.exists()
        assert ExperimentResult.load(path) == result

    def test_summary_lines(self):
        lines = self._result().summary_lines()
        assert any("figX" in line for line in lines)
        assert any("s = 3" in line for line in lines)

    def test_to_jsonable_handles_numpy(self):
        data = to_jsonable({"a": np.float64(1.5), "b": np.arange(3), "c": (np.int64(2),)})
        assert data == {"a": 1.5, "b": [0, 1, 2], "c": [2]}

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(experiment_id="", description="x")


class TestMonteCarloRunner:
    def test_reproducible_across_calls(self, random_chain):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        a = MonteCarloRunner(n_runs=10, seed=3).run(game, horizon=15)
        b = MonteCarloRunner(n_runs=10, seed=3).run(game, horizon=15)
        assert np.array_equal(a.per_slot_accuracy, b.per_slot_accuracy)

    def test_different_seeds_differ(self, random_chain):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        a = MonteCarloRunner(n_runs=10, seed=3).run(game, horizon=15)
        b = MonteCarloRunner(n_runs=10, seed=4).run(game, horizon=15)
        assert not np.array_equal(a.per_slot_accuracy, b.per_slot_accuracy)

    def test_n_episodes_recorded(self, random_chain):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        stats = MonteCarloRunner(n_runs=7, seed=0).run(game, horizon=5)
        assert stats.n_episodes == 7

    def test_user_trajectory_provider(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        fixed = random_chain.sample_trajectory(12, rng)
        runner = MonteCarloRunner(n_runs=4, seed=1)
        episodes = runner.run_episodes(
            game, user_trajectory_provider=lambda run, run_rng: fixed
        )
        for episode in episodes:
            assert np.array_equal(episode.user_trajectory, fixed)

    def test_background_provider(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        background = random_chain.sample_trajectories(3, 10, rng)
        runner = MonteCarloRunner(n_runs=2, seed=1)
        episodes = runner.run_episodes(
            game, horizon=10, background_provider=lambda run, run_rng: background
        )
        assert episodes[0].observed_trajectories.shape == (5, 10)

    def test_requires_exactly_one_source(self, random_chain):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        runner = MonteCarloRunner(n_runs=2, seed=0)
        with pytest.raises(ValueError):
            runner.run(game)
        with pytest.raises(ValueError):
            runner.run(
                game, horizon=5, user_trajectory_provider=lambda run, run_rng: None
            )

    def test_invalid_run_count(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(n_runs=0)

    def test_convenience_wrapper(self, random_chain):
        game = PrivacyGame(
            random_chain, get_strategy("OO"), MaximumLikelihoodDetector(), n_services=2
        )
        stats = run_game_monte_carlo(game, n_runs=5, horizon=10, seed=2)
        assert stats.horizon == 10


class TestStrategySweep:
    def test_sweep_produces_all_series(self, random_chain):
        sweep = sweep_strategies(
            random_chain,
            MaximumLikelihoodDetector(),
            {"IM (N = 2)": ("IM", 2), "OO (N = 2)": ("OO", 2)},
            horizon=15,
            n_runs=5,
            seed=0,
        )
        assert set(sweep.statistics) == {"IM (N = 2)", "OO (N = 2)"}
        series = sweep.series()
        assert len(series) == 2
        assert all(len(item.values) == 15 for item in series)

    def test_sweep_accepts_strategy_instances(self, random_chain):
        sweep = sweep_strategies(
            random_chain,
            MaximumLikelihoodDetector(),
            {"custom": (get_strategy("CML"), 2)},
            horizon=10,
            n_runs=3,
            seed=1,
        )
        assert "custom" in sweep.statistics

    def test_sweep_ordering_oo_below_im(self, random_chain):
        sweep = sweep_strategies(
            random_chain,
            MaximumLikelihoodDetector(),
            {"IM": ("IM", 2), "OO": ("OO", 2)},
            horizon=30,
            n_runs=30,
            seed=5,
        )
        assert (
            sweep.statistics["OO"].tracking_accuracy
            < sweep.statistics["IM"].tracking_accuracy
        )
