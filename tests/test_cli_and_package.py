"""Tests for the CLI entry point and the top-level package surface."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main
from repro.sim.results import ExperimentResult


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        chain = repro.paper_synthetic_models(10)["non-skewed"]
        game = repro.PrivacyGame(
            chain, repro.get_strategy("OO"), repro.MaximumLikelihoodDetector()
        )
        episode = game.run_episode(np.random.default_rng(0), horizon=50)
        assert 0.0 <= episode.tracking_accuracy <= 1.0

    def test_available_strategies_and_experiments(self):
        assert "OO" in repro.available_strategies()
        assert "fig5" in repro.available_experiments()


class TestCLI:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output and "fig10" in output

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4", "--runs", "5", "--horizon", "10"]) == 0
        output = capsys.readouterr().out
        assert "fig4" in output
        assert "kl/temporally-skewed" in output

    def test_run_with_output_file(self, tmp_path, capsys):
        destination = tmp_path / "fig4.json"
        assert (
            main(
                [
                    "run",
                    "fig4",
                    "--runs",
                    "5",
                    "--horizon",
                    "10",
                    "--output",
                    str(destination),
                ]
            )
            == 0
        )
        assert destination.exists()
        loaded = ExperimentResult.from_dict(json.loads(destination.read_text()))
        assert loaded.experiment_id == "fig4"

    def test_run_synthetic_with_small_budget(self, capsys):
        assert (
            main(["run", "ablation-chaff-budget", "--runs", "5", "--horizon", "15"]) == 0
        )
        output = capsys.readouterr().out
        assert "ablation-chaff-budget" in output

    def test_run_trace_experiment_scaled(self, capsys):
        assert (
            main(
                [
                    "run",
                    "fig8",
                    "--nodes",
                    "30",
                    "--towers",
                    "40",
                    "--horizon",
                    "30",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fig8" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])
