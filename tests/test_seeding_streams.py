"""Stream pins for the SeedSequence spawn discipline.

The seeding contract (``repro.sim.seeding``) says every random stream in
the package derives from spawned SeedSequence children, with the calling
subsystem's identity mixed in through a string ``key``.  These tests pin
the *streams themselves*: the key-mixing algebra, plus golden digests of
the two world-defining draws ("paper-models" for the synthetic chains,
"taxi-world" for the trace dataset).  A digest change here means every
downstream golden — Fig. 9's tracked-user set, the fleet golden seeds —
shifts with it, so it must be deliberate.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.experiments.trace_common import build_taxi_dataset
from repro.mobility.models import paper_synthetic_models
from repro.sim.config import TraceExperimentConfig
from repro.sim.seeding import (
    as_seed_sequence,
    spawn_generators,
    spawn_sequences,
    spawn_sequences_range,
)


def _digest(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


class TestKeyMixing:
    def test_same_seed_and_key_reproduce_the_streams(self):
        a = spawn_generators(123, 4, key="unit-test")
        b = spawn_generators(123, 4, key="unit-test")
        for rng_a, rng_b in zip(a, b, strict=True):
            assert np.array_equal(rng_a.random(8), rng_b.random(8))

    def test_different_keys_derive_disjoint_families(self):
        a, b = spawn_generators(123, 1, key="alpha")[0], spawn_generators(
            123, 1, key="beta"
        )[0]
        assert not np.array_equal(a.random(8), b.random(8))

    def test_key_differs_from_bare_seed(self):
        keyed = spawn_generators(123, 1, key="alpha")[0]
        bare = spawn_generators(123, 1)[0]
        assert not np.array_equal(keyed.random(8), bare.random(8))

    def test_key_on_spawned_sequence_rejected(self):
        child = spawn_sequences(0, 1)[0]
        with pytest.raises(ValueError, match="integer master seed"):
            as_seed_sequence(child, key="late")

    def test_range_spawn_matches_full_spawn(self):
        full = spawn_sequences(99, 6)
        shard = spawn_sequences_range(99, 2, 5)
        for seq_full, seq_shard in zip(full[2:5], shard, strict=True):
            assert seq_full.entropy == seq_shard.entropy
            assert seq_full.spawn_key == seq_shard.spawn_key


class TestWorldStreamPins:
    """Golden digests of the two world-selecting spawn keys.

    ``paper_synthetic_models`` ("paper-models") and the synthetic taxi
    dataset ("taxi-world") were both validated against the paper's
    qualitative findings under exactly these streams; regenerating either
    world is a semantic change, not a refactor.
    """

    MODEL_DIGESTS = {
        "non-skewed": "a5440adc1c916f14",
        "spatially-skewed": "b5cdc8cd887fdcde",
        "temporally-skewed": "9be346cf5ff0100c",
        "spatially&temporally-skewed": "f6251f19fc7dc850",
    }

    def test_paper_models_stream_pinned(self):
        models = paper_synthetic_models(9, seed=2017)
        assert {
            name: _digest(chain.transition_matrix) for name, chain in models.items()
        } == self.MODEL_DIGESTS

    def test_taxi_world_stream_pinned(self):
        dataset = build_taxi_dataset(
            TraceExperimentConfig(n_nodes=12, n_towers=20, horizon=10, seed=7)
        )
        assert _digest(dataset.trajectories) == "e9487a4e138aabc0"
