"""Integration tests for the experiment modules (figures and ablations).

These run every experiment at a reduced scale and check the qualitative
findings the paper reports, which is what the reproduction is accountable
for: orderings between strategies, decay behaviour, skewness relations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    available_experiments,
    run_chaff_budget_sweep,
    run_cost_privacy_tradeoff,
    run_experiment,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_migration_policy_comparison,
)
from repro.sim.config import SyntheticExperimentConfig
from repro.sim.results import ExperimentResult

#: Reduced-scale config shared by the synthetic-experiment tests.
SMALL = SyntheticExperimentConfig(n_runs=40, horizon=60)
TINY = SyntheticExperimentConfig(n_runs=15, horizon=40)


@pytest.fixture(scope="module")
def fig5_result() -> ExperimentResult:
    return run_fig5(SMALL)


class TestRegistry:
    def test_all_figures_registered(self):
        experiments = available_experiments()
        for expected in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"):
            assert expected in experiments

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("fig4", SMALL)
        assert result.experiment_id == "fig4"


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_fig4(SyntheticExperimentConfig())

    def test_four_groups(self, result):
        assert len(result.groups) == 4

    def test_distributions_sum_to_one(self, result):
        for label in result.groups:
            series = result.series(label, "steady-state")
            assert np.isclose(sum(series.values), 1.0)

    def test_temporally_skewed_models_have_high_kl(self, result):
        assert result.scalars["kl/temporally-skewed"] > 5.0
        assert result.scalars["kl/spatially&temporally-skewed"] > 5.0
        assert result.scalars["kl/non-skewed"] < 1.0
        assert result.scalars["kl/spatially-skewed"] < 1.0

    def test_spatial_skew_ordering(self, result):
        assert (
            result.scalars["spatial/spatially&temporally-skewed"]
            > result.scalars["spatial/temporally-skewed"]
        )

    def test_temporally_skewed_steady_state_near_uniform(self, result):
        series = result.series("temporally-skewed", "steady-state")
        assert max(series.values) < 0.15


class TestFig5:
    def test_all_series_present(self, fig5_result):
        for label in fig5_result.groups:
            assert len(fig5_result.groups[label]) == 6

    def test_oo_and_mo_decay_to_near_zero(self, fig5_result):
        """The paper's headline result: OO/MO drive tracking accuracy toward
        zero while IM/ML stay bounded away from it (non-skewed model)."""
        group = "non-skewed"
        oo = fig5_result.series(group, "OO (N = 2)")
        mo = fig5_result.series(group, "MO (N = 2)")
        assert np.mean(oo.values[-10:]) < 0.1
        assert np.mean(mo.values[-10:]) < 0.1

    def test_im_stays_bounded_away_from_zero(self, fig5_result):
        group = "non-skewed"
        im = fig5_result.series(group, "IM (N = 2)")
        assert np.mean(im.values[-10:]) > 0.3

    def test_more_im_chaffs_reduce_accuracy(self, fig5_result):
        for group in fig5_result.groups:
            im2 = fig5_result.series(group, "IM (N = 2)").mean_value()
            im10 = fig5_result.series(group, "IM (N = 10)").mean_value()
            assert im10 < im2

    def test_skewed_mobility_is_easier_to_track(self, fig5_result):
        """More predictable users are tracked more accurately (same strategy)."""
        im_nonskewed = fig5_result.series("non-skewed", "IM (N = 2)").mean_value()
        im_both = fig5_result.series(
            "spatially&temporally-skewed", "IM (N = 2)"
        ).mean_value()
        assert im_both > im_nonskewed

    def test_oo_never_worse_than_cml(self, fig5_result):
        """OO is optimal among likelihood-qualified chaffs; CML is its
        analysable upper bound."""
        for group in fig5_result.groups:
            oo = fig5_result.series(group, "OO (N = 2)").mean_value()
            cml = fig5_result.series(group, "CML (N = 2)").mean_value()
            assert oo <= cml + 0.05

    def test_all_values_are_probabilities(self, fig5_result):
        for series_list in fig5_result.groups.values():
            for series in series_list:
                assert min(series.values) >= 0.0
                assert max(series.values) <= 1.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_fig6(TINY)

    def test_cdf_monotone_and_bounded(self, result):
        for series_list in result.groups.values():
            for series in series_list:
                values = np.asarray(series.values)
                assert np.all(np.diff(values) >= -1e-12)
                assert values[-1] <= 1.0 + 1e-12

    def test_mean_ct_negative_for_non_skewed(self, result):
        """E[c_t] < 0 is the decay condition; it holds for the random model."""
        assert result.scalars["non-skewed/CML/mean_ct"] < 0
        assert result.scalars["non-skewed/MO/mean_ct"] < 0

    def test_strategies_present(self, result):
        for group in result.groups:
            labels = {series.label for series in result.groups[group]}
            assert labels == {"CML", "MO"}


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return run_fig7(SyntheticExperimentConfig(n_runs=25, horizon=50), n_services=6)

    def test_all_strategies_present(self, result):
        for group in result.groups:
            labels = {series.label for series in result.groups[group]}
            assert labels == {"IM", "RML", "ROO", "RMO"}

    def test_robust_oo_beats_im_under_advanced_eavesdropper(self, result):
        """ROO should protect a non-skewed user better than IM even when the
        eavesdropper knows the strategy family."""
        group = "non-skewed"
        roo = result.scalars[f"{group}/ROO/tracking"]
        im = result.scalars[f"{group}/IM/tracking"]
        assert roo < im + 0.05

    def test_accuracies_are_probabilities(self, result):
        for value in result.scalars.values():
            assert 0.0 <= value <= 1.0


class TestAblations:
    def test_chaff_budget_sweep_matches_eq11(self):
        result = run_chaff_budget_sweep(
            SyntheticExperimentConfig(
                n_runs=60, horizon=40, mobility_models=("non-skewed",)
            ),
            budgets=(2, 4, 8),
        )
        simulated = result.series("non-skewed", "simulated")
        analytic = result.series("non-skewed", "eq11")
        for sim_value, ana_value in zip(simulated.values, analytic.values, strict=True):
            # ~3 standard errors at this test's 60-run budget; the gap
            # closes well below 0.05 at the paper's 1000 runs.
            assert abs(sim_value - ana_value) < 0.16
        # Monotone decrease with the budget.
        assert simulated.values[0] >= simulated.values[-1]

    def test_cost_privacy_tradeoff_costs_increase_with_chaffs(self):
        result = run_cost_privacy_tradeoff(
            SyntheticExperimentConfig(
                n_runs=10, horizon=30, mobility_models=("non-skewed",)
            ),
            chaff_counts=(0, 2),
            n_runs=5,
        )
        costs = result.series("non-skewed", "total-cost").values
        assert costs[-1] > costs[0]

    def test_migration_policy_comparison(self):
        result = run_migration_policy_comparison(
            SyntheticExperimentConfig(
                n_runs=10, horizon=30, mobility_models=("non-skewed",)
            ),
            n_runs=5,
        )
        assert result.scalars["always-follow/colocation"] == 1.0
        assert result.scalars["never-migrate/colocation"] < 1.0
        # The MDP policy is cost-aware: never more expensive than blind
        # always-follow by more than noise.
        assert result.scalars["mdp/cost"] <= result.scalars["always-follow/cost"] * 1.2
