"""Tests for the deterministic telemetry layer.

The hard contract under test: recording telemetry is *observation only*.
A fleet Monte-Carlo instrumented with a live :class:`Recorder` must be
bit-identical — every per-run array, every RNG stream — to the same run
under :data:`NULL_RECORDER`, across every engine, stack and worker
combination.  Around that: recorder semantics (span nesting, counter and
gauge folding, worker merge attribution), golden files for both export
shapes, the result-cache latency counters, and the cache-key guarantee
that telemetry knobs never fragment cached results.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.experiments.registry import run_experiment
from repro.mec.fleet import (
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import EXECUTION_ONLY_KEYS, ResultCache, experiment_cache_key
from repro.sim.config import FleetExperimentConfig
from repro.sim.results import ExperimentResult
from repro.telemetry import (
    METRICS_SCHEMA,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    chrome_trace,
    default_clock,
    metrics_json,
    phase_summary_table,
    write_metrics,
    write_trace,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "telemetry"

_STATISTIC_ARRAYS = (
    "tracking_runs",
    "detection_runs",
    "cost_runs",
    "migrations_runs",
    "rejected_runs",
    "spilled_runs",
    "evicted_runs",
    "stranded_runs",
)


class FakeClock:
    """Deterministic clock: each call advances by a fixed step (module
    level so recorder specs carrying it survive pickling into workers)."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def golden_recorder() -> Recorder:
    """The fixed recorder both golden files are generated from."""
    recorder = Recorder(clock=FakeClock())
    with recorder.span("kernel/sample", engine="batch", users=2):
        with recorder.span("kernel/placement", slots=8):
            recorder.counter("placement/admitted", 5)
    recorder.counter("placement/admitted", 3)
    recorder.gauge("parallel/workers", 2.0)
    recorder.merge(
        {
            "spans": [
                {"name": "shard", "ts": 0.25, "dur": 1.0, "tid": 0, "depth": 0}
            ],
            "counters": {"montecarlo/episodes": 4},
            "gauges": {},
        },
        worker=1,
    )
    return recorder


@pytest.fixture(scope="module")
def chain9():
    return paper_synthetic_models(9, seed=3)["non-skewed"]


def _simulation(chain, n_users: int = 4, horizon: int = 24) -> FleetSimulation:
    topology = MECTopology.from_grid(GridTopology(3, 3), capacity=4)
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=n_users, horizon=horizon, n_chaffs=1
        ),
    )


class TestRecorder:
    def test_span_nesting_records_depth_and_args(self):
        recorder = Recorder(clock=FakeClock())
        with recorder.span("outer", engine="batch"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["args"] == {"engine": "batch"}
        assert "args" not in inner
        assert inner["dur"] > 0 and outer["dur"] > inner["dur"]

    def test_begin_end_token_pair_matches_span(self):
        recorder = Recorder(clock=FakeClock())
        token = recorder.begin("phase", slots=7)
        recorder.end(token)
        (span,) = recorder.spans
        assert span["name"] == "phase"
        assert span["args"] == {"slots": 7}
        assert span["dur"] == pytest.approx(0.5)

    def test_counters_accumulate_and_gauges_overwrite(self):
        recorder = Recorder(clock=FakeClock())
        recorder.counter("episodes", 3)
        recorder.counter("episodes")
        recorder.gauge("workers", 2.0)
        recorder.gauge("workers", 4.0)
        assert recorder.counters == {"episodes": 4}
        assert recorder.gauges == {"workers": 4.0}

    def test_record_stats_flattens_and_types(self):
        recorder = Recorder(clock=FakeClock())
        recorder.record_stats(
            "cache",
            {
                "hits": 3,
                "hit_time_s": 0.25,
                "warm": True,
                "nested": {"misses": 2},
            },
        )
        assert recorder.counters == {"cache/hits": 3, "cache/nested/misses": 2}
        assert recorder.gauges == {"cache/hit_time_s": 0.25, "cache/warm": 1.0}

    def test_merge_sums_counters_and_attributes_workers(self):
        parent = Recorder(clock=FakeClock())
        parent.counter("episodes", 2)
        state = {
            "spans": [
                {"name": "shard", "ts": 1.0, "dur": 2.0, "tid": 0, "depth": 0},
                # Already attributed by a deeper merge: must keep tid 3.
                {"name": "point", "ts": 1.0, "dur": 1.0, "tid": 3, "depth": 1},
            ],
            "counters": {"episodes": 5},
            "gauges": {"workers": 2.0},
        }
        parent.merge(state, worker=7)
        assert [span["tid"] for span in parent.spans] == [7, 3]
        assert parent.counters == {"episodes": 7}
        assert parent.gauges == {"workers": 2.0}

    def test_spawn_spec_roundtrips_the_clock(self):
        clock = FakeClock()
        worker = Recorder(clock=clock).spawn_spec().build()
        with worker.span("w"):
            pass
        assert worker.spans[0]["dur"] == pytest.approx(0.5)

    def test_phase_totals_aggregates_per_name(self):
        recorder = Recorder(clock=FakeClock())
        for _ in range(3):
            with recorder.span("kernel/sample"):
                pass
        totals = recorder.phase_totals()
        entry = totals["kernel/sample"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(1.5)
        assert entry["mean_s"] == pytest.approx(0.5)
        assert entry["min_s"] == entry["max_s"] == pytest.approx(0.5)


class TestNullRecorder:
    def test_is_disabled_and_free_of_state(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)
        with NULL_RECORDER.span("anything", key=1):
            NULL_RECORDER.counter("c")
            NULL_RECORDER.gauge("g", 1.0)
        NULL_RECORDER.end(NULL_RECORDER.begin("phase"))
        NULL_RECORDER.record_stats("p", {"hits": 1})
        NULL_RECORDER.merge({"counters": {"c": 1}}, worker=1)
        assert NULL_RECORDER.spawn_spec() is None
        assert NULL_RECORDER.to_state() == {
            "spans": [],
            "counters": {},
            "gauges": {},
        }
        assert NULL_RECORDER.phase_totals() == {}

    def test_span_reuses_one_context_manager(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")


class TestExporters:
    def test_metrics_json_matches_golden(self):
        golden = json.loads((FIXTURES / "metrics.json").read_text())
        assert metrics_json(golden_recorder()) == golden
        assert golden["schema"] == METRICS_SCHEMA

    def test_write_metrics_matches_golden_bytes(self, tmp_path):
        path = write_metrics(golden_recorder(), tmp_path / "metrics.json")
        assert path.read_text() == (FIXTURES / "metrics.json").read_text()

    def test_chrome_trace_matches_golden(self):
        golden = json.loads((FIXTURES / "trace.json").read_text())
        assert chrome_trace(golden_recorder()) == golden

    def test_write_trace_matches_golden_bytes(self, tmp_path):
        path = write_trace(golden_recorder(), tmp_path / "trace.json")
        assert path.read_text() == (FIXTURES / "trace.json").read_text()

    def test_trace_units_are_microseconds_on_worker_lanes(self):
        trace = chrome_trace(golden_recorder())
        assert trace["displayTimeUnit"] == "ms"
        shard = [e for e in trace["traceEvents"] if e["name"] == "shard"]
        assert shard == [
            {
                "name": "shard",
                "ph": "X",
                "ts": pytest.approx(0.25e6),
                "dur": pytest.approx(1.0e6),
                "pid": 0,
                "tid": 1,
            }
        ]

    def test_phase_summary_table_aligns_and_handles_empty(self):
        lines = phase_summary_table(golden_recorder())
        assert lines[0].split() == ["phase", "count", "total", "ms", "mean", "ms", "max", "ms"]
        assert any(line.startswith("kernel/sample") for line in lines)
        assert phase_summary_table(Recorder(clock=FakeClock())) == [
            "(no spans recorded)"
        ]


class TestBitIdentity:
    """Telemetry on == telemetry off, for every execution shape."""

    @pytest.mark.parametrize(
        "engine, run_stack, workers",
        [
            ("batch", 1, 1),
            ("batch", 1, 2),
            ("batch", 3, 1),
            ("batch", 3, 2),
            ("loop", 1, 1),
            ("loop", 1, 2),
            ("stream", 1, 1),
            ("stream", 1, 2),
            ("stream", 3, 1),
            ("stream", 3, 2),
        ],
    )
    def test_fleet_monte_carlo_identical_with_and_without(
        self, chain9, engine, run_stack, workers
    ):
        def run(recorder):
            return run_fleet_monte_carlo(
                _simulation(chain9),
                n_runs=4,
                seed=11,
                detector=MaximumLikelihoodDetector(),
                workers=workers,
                engine=engine,
                chunk_slots=10,
                regions=2,
                run_stack=run_stack,
                recorder=recorder,
            )

        recorder = Recorder(clock=default_clock)
        plain = run(NULL_RECORDER)
        instrumented = run(recorder)
        for name in _STATISTIC_ARRAYS:
            assert np.array_equal(
                getattr(plain, name), getattr(instrumented, name)
            ), name
        assert recorder.counters["montecarlo/episodes"] == 4
        names = {span["name"] for span in recorder.spans}
        assert {"montecarlo/fleet", "shard", "kernel/sample"} <= names

    def test_worker_spans_land_on_their_own_lanes(self, chain9):
        recorder = Recorder(clock=default_clock)
        run_fleet_monte_carlo(
            _simulation(chain9),
            n_runs=4,
            seed=11,
            detector=MaximumLikelihoodDetector(),
            workers=2,
            recorder=recorder,
        )
        lanes = {span["tid"] for span in recorder.spans}
        assert {1, 2} <= lanes  # one lane per shard worker
        assert any(
            span["name"] == "montecarlo/fleet" and span["tid"] == 0
            for span in recorder.spans
        )

    def test_streaming_records_spill_spans(self, chain9):
        recorder = Recorder(clock=default_clock)
        run_fleet_monte_carlo(
            _simulation(chain9),
            n_runs=1,
            seed=5,
            detector=MaximumLikelihoodDetector(),
            engine="stream",
            chunk_slots=10,
            recorder=recorder,
        )
        names = {span["name"] for span in recorder.spans}
        assert "kernel/spill" in names
        assert "kernel/detect" in names
        assert recorder.counters["placement/admitted"] > 0


class TestResultCacheLatency:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(experiment_id="unit", description="d")

    def test_injected_clock_times_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path, clock=FakeClock())
        assert cache.get("k" * 8) is None
        cache.put("k" * 8, self._result())
        assert cache.get("k" * 8) is not None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["miss_time_s"] == pytest.approx(0.5)
        assert stats["hit_time_s"] == pytest.approx(0.5)

    def test_without_a_clock_latency_stays_zero(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("m" * 8)
        cache.put("m" * 8, self._result())
        cache.get("m" * 8)
        stats = cache.stats()
        assert stats["hit_time_s"] == 0.0 and stats["miss_time_s"] == 0.0


class TestExecutionOnlyKeys:
    def test_telemetry_knobs_are_execution_only(self):
        assert {"telemetry", "metrics_out", "trace_out"} <= set(
            EXECUTION_ONLY_KEYS
        )

    def test_telemetry_knobs_never_reach_cache_keys(self):
        base = FleetExperimentConfig().to_dict()
        key = experiment_cache_key("fleet", base)
        for knob in ("telemetry", "metrics_out", "trace_out"):
            probed = dict(base)
            probed[knob] = "__probe__"
            assert experiment_cache_key("fleet", probed) == key, knob


class TestExperimentIntegration:
    @pytest.fixture(scope="class")
    def fleet_config(self):
        return FleetExperimentConfig(
            n_users=4,
            n_cells=9,
            site_capacity=3,
            horizon=10,
            n_runs=2,
            population_sweep=(3, 4),
            capacity_sweep=(2, 3),
        )

    def test_run_experiment_records_the_full_span_tree(
        self, fleet_config, tmp_path
    ):
        recorder = Recorder(clock=default_clock)
        cache = ResultCache(tmp_path, clock=default_clock)
        result = run_experiment(
            "fleet", fleet_config, cache=cache, recorder=recorder
        )
        assert result.experiment_id == "fleet"
        names = {span["name"] for span in recorder.spans}
        assert {
            "experiment/fleet",
            "point",
            "montecarlo/fleet",
            "kernel/sample",
            "kernel/placement",
            "kernel/detect",
        } <= names
        assert recorder.counters["result_cache/misses"] == 1
        # A hit from the warm cache lands on the same schema, timed.
        hit_recorder = Recorder(clock=default_clock)
        run_experiment("fleet", fleet_config, cache=cache, recorder=hit_recorder)
        assert hit_recorder.counters["result_cache/hits"] == 1
        assert hit_recorder.gauges["result_cache/hit_time_s"] > 0
        assert {span["name"] for span in hit_recorder.spans} == {
            "experiment/fleet"
        }

    def test_result_is_identical_with_and_without_recorder(self, fleet_config):
        plain = run_experiment("fleet", fleet_config)
        instrumented = run_experiment(
            "fleet", fleet_config, recorder=Recorder(clock=default_clock)
        )
        assert plain.to_dict() == instrumented.to_dict()


class TestCliTelemetry:
    def test_fleet_run_emits_summary_and_files(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "fleet",
                    "--users",
                    "4",
                    "--capacity",
                    "3",
                    "--cells",
                    "9",
                    "--runs",
                    "2",
                    "--horizon",
                    "10",
                    "--no-cache",
                    "--telemetry",
                    "--metrics-out",
                    str(metrics),
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "telemetry phase summary:" in output
        assert "kernel/sample" in output
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == METRICS_SCHEMA
        assert "montecarlo/episodes" in payload["counters"]
        assert "experiment/fleet" in payload["phases"]
        events = json.loads(trace.read_text())["traceEvents"]
        assert {event["name"] for event in events} >= {
            "kernel/sample",
            "kernel/placement",
            "kernel/detect",
        }
        assert all(event["ph"] == "X" for event in events)
