"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.markov import MarkovChain
from repro.mobility.models import paper_synthetic_models


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def two_state_chain() -> MarkovChain:
    """A tiny two-state chain with an easy closed-form stationary vector."""
    return MarkovChain(np.array([[0.9, 0.1], [0.3, 0.7]]))


@pytest.fixture
def skewed_chain() -> MarkovChain:
    """A five-state chain strongly attracted to cell 0 (predictable user)."""
    matrix = np.full((5, 5), 0.05)
    matrix[:, 0] = 0.8
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix)


@pytest.fixture
def random_chain() -> MarkovChain:
    """A ten-state chain with random transitions (high-entropy user)."""
    generator = np.random.default_rng(7)
    matrix = generator.uniform(0.1, 1.0, size=(10, 10))
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix)


@pytest.fixture(scope="session")
def synthetic_models() -> dict[str, MarkovChain]:
    """The paper's four synthetic mobility models (L = 10)."""
    return paper_synthetic_models(10, seed=2017)
