"""Tests for the MEC substrate: topology, services, costs, policies, migration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.points import GeoPoint
from repro.geo.voronoi import VoronoiQuantizer
from repro.mec.costs import CostLedger, CostModel
from repro.mec.migration import MigrationEngine, MigrationEvent
from repro.mec.policies import (
    AlwaysFollowPolicy,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    NeverMigratePolicy,
)
from repro.mec.service import ServiceInstance, ServiceKind
from repro.mec.topology import EdgeSite, MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import lazy_uniform_model


class TestEdgeSite:
    def test_default_name(self):
        assert EdgeSite(cell=3).name == "mec-3"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EdgeSite(cell=0, capacity=0)

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            EdgeSite(cell=-1)


class TestMECTopology:
    def test_ring_hop_distances(self):
        topology = MECTopology.ring(6)
        assert topology.hop_distance(0, 1) == 1
        assert topology.hop_distance(0, 3) == 3
        assert topology.hop_distance(0, 5) == 1  # wrap-around

    def test_complete_topology_all_one_hop(self):
        topology = MECTopology.complete(5)
        hops = topology.hop_distance_matrix()
        off_diagonal = hops[~np.eye(5, dtype=bool)]
        assert np.all(off_diagonal == 1)

    def test_grid_topology_distances(self):
        topology = MECTopology.from_grid(GridTopology(3, 3))
        assert topology.hop_distance(0, 8) == 4

    def test_from_voronoi(self):
        towers = [
            GeoPoint(37.6, -122.5),
            GeoPoint(37.6, -122.2),
            GeoPoint(37.9, -122.5),
            GeoPoint(37.9, -122.2),
        ]
        topology = MECTopology.from_voronoi(VoronoiQuantizer(towers))
        assert topology.n_cells == 4
        assert topology.hop_distance(0, 3) >= 1

    def test_neighbors(self):
        topology = MECTopology.ring(4)
        assert sorted(topology.neighbors(0)) == [1, 3]

    def test_site_lookup(self):
        topology = MECTopology.ring(4)
        assert topology.site(2).cell == 2
        with pytest.raises(ValueError):
            topology.site(9)

    def test_rejects_asymmetric_adjacency(self):
        adjacency = np.zeros((2, 2), dtype=bool)
        adjacency[0, 1] = True
        with pytest.raises(ValueError):
            MECTopology(sites=[EdgeSite(0), EdgeSite(1)], adjacency=adjacency)

    def test_rejects_self_loops(self):
        adjacency = np.eye(2, dtype=bool)
        with pytest.raises(ValueError):
            MECTopology(sites=[EdgeSite(0), EdgeSite(1)], adjacency=adjacency)

    def test_rejects_misordered_sites(self):
        adjacency = np.zeros((2, 2), dtype=bool)
        with pytest.raises(ValueError):
            MECTopology(sites=[EdgeSite(1), EdgeSite(0)], adjacency=adjacency)

    def test_disconnected_cells_get_large_distance(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        topology = MECTopology(
            sites=[EdgeSite(0), EdgeSite(1), EdgeSite(2)], adjacency=adjacency
        )
        assert topology.hop_distance(0, 2) == 3  # = n, the "unreachable" marker


class TestServiceInstance:
    def test_migrate_updates_state(self):
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=2)
        assert service.migrate_to(5)
        assert service.cell == 5
        assert service.migration_count == 1

    def test_migrate_to_same_cell_is_noop(self):
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=2)
        assert not service.migrate_to(2)
        assert service.migration_count == 0

    def test_record_and_trajectory(self):
        service = ServiceInstance(0, 0, ServiceKind.CHAFF, cell=1)
        service.record_slot()
        service.migrate_to(4)
        service.record_slot()
        assert service.trajectory() == [1, 4]
        assert service.is_chaff

    def test_invalid_ids(self):
        with pytest.raises(ValueError):
            ServiceInstance(-1, 0, ServiceKind.REAL, cell=0)
        with pytest.raises(ValueError):
            ServiceInstance(0, 0, ServiceKind.REAL, cell=-2)


class TestCostModel:
    def test_migration_cost_zero_for_same_cell(self):
        model = CostModel()
        topology = MECTopology.ring(5)
        assert model.migration_cost(topology, 2, 2) == 0.0

    def test_migration_cost_grows_with_hops(self):
        model = CostModel(migration_cost_per_hop=2.0, migration_cost_fixed=1.0)
        topology = MECTopology.ring(8)
        assert model.migration_cost(topology, 0, 1) == 3.0
        assert model.migration_cost(topology, 0, 4) == 9.0

    def test_communication_cost(self):
        model = CostModel(communication_cost_per_hop=0.5)
        topology = MECTopology.ring(8)
        assert model.communication_cost(topology, 0, 2) == 1.0
        assert model.communication_cost(topology, 3, 3) == 0.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(migration_cost_per_hop=-1.0)

    def test_ledger_accumulates(self):
        ledger = CostLedger()
        ledger.count_migration()
        ledger.charge_migration(3.0)
        ledger.charge_communication(1.0)
        ledger.charge_chaff(0.5)
        ledger.close_slot()
        assert ledger.total == 4.5
        assert ledger.migrations == 1
        assert ledger.slots == 1
        assert ledger.average_cost_per_slot() == 4.5
        assert ledger.per_slot_totals == [4.5]

    def test_ledger_charging_does_not_count_migrations(self):
        """Cost accounting is pure: counting is explicit via count_migration,
        so free migrations (zero-cost model) still show up in the tally."""
        ledger = CostLedger()
        ledger.charge_migration(0.0)
        ledger.charge_migration(3.0)
        assert ledger.migrations == 0
        ledger.count_migration()
        assert ledger.migrations == 1
        with pytest.raises(ValueError):
            ledger.count_migration(-1)

    def test_ledger_rejects_negative(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_communication(-1.0)

    def test_ledger_average_with_no_slots(self):
        assert CostLedger().average_cost_per_slot() == 0.0


class TestPolicies:
    def test_always_follow(self):
        policy = AlwaysFollowPolicy()
        topology = MECTopology.ring(5)
        assert policy.decide(topology, 0, 3) == 3

    def test_never_migrate(self):
        policy = NeverMigratePolicy()
        topology = MECTopology.ring(5)
        assert policy.decide(topology, 0, 3) == 0

    def test_threshold_policy(self):
        policy = DistanceThresholdPolicy(threshold=2)
        topology = MECTopology.ring(8)
        assert policy.decide(topology, 0, 1) == 0  # within threshold: stay
        assert policy.decide(topology, 0, 4) == 4  # beyond threshold: follow

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DistanceThresholdPolicy(threshold=-1)

    def test_mdp_policy_never_migrates_at_zero_distance(self):
        topology = MECTopology.ring(8)
        chain = lazy_uniform_model(8, stay_probability=0.5)
        policy = MDPMigrationPolicy(topology, chain, CostModel())
        assert policy.decide(topology, 2, 2) == 2
        assert not policy.migrate_threshold_profile[0]

    def test_mdp_policy_migrates_when_communication_dominates(self):
        topology = MECTopology.ring(8)
        chain = lazy_uniform_model(8, stay_probability=0.5)
        cost_model = CostModel(
            migration_cost_per_hop=0.01,
            migration_cost_fixed=0.01,
            communication_cost_per_hop=10.0,
        )
        policy = MDPMigrationPolicy(topology, chain, cost_model)
        assert policy.decide(topology, 0, 4) == 4

    def test_mdp_policy_stays_when_migration_prohibitive(self):
        topology = MECTopology.ring(8)
        chain = lazy_uniform_model(8, stay_probability=0.5)
        cost_model = CostModel(
            migration_cost_per_hop=100.0,
            migration_cost_fixed=100.0,
            communication_cost_per_hop=0.01,
        )
        policy = MDPMigrationPolicy(topology, chain, cost_model)
        assert policy.decide(topology, 0, 2) == 0

    def test_mdp_policy_invalid_discount(self):
        topology = MECTopology.ring(4)
        chain = lazy_uniform_model(4)
        with pytest.raises(ValueError):
            MDPMigrationPolicy(topology, chain, CostModel(), discount=1.0)


class TestMigrationEngine:
    def _engine(self, policy=None):
        topology = MECTopology.ring(6)
        return MigrationEngine(
            topology=topology,
            policy=policy or AlwaysFollowPolicy(),
            cost_model=CostModel(),
        )

    def test_real_service_follows_user(self):
        engine = self._engine()
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        engine.register_instantiation(service, 0)
        cell = engine.step_real_service(service, user_cell=3, slot=0)
        assert cell == 3
        assert engine.ledger.migrations == 1
        assert service.location_history == [3]

    def test_chaff_service_moved_by_plan(self):
        engine = self._engine()
        chaff = ServiceInstance(1, 0, ServiceKind.CHAFF, cell=2)
        engine.register_instantiation(chaff, 0)
        engine.step_chaff_service(chaff, target_cell=4, slot=0)
        assert chaff.cell == 4
        assert engine.ledger.chaff_total > 0

    def test_role_enforcement(self):
        engine = self._engine()
        real = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        chaff = ServiceInstance(1, 0, ServiceKind.CHAFF, cell=0)
        with pytest.raises(ValueError):
            engine.step_real_service(chaff, 1, 0)
        with pytest.raises(ValueError):
            engine.step_chaff_service(real, 1, 0)

    def test_events_recorded_per_service(self):
        engine = self._engine()
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        engine.register_instantiation(service, 0)
        engine.step_real_service(service, 1, 0)
        engine.step_real_service(service, 1, 1)  # no migration this slot
        events = engine.events_for_service(0)
        assert len(events) == 2  # instantiation + one migration
        assert events[0].is_instantiation

    def test_free_migrations_are_still_counted(self):
        """Under an all-zero cost model the engine must still tally every
        actual service move (the ledger's count comes from the move, not
        from the charge)."""
        topology = MECTopology.ring(6)
        engine = MigrationEngine(
            topology=topology,
            policy=AlwaysFollowPolicy(),
            cost_model=CostModel(
                migration_cost_per_hop=0.0,
                migration_cost_fixed=0.0,
                communication_cost_per_hop=0.0,
                chaff_running_cost=0.0,
            ),
        )
        real = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        chaff = ServiceInstance(1, 0, ServiceKind.CHAFF, cell=0)
        for service in (real, chaff):
            engine.register_instantiation(service, 0)
        engine.step_real_service(real, user_cell=2, slot=0)
        engine.step_chaff_service(chaff, target_cell=3, slot=0)
        engine.step_real_service(real, user_cell=2, slot=1)  # no move
        engine.step_chaff_service(chaff, target_cell=5, slot=1)
        assert engine.ledger.total == 0.0
        assert engine.ledger.migrations == 3
        assert (
            engine.ledger.migrations
            == real.migration_count + chaff.migration_count
        )

    def test_never_migrate_accumulates_communication_cost(self):
        engine = self._engine(policy=NeverMigratePolicy())
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        engine.register_instantiation(service, 0)
        engine.step_real_service(service, user_cell=3, slot=0)
        assert engine.ledger.migration_total == 0.0
        assert engine.ledger.communication_total > 0.0

    def test_migration_event_validation(self):
        with pytest.raises(ValueError):
            MigrationEvent(slot=-1, service_id=0, source_cell=0, target_cell=1)
