"""Tests for the observer, chaff orchestrator and the end-to-end MEC simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eavesdropper import MaximumLikelihoodDetector, StrategyAwareDetector
from repro.core.strategies import get_strategy
from repro.mec.migration import MigrationEngine
from repro.mec.costs import CostModel
from repro.mec.observer import EavesdropperObserver, ObservationMatrix
from repro.mec.orchestrator import ChaffOrchestrator, ChaffPlan
from repro.mec.policies import AlwaysFollowPolicy
from repro.mec.service import ServiceInstance, ServiceKind
from repro.mec.simulator import MECSimulation, MECSimulationConfig
from repro.mec.topology import MECTopology


class TestObserver:
    def _services(self, histories):
        services = []
        for index, history in enumerate(histories):
            kind = ServiceKind.REAL if index == 0 else ServiceKind.CHAFF
            service = ServiceInstance(index, 0, kind, cell=history[0])
            service.location_history = list(history)
            services.append(service)
        return services

    def test_observation_shape_and_ground_truth(self, rng):
        services = self._services([[0, 1, 2], [3, 3, 3]])
        observation = EavesdropperObserver(shuffle=False).observe(services, 0, rng)
        assert observation.trajectories.shape == (2, 3)
        assert observation.user_row == 0
        assert np.array_equal(observation.user_trajectory(), [0, 1, 2])

    def test_shuffle_preserves_ground_truth(self):
        services = self._services([[0, 1, 2], [3, 3, 3], [4, 4, 4]])
        rows = set()
        for seed in range(20):
            observation = EavesdropperObserver(shuffle=True).observe(
                services, 0, np.random.default_rng(seed)
            )
            assert np.array_equal(
                observation.trajectories[observation.user_row], [0, 1, 2]
            )
            rows.add(observation.user_row)
        assert len(rows) > 1  # the user's row position actually varies

    def test_rejects_unequal_histories(self, rng):
        services = self._services([[0, 1], [3, 3, 3]])
        with pytest.raises(ValueError):
            EavesdropperObserver().observe(services, 0, rng)

    def test_rejects_unknown_real_service(self, rng):
        services = self._services([[0, 1]])
        with pytest.raises(ValueError):
            EavesdropperObserver().observe(services, 99, rng)

    def test_rejects_empty_histories(self, rng):
        service = ServiceInstance(0, 0, ServiceKind.REAL, cell=0)
        with pytest.raises(ValueError):
            EavesdropperObserver().observe([service], 0, rng)

    def test_observation_matrix_validation(self):
        with pytest.raises(ValueError):
            ObservationMatrix(
                trajectories=np.zeros((2, 3), dtype=np.int64),
                service_ids=np.array([0, 1]),
                user_row=5,
            )


class TestOrchestrator:
    def test_plan_shape(self, random_chain, rng):
        orchestrator = ChaffOrchestrator(get_strategy("IM"), random_chain, n_chaffs=3)
        user = random_chain.sample_trajectory(10, rng)
        plan = orchestrator.plan(owner_id=0, user_trajectory=user, rng=rng)
        assert plan.n_chaffs == 3
        assert plan.horizon == 10

    def test_zero_chaff_plan(self, random_chain, rng):
        orchestrator = ChaffOrchestrator(get_strategy("IM"), random_chain, n_chaffs=0)
        plan = orchestrator.plan(0, random_chain.sample_trajectory(5, rng), rng)
        assert plan.n_chaffs == 0

    def test_instantiate_and_step(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        engine = MigrationEngine(
            topology=topology, policy=AlwaysFollowPolicy(), cost_model=CostModel()
        )
        orchestrator = ChaffOrchestrator(get_strategy("IM"), random_chain, n_chaffs=2)
        user = random_chain.sample_trajectory(6, rng)
        plan = orchestrator.plan(0, user, rng)
        services = orchestrator.instantiate(plan, engine, slot=0)
        assert len(services) == 2
        for slot in range(6):
            orchestrator.step(plan, services, engine, slot)
        for index, service in enumerate(services):
            assert np.array_equal(service.location_history, plan.trajectories[index])

    def test_step_validates_slot(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        engine = MigrationEngine(
            topology=topology, policy=AlwaysFollowPolicy(), cost_model=CostModel()
        )
        orchestrator = ChaffOrchestrator(get_strategy("IM"), random_chain, n_chaffs=1)
        user = random_chain.sample_trajectory(4, rng)
        plan = orchestrator.plan(0, user, rng)
        services = orchestrator.instantiate(plan, engine, slot=0)
        with pytest.raises(ValueError):
            orchestrator.step(plan, services, engine, slot=9)

    def test_step_validates_service_count(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        engine = MigrationEngine(
            topology=topology, policy=AlwaysFollowPolicy(), cost_model=CostModel()
        )
        orchestrator = ChaffOrchestrator(get_strategy("IM"), random_chain, n_chaffs=2)
        user = random_chain.sample_trajectory(4, rng)
        plan = orchestrator.plan(0, user, rng)
        with pytest.raises(ValueError):
            orchestrator.step(plan, [], engine, slot=0)

    def test_chaff_plan_validation(self):
        with pytest.raises(ValueError):
            ChaffPlan(owner_id=-1, trajectories=np.zeros((1, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            ChaffPlan(owner_id=0, trajectories=np.zeros(3, dtype=np.int64))


class TestMECSimulation:
    def test_report_contents(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            strategy=get_strategy("OO"),
            config=MECSimulationConfig(horizon=20, n_chaffs=1),
        )
        report = simulation.run(rng)
        assert report.horizon == 20
        assert report.observations.n_services == 2
        assert report.total_cost > 0
        assert len(report.chaff_services) == 1
        # The real service follows the user exactly under always-follow.
        assert np.array_equal(
            report.real_service.location_history, report.user_trajectory
        )

    def test_observation_matches_chaff_plan(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            strategy=get_strategy("CML"),
            config=MECSimulationConfig(horizon=15, n_chaffs=1, shuffle_observations=False),
        )
        report = simulation.run(rng)
        # With shuffling off the first row is the real service.
        assert report.observations.user_row == 0
        chaff_row = report.observations.trajectories[1]
        assert not np.any(chaff_row == report.user_trajectory)  # CML never co-locates

    def test_evaluate_with_basic_detector(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            strategy=get_strategy("OO"),
            config=MECSimulationConfig(horizon=25, n_chaffs=1),
        )
        report = simulation.run(rng)
        outcome = report.evaluate(random_chain, MaximumLikelihoodDetector(), rng)
        assert set(outcome) == {"tracking_accuracy", "detection_accuracy", "total_cost"}
        assert outcome["tracking_accuracy"] <= 0.2

    def test_evaluate_with_advanced_detector(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            strategy=get_strategy("OO"),
            config=MECSimulationConfig(horizon=15, n_chaffs=1),
        )
        report = simulation.run(rng)
        detector = StrategyAwareDetector(get_strategy("OO"))
        outcome = report.evaluate(random_chain, detector, rng)
        assert outcome["detection_accuracy"] == 1.0

    def test_external_user_trajectory(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            strategy=get_strategy("IM"),
            config=MECSimulationConfig(horizon=10, n_chaffs=1),
        )
        user = random_chain.sample_trajectory(12, rng)
        report = simulation.run(rng, user_trajectory=user)
        assert report.horizon == 12
        assert np.array_equal(report.user_trajectory, user)

    def test_rejects_out_of_range_user_trajectory(self, random_chain, rng):
        """Cells outside the topology must fail up front with a clear
        message, not deep inside detection."""
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            config=MECSimulationConfig(horizon=10, n_chaffs=0),
        )
        too_large = np.array([0, 1, random_chain.n_states], dtype=np.int64)
        with pytest.raises(ValueError, match="outside the topology"):
            simulation.run(rng, user_trajectory=too_large)
        negative = np.array([0, -1, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="outside the topology"):
            simulation.run(rng, user_trajectory=negative)

    def test_requires_strategy_for_chaffs(self, random_chain):
        topology = MECTopology.complete(random_chain.n_states)
        with pytest.raises(ValueError):
            MECSimulation(
                topology,
                random_chain,
                strategy=None,
                config=MECSimulationConfig(horizon=10, n_chaffs=2),
            )

    def test_topology_model_mismatch(self, random_chain):
        topology = MECTopology.ring(random_chain.n_states + 1)
        with pytest.raises(ValueError):
            MECSimulation(topology, random_chain)

    def test_no_chaff_run(self, random_chain, rng):
        topology = MECTopology.complete(random_chain.n_states)
        simulation = MECSimulation(
            topology,
            random_chain,
            config=MECSimulationConfig(horizon=10, n_chaffs=0),
        )
        report = simulation.run(rng)
        assert report.observations.n_services == 1
        assert report.ledger.chaff_total == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MECSimulationConfig(horizon=0)
        with pytest.raises(ValueError):
            MECSimulationConfig(n_chaffs=-1)
