"""Tests for information measures, concentration bounds, c_t machinery and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.concentration import (
    empirical_tail_probability,
    hoeffding_bound,
    lemma_v3_bound,
)
from repro.analysis.information import (
    conditional_step_entropy,
    entropy,
    entropy_gap_condition,
    kl_divergence,
    spatial_skewness,
    temporal_skewness,
)
from repro.analysis.loglik import (
    build_cml_induced_chain,
    ct_series,
    estimate_expected_ct,
    simulate_ct_samples,
)
from repro.analysis.metrics import (
    aggregate_episodes,
    detection_rate,
    per_slot_accuracy,
    time_average_accuracy,
)
from repro.core.game import PrivacyGame
from repro.core.eavesdropper import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.core.strategies.constrained_ml import ConstrainedMLController
from repro.mobility.models import lazy_uniform_model, uniform_iid_model


class TestInformation:
    def test_entropy_uniform(self):
        assert np.isclose(entropy(np.full(8, 0.125)), np.log(8))

    def test_entropy_point_mass(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_entropy_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            entropy(np.array([0.5, 0.2]))

    def test_kl_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == 0.0

    def test_kl_positive_and_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) > 0
        assert not np.isclose(kl_divergence(p, q), kl_divergence(q, p))

    def test_kl_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    def test_spatial_skewness_zero_for_uniform(self):
        assert np.isclose(spatial_skewness(uniform_iid_model(6)), 0.0, atol=1e-9)

    def test_spatial_skewness_positive_for_skewed(self, skewed_chain):
        assert spatial_skewness(skewed_chain) > 0.1

    def test_temporal_skewness_zero_for_iid(self):
        assert np.isclose(temporal_skewness(uniform_iid_model(6)), 0.0)

    def test_conditional_entropy_matches_chain(self, random_chain):
        assert np.isclose(
            conditional_step_entropy(random_chain), random_chain.entropy_rate()
        )

    def test_entropy_gap_condition(self, random_chain):
        assert entropy_gap_condition(random_chain, 0.0)
        assert not entropy_gap_condition(random_chain, 100.0)
        with pytest.raises(ValueError):
            entropy_gap_condition(random_chain, -1.0)


class TestConcentration:
    def test_hoeffding_decreases_with_n(self):
        assert hoeffding_bound(100, 0.1, 0, 1) < hoeffding_bound(10, 0.1, 0, 1)

    def test_hoeffding_is_one_at_zero_deviation(self):
        assert hoeffding_bound(50, 0.0, 0, 1) == 1.0

    def test_lemma_v3_reduces_to_hoeffding_at_zero_epsilon(self):
        assert np.isclose(
            lemma_v3_bound(40, 0.2, 0, 1, 0.0), hoeffding_bound(40, 0.2, 0, 1)
        )

    def test_lemma_v3_weaker_with_slack(self):
        assert lemma_v3_bound(40, 0.2, 0, 1, 0.5) > lemma_v3_bound(40, 0.2, 0, 1, 0.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            hoeffding_bound(10, 0.1, 1, 1)
        with pytest.raises(ValueError):
            lemma_v3_bound(10, 0.1, 1, 0, 0.1)

    def test_bound_dominates_empirical_tail_iid(self):
        rng = np.random.default_rng(0)
        n = 50
        samples = rng.uniform(0, 1, size=(2000, n))
        delta = 0.1
        empirical = empirical_tail_probability(samples, 0.5 + delta)
        assert empirical <= hoeffding_bound(n, delta, 0, 1) + 0.01

    def test_empirical_tail_validation(self):
        with pytest.raises(ValueError):
            empirical_tail_probability(np.empty((0, 3)), 0.5)


class TestCtMachinery:
    def test_ct_series_matches_definition(self, random_chain, rng):
        user = random_chain.sample_trajectory(10, rng)
        chaff = random_chain.sample_trajectory(10, rng)
        series = ct_series(random_chain, user, chaff)
        assert series.shape == (10,)
        expected_first = random_chain.log_stationary[user[0]] - random_chain.log_stationary[chaff[0]]
        assert np.isclose(series[0], expected_first)
        assert np.isclose(
            series.sum(),
            random_chain.log_likelihood(user) - random_chain.log_likelihood(chaff),
        )

    def test_ct_series_shape_mismatch(self, random_chain, rng):
        with pytest.raises(ValueError):
            ct_series(random_chain, np.zeros(5, dtype=int), np.zeros(6, dtype=int))

    def test_simulate_ct_samples_cml_negative_mean_for_high_entropy_user(self):
        chain = lazy_uniform_model(10, stay_probability=0.3)
        samples = simulate_ct_samples(chain, "CML", 50, 20, np.random.default_rng(0))
        assert samples.mean() < 0

    def test_simulate_ct_samples_mo(self, random_chain):
        samples = simulate_ct_samples(random_chain, "MO", 30, 10, np.random.default_rng(1))
        assert samples.size == 10 * 29

    def test_simulate_ct_samples_unknown_strategy(self, random_chain):
        with pytest.raises(ValueError):
            simulate_ct_samples(random_chain, "OO", 10, 5, np.random.default_rng(0))

    def test_estimate_expected_ct_close_to_sample_mean(self, random_chain):
        value = estimate_expected_ct(
            random_chain, "CML", horizon=100, n_runs=20, rng=np.random.default_rng(2)
        )
        assert -5 < value < 1

    def test_induced_chain_is_stochastic(self, random_chain):
        induced = build_cml_induced_chain(random_chain)
        rows = induced.transition_matrix.sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_induced_chain_stationary_is_distribution(self, random_chain):
        induced = build_cml_induced_chain(random_chain)
        assert np.isclose(induced.stationary.sum(), 1.0)
        assert np.all(induced.stationary >= -1e-12)

    def test_induced_chain_expected_ct_matches_simulation(self, random_chain):
        induced = build_cml_induced_chain(random_chain)
        simulated = estimate_expected_ct(
            random_chain, "CML", horizon=300, n_runs=30, rng=np.random.default_rng(3)
        )
        assert abs(induced.expected_ct - simulated) < 0.1

    def test_induced_chain_never_colocates(self, random_chain):
        """The CML pair chain only has mass on states with x1 != x2 after one
        step; verify via the transition structure."""
        induced = build_cml_induced_chain(random_chain)
        L = induced.n_cells
        for target in range(L * L):
            user_cell, chaff_cell = divmod(target, L)
            if user_cell == chaff_cell:
                assert induced.transition_matrix[:, target].sum() == 0.0

    def test_induced_chain_pair_index(self, random_chain):
        induced = build_cml_induced_chain(random_chain)
        assert induced.pair_index(2, 3) == 2 * random_chain.n_states + 3
        with pytest.raises(ValueError):
            induced.pair_index(99, 0)

    def test_induced_chain_delta_positive(self, random_chain):
        assert build_cml_induced_chain(random_chain).delta > 0

    def test_induced_chain_mixing_time(self, random_chain):
        induced = build_cml_induced_chain(random_chain)
        assert induced.mixing_time(0.3, max_steps=200) >= 1

    def test_cml_controller_consistent_with_induced_response(self, random_chain, rng):
        """The induced chain's deterministic response must agree with the
        actual CML controller."""
        user = random_chain.sample_trajectory(20, rng)
        chaff = ConstrainedMLController(random_chain).run(user)
        for t in range(1, 20):
            expected = random_chain.restricted_argmax_row(
                int(chaff[t - 1]), excluded=[int(user[t])]
            )
            assert chaff[t] == expected


class TestMetrics:
    def _episodes(self, chain, strategy_name, n, horizon=20):
        game = PrivacyGame(
            chain, get_strategy(strategy_name), MaximumLikelihoodDetector(), n_services=2
        )
        return [
            game.run_episode(np.random.default_rng(seed), horizon=horizon)
            for seed in range(n)
        ]

    def test_per_slot_accuracy_shape(self, random_chain):
        episodes = self._episodes(random_chain, "IM", 5)
        assert per_slot_accuracy(episodes).shape == (20,)

    def test_per_slot_accuracy_bounds(self, random_chain):
        episodes = self._episodes(random_chain, "IM", 5)
        accuracy = per_slot_accuracy(episodes)
        assert np.all(accuracy >= 0) and np.all(accuracy <= 1)

    def test_time_average_matches_mean(self, random_chain):
        episodes = self._episodes(random_chain, "IM", 5)
        assert np.isclose(
            time_average_accuracy(episodes), per_slot_accuracy(episodes).mean()
        )

    def test_detection_rate_bounds(self, random_chain):
        episodes = self._episodes(random_chain, "ML", 8)
        assert 0.0 <= detection_rate(episodes) <= 1.0

    def test_aggregate_consistency(self, random_chain):
        episodes = self._episodes(random_chain, "OO", 6)
        stats = aggregate_episodes(episodes)
        assert stats.n_episodes == 6
        assert stats.horizon == 20
        assert np.isclose(stats.tracking_accuracy, stats.per_slot_accuracy.mean())
        cumulative = stats.cumulative_accuracy()
        assert cumulative.shape == (20,)
        assert np.isclose(cumulative[-1], stats.tracking_accuracy)

    def test_empty_episode_list_rejected(self):
        with pytest.raises(ValueError):
            per_slot_accuracy([])
        with pytest.raises(ValueError):
            detection_rate([])

    def test_inconsistent_horizons_rejected(self, random_chain):
        episodes = self._episodes(random_chain, "IM", 2, horizon=10)
        episodes += self._episodes(random_chain, "IM", 1, horizon=12)
        with pytest.raises(ValueError):
            per_slot_accuracy(episodes)
