"""Tests for the streaming, region-sharded fleet engine.

The load-bearing contract is **chunk-boundary bit-identity**: for any
chunk size (including 1, a prime that straddles every event, the whole
horizon, and larger-than-the-horizon), any region count and any worker
count, the streaming engine reproduces the batch engine's report
bit-for-bit — planes, ledgers, placement stats and evaluations — for
static worlds and for dynamic timelines whose events land exactly on
chunk edges.  Around that sit the subsystem suites: the episode store's
append/iterate/resume surface, sharded placement equivalence, lazy
schedule windows, incremental detector scoring, the result cache's
orphan sweep, and the CLI knobs.

The worker count for sharded tests comes from ``REPRO_TEST_WORKERS``
(default 2) so CI can pin the threaded path.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import _build_config, build_parser, main
from repro.core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
)
from repro.core.strategies import get_strategy
from repro.mec.fleet import (
    FLEET_ENGINES,
    FULL_PLANE_LIMIT,
    FleetSimulation,
    FleetSimulationConfig,
    materialise_full_plane,
    run_fleet_monte_carlo,
)
from repro.mec.placement import (
    PlacementEngine,
    RegionPartition,
    ShardedPlacementEngine,
)
from repro.mec.streaming import StreamingFleetEngine
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import EpisodeStore, ResultCache
from repro.world import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    Timeline,
    UserArrival,
    UserDeparture,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

HORIZON = 30
#: Chunk sizes from the issue: 1, a prime, exactly T, larger than T.
CHUNK_SIZES = (1, 7, HORIZON, HORIZON + 13)
#: Region counts: serial, a split, one region per cell.
REGION_COUNTS = (1, 2, 9)


@pytest.fixture(scope="module")
def chain9():
    return paper_synthetic_models(9, seed=2017)["non-skewed"]


@pytest.fixture(scope="module")
def regime9():
    return paper_synthetic_models(9, seed=2017)["temporally-skewed"]


@pytest.fixture(scope="module")
def grid9():
    return MECTopology.from_grid(GridTopology(3, 3), capacity=4)


def _edge_timeline(regime) -> Timeline:
    """A rich dynamic world with events exactly on chunk-7 edges.

    Chunk size 7 over T=30 has boundaries at slots 7, 14, 21 and 28;
    every event class fires on one of them (regime switches, failures,
    recoveries, capacity shocks, churn in both directions) so carry-over
    state crosses a boundary in every transition the kernel knows.
    """
    return Timeline(
        events=(
            RegimeSwitch(slot=7, regime=1),
            RegimeSwitch(slot=21, regime=0),
            SiteDown(slot=7, cell=4),
            SiteUp(slot=14, cell=4),
            CapacityChange(slot=14, cell=0, capacity=1),
            SiteDown(slot=28, cell=1),
            UserArrival(slot=7, user=2),
            UserDeparture(slot=28, user=2),
            UserDeparture(slot=14, user=0),
            UserArrival(slot=21, user=5),
        ),
        regime_chains=(regime,),
    )


def _make_sim(chain, grid, timeline=None) -> FleetSimulation:
    return FleetSimulation(
        grid,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=6, horizon=HORIZON, n_chaffs=(1, 2, 1, 0, 2, 1)
        ),
        timeline=timeline,
    )


def assert_reports_identical(batch, streamed) -> None:
    """Bit-identity across every field the paper's figures consume."""
    assert np.array_equal(batch.user_trajectories, streamed.user_trajectories)
    assert np.array_equal(
        batch.observations.trajectories, streamed.observations.trajectories
    )
    assert np.array_equal(
        batch.observations.service_ids, streamed.observations.service_ids
    )
    assert np.array_equal(
        batch.observations.owner_ids, streamed.observations.owner_ids
    )
    assert np.array_equal(
        batch.observations.real_rows, streamed.observations.real_rows
    )
    assert batch.placement.as_dict() == streamed.placement.as_dict()
    if batch.windows is None:
        assert streamed.windows is None
    else:
        assert np.array_equal(batch.windows, streamed.windows)
    for expected, got in zip(batch.ledgers, streamed.ledgers, strict=True):
        assert expected.migration_total == got.migration_total
        assert expected.communication_total == got.communication_total
        assert expected.chaff_total == got.chaff_total
        assert expected.migrations == got.migrations
        assert expected.per_slot_totals == got.per_slot_totals


# ----------------------------------------------------------------------
# Tentpole: chunk-boundary bit-identity across every knob
# ----------------------------------------------------------------------


class TestStreamBatchIdentity:
    @pytest.mark.parametrize("chunk_slots", CHUNK_SIZES)
    @pytest.mark.parametrize("regions", REGION_COUNTS)
    def test_static_world(self, chain9, grid9, chunk_slots, regions):
        batch = _make_sim(chain9, grid9).run(123, engine="batch")
        streamed = _make_sim(chain9, grid9).run(
            123, engine="stream", chunk_slots=chunk_slots, regions=regions
        )
        assert_reports_identical(batch, streamed)

    @pytest.mark.parametrize("chunk_slots", CHUNK_SIZES)
    @pytest.mark.parametrize("regions", REGION_COUNTS)
    def test_dynamic_world_events_on_chunk_edges(
        self, chain9, regime9, grid9, chunk_slots, regions
    ):
        timeline = _edge_timeline(regime9)
        batch = _make_sim(chain9, grid9, timeline).run(321, engine="batch")
        streamed = _make_sim(chain9, grid9, timeline).run(
            321, engine="stream", chunk_slots=chunk_slots, regions=regions
        )
        assert_reports_identical(batch, streamed)

    @pytest.mark.parametrize("regions", [2, 9])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_region_workers_are_invisible(
        self, chain9, regime9, grid9, regions, dynamic
    ):
        timeline = _edge_timeline(regime9) if dynamic else None
        serial = _make_sim(chain9, grid9, timeline).run(
            7, engine="stream", chunk_slots=7, regions=regions, region_workers=1
        )
        threaded = _make_sim(chain9, grid9, timeline).run(
            7,
            engine="stream",
            chunk_slots=7,
            regions=regions,
            region_workers=WORKERS,
        )
        assert_reports_identical(serial, threaded)

    @pytest.mark.parametrize("dynamic", [False, True])
    def test_evaluations_are_identical(self, chain9, regime9, grid9, dynamic):
        timeline = _edge_timeline(regime9) if dynamic else None
        batch = _make_sim(chain9, grid9, timeline).run(99, engine="batch")
        streamed = _make_sim(chain9, grid9, timeline).run(
            99, engine="stream", chunk_slots=7, regions=2
        )
        for detector in (MaximumLikelihoodDetector(), RandomGuessDetector()):
            expected = batch.evaluate(chain9, detector)
            got = streamed.evaluate(chain9, detector)
            assert np.array_equal(expected.chosen_rows, got.chosen_rows)
            assert np.array_equal(
                expected.detected_per_user, got.detected_per_user
            )
            assert np.array_equal(
                expected.tracking_per_user, got.tracking_per_user
            )

    def test_monte_carlo_stream_engine(self, chain9, grid9):
        def sim():
            return FleetSimulation(
                grid9,
                chain9,
                strategy=get_strategy("IM"),
                config=FleetSimulationConfig(n_users=4, horizon=12, n_chaffs=1),
            )

        batch = run_fleet_monte_carlo(sim(), n_runs=3, seed=17, workers=WORKERS)
        streamed = run_fleet_monte_carlo(
            sim(),
            n_runs=3,
            seed=17,
            workers=WORKERS,
            engine="stream",
            chunk_slots=5,
            regions=2,
        )
        assert np.array_equal(batch.detection_runs, streamed.detection_runs)
        assert np.array_equal(batch.tracking_runs, streamed.tracking_runs)
        assert np.array_equal(batch.cost_runs, streamed.cost_runs)
        assert np.array_equal(batch.migrations_runs, streamed.migrations_runs)

    def test_run_validates_engine_and_knobs(self, chain9, grid9):
        sim = _make_sim(chain9, grid9)
        assert "stream" in FLEET_ENGINES
        with pytest.raises(ValueError, match="engine"):
            sim.run(1, engine="vectorised")
        with pytest.raises(ValueError, match="chunk_slots"):
            StreamingFleetEngine(sim, chunk_slots=0)
        with pytest.raises(ValueError, match="regions"):
            StreamingFleetEngine(sim, regions=0)
        with pytest.raises(ValueError, match="region_workers"):
            StreamingFleetEngine(sim, region_workers=0)


# ----------------------------------------------------------------------
# Incremental evaluation: chunked scoring without a plane
# ----------------------------------------------------------------------


class TestIncrementalEvaluate:
    @pytest.mark.parametrize("dynamic", [False, True])
    @pytest.mark.parametrize("chunk_slots", [1, 7, HORIZON + 13])
    def test_chunked_scores_match_batch(
        self, chain9, regime9, grid9, dynamic, chunk_slots
    ):
        timeline = _edge_timeline(regime9) if dynamic else None
        batch = _make_sim(chain9, grid9, timeline).run(55, engine="batch")
        engine = StreamingFleetEngine(
            _make_sim(chain9, grid9, timeline), chunk_slots=chunk_slots
        )
        streamed = engine.run(55)
        try:
            for detector in (MaximumLikelihoodDetector(), RandomGuessDetector()):
                expected = batch.evaluate(chain9, detector)
                got = streamed.evaluate(chain9, detector)
                # Choices and detections are exact; tracking is an exact
                # integer count over the horizon, so it is too.
                assert np.array_equal(expected.chosen_rows, got.chosen_rows)
                assert np.array_equal(
                    expected.detected_per_user, got.detected_per_user
                )
                assert np.allclose(
                    expected.tracking_per_user, got.tracking_per_user
                )
        finally:
            streamed.close()

    def test_streamed_totals_match_batch(self, chain9, grid9):
        batch = _make_sim(chain9, grid9).run(5, engine="batch")
        streamed = StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7
        ).run(5)
        try:
            assert np.array_equal(batch.per_user_cost, streamed.per_user_cost)
            assert batch.total_cost == streamed.total_cost
            assert batch.total_migrations == streamed.total_migrations
            assert streamed.n_users == 6
            assert streamed.horizon == HORIZON
        finally:
            streamed.close()

    def test_plane_chunks_cover_the_horizon(self, chain9, grid9):
        streamed = StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7
        ).run(5)
        try:
            batch = _make_sim(chain9, grid9).run(5, engine="batch")
            rebuilt = np.concatenate(
                [chunk for _, _, chunk in streamed.iter_plane_chunks()], axis=1
            )
            assert np.array_equal(rebuilt, batch.observations.trajectories)
            edges = [start for start, _, _ in streamed.iter_plane_chunks()]
            assert edges == [0, 7, 14, 21, 28]
        finally:
            streamed.close()

    def test_unsupported_detector_points_at_materialise(self, chain9, grid9):
        streamed = StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7
        ).run(5)

        class _Opaque:
            name = "opaque"

        try:
            with pytest.raises(NotImplementedError, match="materialise"):
                streamed.evaluate(chain9, _Opaque())
        finally:
            streamed.close()


# ----------------------------------------------------------------------
# Resumable episodes
# ----------------------------------------------------------------------


class TestResumableEpisodes:
    def test_interrupted_episode_resumes_bit_identically(
        self, chain9, regime9, grid9, tmp_path
    ):
        timeline = _edge_timeline(regime9)
        batch = _make_sim(chain9, grid9, timeline).run(11, engine="batch")
        store = EpisodeStore(tmp_path / "episode")
        first = StreamingFleetEngine(
            _make_sim(chain9, grid9, timeline), chunk_slots=7, store=store
        )
        assert first.run(11, stop_after_chunks=2) is None
        assert set(store.completed("histories")) == {0, 1}
        # A fresh engine over the same store picks up at chunk 2.
        second = StreamingFleetEngine(
            _make_sim(chain9, grid9, timeline),
            chunk_slots=7,
            store=EpisodeStore(tmp_path / "episode"),
        )
        streamed = second.run(11)
        assert streamed is not None
        report = streamed.materialise()
        assert_reports_identical(batch, report)

    def test_completed_episode_reloads_without_replay(
        self, chain9, grid9, tmp_path
    ):
        store = EpisodeStore(tmp_path / "episode")
        first = StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7, store=store
        ).run(3)
        again = StreamingFleetEngine(
            _make_sim(chain9, grid9),
            chunk_slots=7,
            store=EpisodeStore(tmp_path / "episode"),
        ).run(3)
        assert np.array_equal(first.per_user_cost, again.per_user_cost)
        assert np.array_equal(first.order, again.order)
        assert first.placement.as_dict() == again.placement.as_dict()

    def test_store_rejects_a_different_episode(self, chain9, grid9, tmp_path):
        store = EpisodeStore(tmp_path / "episode")
        StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7, store=store
        ).run(3, stop_after_chunks=1)
        with pytest.raises(ValueError, match="different episode"):
            StreamingFleetEngine(
                _make_sim(chain9, grid9),
                chunk_slots=7,
                store=EpisodeStore(tmp_path / "episode"),
            ).run(4)
        with pytest.raises(ValueError, match="different episode"):
            StreamingFleetEngine(
                _make_sim(chain9, grid9),
                chunk_slots=5,
                store=EpisodeStore(tmp_path / "episode"),
            ).run(3)

    def test_ephemeral_store_is_destroyed_on_close(self, chain9, grid9):
        streamed = StreamingFleetEngine(
            _make_sim(chain9, grid9), chunk_slots=7
        ).run(3)
        root = streamed.store.root
        assert root.is_dir()
        streamed.close()
        assert not root.exists()


# ----------------------------------------------------------------------
# Episode store
# ----------------------------------------------------------------------


class TestEpisodeStore:
    def test_chunk_round_trip_and_manifest(self, tmp_path):
        store = EpisodeStore(tmp_path / "ep")
        first = np.arange(12, dtype=np.int64).reshape(3, 4)
        second = np.full((3, 2), 7, dtype=np.int64)
        store.append_chunk("histories", 0, first)
        store.append_chunk("histories", 1, second)
        assert store.completed("histories") == [0, 1]
        assert store.completed("per_slot") == []
        assert np.array_equal(store.read_chunk("histories", 1), second)
        # A reopened store trusts only the manifest.
        reopened = EpisodeStore(tmp_path / "ep")
        chunks = list(reopened.iter_chunks("histories"))
        assert [index for index, _ in chunks] == [0, 1]
        assert np.array_equal(chunks[0][1], first)
        # Atomic writes leave no temporaries behind.
        assert list((tmp_path / "ep").glob("*.tmp")) == []

    def test_meta_round_trip(self, tmp_path):
        store = EpisodeStore(tmp_path / "ep")
        store.update_meta(entropy="42", horizon=30)
        assert EpisodeStore(tmp_path / "ep").meta["horizon"] == 30

    def test_carry_state_round_trip(self, tmp_path):
        store = EpisodeStore(tmp_path / "ep")
        store.save_state(
            3, cells=np.array([1, 2, 3]), totals=np.array([0.5, 1.5])
        )
        carry = EpisodeStore(tmp_path / "ep").load_state(3)
        assert np.array_equal(carry["cells"], [1, 2, 3])
        assert np.array_equal(carry["totals"], [0.5, 1.5])

    def test_planes_are_disk_backed(self, tmp_path):
        store = EpisodeStore(tmp_path / "ep")
        assert not store.has_plane("users")
        plane = store.create_plane("users", (4, 6))
        plane[:] = 9
        plane.flush()
        del plane
        assert store.has_plane("users")
        view = EpisodeStore(tmp_path / "ep").open_plane("users")
        assert np.array_equal(np.asarray(view), np.full((4, 6), 9))

    def test_destroy_removes_the_store(self, tmp_path):
        store = EpisodeStore(tmp_path / "ep")
        store.append_chunk("histories", 0, np.zeros((2, 2)))
        store.destroy()
        assert not (tmp_path / "ep").exists()


# ----------------------------------------------------------------------
# Region-sharded placement
# ----------------------------------------------------------------------


class TestShardedPlacement:
    def test_partition_is_deterministic_and_total(self, grid9):
        first = RegionPartition.build(grid9, 3)
        second = RegionPartition.build(grid9, 3)
        assert np.array_equal(first.labels, second.labels)
        assert first.n_regions == 3
        assert set(np.unique(first.labels)) == {0, 1, 2}
        covered = np.concatenate([first.cells(r) for r in range(3)])
        assert sorted(covered.tolist()) == list(range(9))

    def test_partition_clamps_to_cell_count(self, grid9):
        assert RegionPartition.build(grid9, 99).n_regions == 9
        with pytest.raises(ValueError, match="n_regions"):
            RegionPartition.build(grid9, 0)

    @pytest.mark.parametrize("regions", [2, 4, 9])
    @pytest.mark.parametrize("workers", [1, WORKERS])
    def test_sharded_equals_serial_under_contention(
        self, grid9, regions, workers
    ):
        # Capacity-2 sites with 16 services: heavy contention, constant
        # cross-region traffic, every spill class exercised.
        tight = MECTopology.from_grid(GridTopology(3, 3), capacity=2)
        rng = np.random.default_rng(2017)
        start = rng.integers(0, 9, size=16)
        serial = PlacementEngine(tight)
        sharded = ShardedPlacementEngine(tight, regions=regions, workers=workers)
        current_a = serial.place_initial(start)
        current_b = sharded.place_initial(start)
        assert np.array_equal(current_a, current_b)
        for _ in range(12):
            desired = rng.integers(0, 9, size=16)
            current_a = serial.resolve_moves(current_a, desired)
            current_b = sharded.resolve_moves(current_b, desired)
            assert np.array_equal(current_a, current_b)
            assert np.array_equal(serial.load, sharded.load)
        assert serial.stats.as_dict() == sharded.stats.as_dict()

    def test_single_region_delegates_to_serial(self, grid9):
        engine = ShardedPlacementEngine(grid9, regions=1)
        cells = engine.place_initial(np.array([0, 0, 0, 0, 4]))
        moved = engine.resolve_moves(cells, np.array([4, 4, 4, 4, 0]))
        reference = PlacementEngine(grid9)
        ref_cells = reference.place_initial(np.array([0, 0, 0, 0, 4]))
        assert np.array_equal(
            moved, reference.resolve_moves(ref_cells, np.array([4, 4, 4, 4, 0]))
        )


# ----------------------------------------------------------------------
# Lazy schedule windows
# ----------------------------------------------------------------------


class TestScheduleWindows:
    def test_compile_window_matches_full_compile(self, chain9, regime9, grid9):
        timeline = _edge_timeline(regime9)
        kwargs = dict(
            horizon=HORIZON,
            n_cells=9,
            n_users=6,
            base_capacities=grid9.base_capacities(),
            base_chain=chain9,
        )
        schedule = timeline.compile(**kwargs)
        for start, stop in [(0, 7), (7, 14), (14, 21), (21, 28), (28, 30)]:
            lazy = timeline.compile_window(start, stop, **kwargs)
            full = schedule.window(start, stop)
            assert np.array_equal(lazy.capacities, full.capacities)
            assert np.array_equal(lazy.regimes, full.regimes)
            assert np.array_equal(lazy.user_windows, full.user_windows)
            assert np.array_equal(lazy.active_users(), full.active_users())
            assert lazy.episode_has_regimes and full.episode_has_regimes
            lazy_stack, full_stack = lazy.transition_stack(), full.transition_stack()
            if full_stack is None:
                assert lazy_stack is None
            else:
                assert np.array_equal(lazy_stack, full_stack)


# ----------------------------------------------------------------------
# Guarded full-plane materialisation
# ----------------------------------------------------------------------


class TestMaterialiseGuard:
    def test_small_planes_allocate(self):
        plane = materialise_full_plane((3, 4), dtype=np.int64, fill=-1)
        assert plane.shape == (3, 4)
        assert np.all(plane == -1)

    def test_city_scale_refuses_loudly(self):
        huge = (100_000, 10_000, FULL_PLANE_LIMIT)
        with pytest.raises(MemoryError, match="FULL_PLANE_LIMIT"):
            materialise_full_plane(huge)


# ----------------------------------------------------------------------
# Result-cache orphan sweep
# ----------------------------------------------------------------------


class TestResultCacheOrphans:
    def test_orphans_swept_on_open_and_counted(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "interrupted-1.tmp").write_text("half a result")
        (cache_dir / "interrupted-2.tmp").write_text("{")
        (cache_dir / "entry.json").write_text(json.dumps({"k": 1}))
        cache = ResultCache(cache_dir)
        assert cache.orphans_removed == 2
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "orphans_removed": 2,
            "hit_time_s": 0.0,
            "miss_time_s": 0.0,
        }
        assert list(cache_dir.glob("*.tmp")) == []
        assert (cache_dir / "entry.json").exists()

    def test_fresh_directory_has_no_orphans(self, tmp_path):
        cache = ResultCache(tmp_path / "nonexistent")
        assert cache.stats()["orphans_removed"] == 0


# ----------------------------------------------------------------------
# CLI and config knobs
# ----------------------------------------------------------------------


class TestStreamingKnobs:
    def test_fleet_flags_reach_the_config(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fleet", "--stream", "--chunk-slots", "7", "--regions", "3"]
        )
        config = _build_config(args, "fleet")
        assert config.stream is True
        assert config.chunk_slots == 7
        assert config.regions == 3

    def test_flags_default_off(self):
        parser = build_parser()
        config = _build_config(parser.parse_args(["fleet"]), "fleet")
        assert config.stream is False
        assert config.chunk_slots == 64
        assert config.regions == 1

    def test_knobs_survive_config_round_trip(self):
        from repro.sim.config import FleetExperimentConfig

        config = FleetExperimentConfig(stream=True, chunk_slots=7, regions=3)
        again = FleetExperimentConfig.from_dict(config.to_dict())
        assert (again.stream, again.chunk_slots, again.regions) == (True, 7, 3)
        scaled = config.scaled(n_users=4)
        assert (scaled.stream, scaled.chunk_slots, scaled.regions) == (True, 7, 3)

    def test_cli_streams_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "fleet",
                "--users",
                "4",
                "--cells",
                "9",
                "--capacity",
                "4",
                "--runs",
                "2",
                "--horizon",
                "10",
                "--stream",
                "--chunk-slots",
                "3",
                "--regions",
                "2",
                "--no-cache",
            ]
        )
        assert code == 0
        assert "fleet" in capsys.readouterr().out

    def test_stream_and_batch_share_cache_entries(self, tmp_path, capsys):
        # The streaming knobs are execution-only: a batch run warms the
        # cache, the streamed rerun of the same experiment hits it.
        base = [
            "fleet",
            "--users",
            "4",
            "--cells",
            "9",
            "--capacity",
            "4",
            "--runs",
            "2",
            "--horizon",
            "10",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "cached" not in first
        assert main(base + ["--stream", "--chunk-slots", "3"]) == 0
        assert "cached result" in capsys.readouterr().out
