"""Tests for the multi-user, capacity-aware fleet layer.

Covers the placement engine (admit / spill / reject semantics, capacity-1
edge cases), simulation-scoped service-id allocation, the corrected
migration-count semantics under zero-cost models, fleet determinism
(batch == loop engines, serial == sharded Monte-Carlo), per-user
detection scoring against the merged observation plane, and the fleet
experiment + CLI wiring.

The worker count for the sharded-equivalence tests is taken from
``REPRO_TEST_WORKERS`` (default 2) so CI can pin the process-pool path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
)
from repro.core.strategies import get_strategy
from repro.experiments.fleet import grid_dimensions, run_fleet_experiment
from repro.experiments.registry import run_experiment
from repro.mec.costs import CostModel
from repro.mec.fleet import (
    FleetObservationPlane,
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.observer import EavesdropperObserver
from repro.mec.orchestrator import ChaffOrchestrator
from repro.mec.placement import PlacementEngine
from repro.mec.service import ServiceIdAllocator, ServiceInstance, ServiceKind
from repro.mec.simulator import MECSimulation, MECSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import ResultCache
from repro.sim.config import FleetExperimentConfig

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

ZERO_COSTS = CostModel(
    migration_cost_per_hop=0.0,
    migration_cost_fixed=0.0,
    communication_cost_per_hop=0.0,
    chaff_running_cost=0.0,
)


@pytest.fixture(scope="module")
def chain():
    return paper_synthetic_models(10, seed=2017)["non-skewed"]


def _fleet(
    chain,
    *,
    n_users=6,
    horizon=25,
    n_chaffs=1,
    capacity=4,
    strategy="IM",
    cost_model=None,
    **config_kwargs,
):
    topology = MECTopology.from_grid(GridTopology(2, 5), capacity=capacity)
    config = FleetSimulationConfig(
        n_users=n_users, horizon=horizon, n_chaffs=n_chaffs, **config_kwargs
    )
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy(strategy) if strategy else None,
        cost_model=cost_model,
        config=config,
    )


class TestPlacementEngine:
    def test_admits_when_capacity_free(self):
        engine = PlacementEngine(MECTopology.ring(4, capacity=2))
        placed = engine.place_initial(np.array([0, 0, 1]))
        assert placed.tolist() == [0, 0, 1]
        assert engine.stats.as_dict() == {
            "admitted": 3,
            "spilled": 0,
            "rejected": 0,
            "evicted": 0,
            "stranded": 0,
        }

    def test_full_site_spills_to_nearest_neighbor(self):
        engine = PlacementEngine(MECTopology.ring(5, capacity=1))
        placed = engine.place_initial(np.array([0, 0]))
        # Ring of 5: cells 1 and 4 are both one hop from 0; ties break
        # towards the lowest cell index.
        assert placed.tolist() == [0, 1]
        assert engine.stats.spilled == 1

    def test_instantiation_raises_when_deployment_full(self):
        engine = PlacementEngine(MECTopology.ring(3, capacity=1))
        with pytest.raises(ValueError, match="deployment is full"):
            engine.place_initial(np.array([0, 1, 2, 0]))

    def test_migration_into_full_site_spills(self):
        engine = PlacementEngine(MECTopology.ring(5, capacity=1))
        current = engine.place_initial(np.array([0, 2]))
        placed = engine.resolve_moves(current, np.array([0, 0]))
        # Service 1 wants full cell 0; nearest free cells from 0 are 1/4,
        # tie towards 1.
        assert placed.tolist() == [0, 1]
        assert engine.stats.spilled == 1
        assert engine.load.tolist() == [1, 1, 0, 0, 0]

    def test_rejected_when_everything_full(self):
        engine = PlacementEngine(MECTopology.ring(3, capacity=1))
        current = engine.place_initial(np.array([0, 1, 2]))
        placed = engine.resolve_moves(current, np.array([1, 1, 1]))
        # All sites full: nobody can move anywhere (the nearest "free"
        # site is never an improvement), so every request is rejected.
        assert placed.tolist() == [0, 1, 2]
        assert engine.stats.rejected == 2  # services 0 and 2 asked to move
        assert engine.load.tolist() == [1, 1, 1]

    def test_greedy_id_order_is_deterministic(self):
        # Two services contend for the single slot on cell 1: the lower
        # service id wins; the loser spills to the nearest free site —
        # cell 0, just vacated by the winner (moves are atomic, so a slot
        # freed by an *earlier* service is visible), beating cell 2 on
        # the tiebreak.
        engine = PlacementEngine(MECTopology.ring(6, capacity=1))
        current = engine.place_initial(np.array([0, 3]))
        placed = engine.resolve_moves(current, np.array([1, 1]))
        assert placed.tolist() == [1, 0]
        assert engine.stats.as_dict() == {
            "admitted": 3,
            "spilled": 1,
            "rejected": 0,
            "evicted": 0,
            "stranded": 0,
        }

    def test_fast_path_matches_sequential_semantics(self):
        # Uncontended slot: every arrival fits, the bincount fast path
        # must leave load identical to per-service resolution.
        engine = PlacementEngine(MECTopology.ring(6, capacity=2))
        current = engine.place_initial(np.array([0, 1, 2, 3]))
        placed = engine.resolve_moves(current, np.array([1, 2, 3, 4]))
        assert placed.tolist() == [1, 2, 3, 4]
        assert engine.load.tolist() == [0, 1, 1, 1, 1, 0]
        assert engine.stats.rejected == 0

    def test_capacity_one_chain_topology(self):
        # Capacity-1 line: a service can only ever sit alone on a site.
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[1, 2] = adjacency[2, 1] = True
        topology = MECTopology(
            sites=[
                type(MECTopology.ring(2).sites[0])(cell=i, capacity=1)
                for i in range(3)
            ],
            adjacency=adjacency,
        )
        engine = PlacementEngine(topology)
        placed = engine.place_initial(np.array([1, 1, 1]))
        assert sorted(placed.tolist()) == [0, 1, 2]
        for slot_load in engine.load:
            assert slot_load == 1


class TestServiceIdAllocator:
    def test_sequential_ids(self):
        allocator = ServiceIdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [0, 1, 2]
        with pytest.raises(ValueError):
            ServiceIdAllocator(next_id=-1)

    def test_orchestrators_share_an_allocator(self, chain, rng):
        allocator = ServiceIdAllocator()
        real_id = allocator.allocate()
        first = ChaffOrchestrator(
            get_strategy("IM"), chain, n_chaffs=2, allocator=allocator
        )
        second = ChaffOrchestrator(
            get_strategy("IM"), chain, n_chaffs=2, allocator=allocator
        )
        topology = MECTopology.complete(chain.n_states)
        from repro.mec.costs import CostModel as _CostModel
        from repro.mec.migration import MigrationEngine
        from repro.mec.policies import AlwaysFollowPolicy

        engine = MigrationEngine(
            topology=topology, policy=AlwaysFollowPolicy(), cost_model=_CostModel()
        )
        user = chain.sample_trajectory(5, rng)
        services = first.instantiate(first.plan(0, user, rng), engine)
        services += second.instantiate(second.plan(1, user, rng), engine)
        ids = [real_id] + [service.service_id for service in services]
        assert ids == [0, 1, 2, 3, 4]

    def test_single_user_simulation_ids_stay_compatible(self, chain, rng):
        simulation = MECSimulation(
            MECTopology.complete(chain.n_states),
            chain,
            strategy=get_strategy("IM"),
            config=MECSimulationConfig(horizon=10, n_chaffs=2),
        )
        report = simulation.run(rng)
        assert report.real_service.service_id == 0
        assert [chaff.service_id for chaff in report.chaff_services] == [1, 2]


class TestObserverUniqueIds:
    def test_duplicate_service_ids_rejected(self, rng):
        services = []
        for service_id in (0, 1, 1):
            service = ServiceInstance(service_id, 0, ServiceKind.CHAFF, cell=0)
            service.location_history = [0, 1]
            services.append(service)
        services[0].kind = ServiceKind.REAL
        with pytest.raises(ValueError, match="unique ids"):
            EavesdropperObserver().observe(services, 0, rng)

    def test_fleet_plane_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique ids"):
            FleetObservationPlane(
                trajectories=np.zeros((2, 3), dtype=np.int64),
                service_ids=np.array([5, 5]),
                owner_ids=np.array([0, 1]),
                real_rows=np.array([0, 1]),
            )


class TestFleetConfig:
    def test_heterogeneous_budgets(self):
        config = FleetSimulationConfig(n_users=3, n_chaffs=(0, 2, 1))
        assert config.chaffs_per_user() == (0, 2, 1)
        assert config.n_services == 6

    def test_budget_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FleetSimulationConfig(n_users=3, n_chaffs=(1, 1))

    def test_start_cells_length_checked(self):
        with pytest.raises(ValueError):
            FleetSimulationConfig(n_users=2, start_cells=(0,))

    def test_capacity_validated_at_construction(self, chain):
        topology = MECTopology.ring(10, capacity=1)
        with pytest.raises(ValueError, match="service slots"):
            FleetSimulation(
                topology,
                chain,
                strategy=get_strategy("IM"),
                config=FleetSimulationConfig(n_users=10, n_chaffs=1),
            )

    def test_chaffs_require_a_strategy(self, chain):
        topology = MECTopology.ring(10, capacity=8)
        with pytest.raises(ValueError, match="no chaff strategy"):
            FleetSimulation(
                topology,
                chain,
                strategy=None,
                config=FleetSimulationConfig(n_users=2, n_chaffs=1),
            )


class TestFleetSimulation:
    def test_capacity_respected_at_every_slot(self, chain):
        capacity = 2
        simulation = _fleet(
            chain, n_users=8, horizon=30, n_chaffs=1, capacity=capacity
        )
        report = simulation.run(42)
        occupancy = np.stack(
            [service.location_history for service in report.services]
        )
        for slot in range(report.horizon):
            counts = np.bincount(occupancy[:, slot], minlength=10)
            assert counts.max() <= capacity
        assert report.placement.rejected > 0  # 16 services on 20 slots: tight

    def test_batch_and_loop_engines_bit_identical(self, chain):
        simulation = _fleet(
            chain, n_users=7, horizon=20, n_chaffs=(0, 1, 2, 1, 0, 3, 1), capacity=3
        )
        batch = simulation.run(11, engine="batch")
        loop = simulation.run(11, engine="loop")
        assert np.array_equal(batch.user_trajectories, loop.user_trajectories)
        assert np.array_equal(
            batch.observations.trajectories, loop.observations.trajectories
        )
        assert np.array_equal(
            batch.observations.real_rows, loop.observations.real_rows
        )
        assert batch.placement.as_dict() == loop.placement.as_dict()
        assert batch.ledgers == loop.ledgers
        assert [s.migration_count for s in batch.services] == [
            s.migration_count for s in loop.services
        ]

    def test_same_seed_sequence_bit_identical(self, chain):
        simulation = _fleet(chain, n_users=5, horizon=15)
        seed = np.random.SeedSequence(321)
        first = simulation.run(seed)
        second = simulation.run(np.random.SeedSequence(321))
        assert np.array_equal(first.user_trajectories, second.user_trajectories)
        assert np.array_equal(
            first.observations.trajectories, second.observations.trajectories
        )
        assert first.ledgers == second.ledgers
        first_eval = first.evaluate(chain, MaximumLikelihoodDetector())
        second_eval = second.evaluate(chain, MaximumLikelihoodDetector())
        assert np.array_equal(first_eval.chosen_rows, second_eval.chosen_rows)

    def test_zero_cost_model_still_counts_migrations(self, chain):
        for engine in ("batch", "loop"):
            simulation = _fleet(
                chain, n_users=5, horizon=20, cost_model=ZERO_COSTS
            )
            report = simulation.run(99, engine=engine)
            total_from_services = sum(
                service.migration_count for service in report.services
            )
            assert report.total_migrations == total_from_services
            assert report.total_migrations > 0
            assert report.total_cost == 0.0

    def test_default_cost_model_counts_match_services(self, chain):
        report = _fleet(chain, n_users=5, horizon=20).run(99)
        per_user = {user: 0 for user in range(5)}
        for service in report.services:
            per_user[service.owner_id] += service.migration_count
        for user, ledger in enumerate(report.ledgers):
            assert ledger.migrations == per_user[user]

    def test_start_cells_honoured_when_capacity_allows(self, chain):
        simulation = _fleet(
            chain,
            n_users=4,
            horizon=10,
            n_chaffs=0,
            strategy=None,
            capacity=4,
            start_cells=(3, 1, 4, 1),
        )
        report = simulation.run(5)
        assert report.user_trajectories[:, 0].tolist() == [3, 1, 4, 1]

    def test_per_user_strategies(self, chain):
        topology = MECTopology.from_grid(GridTopology(2, 5), capacity=4)
        config = FleetSimulationConfig(n_users=3, horizon=12, n_chaffs=(1, 2, 0))
        simulation = FleetSimulation(
            topology,
            chain,
            strategy=(get_strategy("IM"), get_strategy("ML"), None),
            config=config,
        )
        batch = simulation.run(8, engine="batch")
        loop = simulation.run(8, engine="loop")
        assert np.array_equal(
            batch.observations.trajectories, loop.observations.trajectories
        )
        assert batch.observations.n_services == 6

    def test_observation_plane_ground_truth(self, chain):
        simulation = _fleet(
            chain, n_users=4, horizon=10, shuffle_observations=True
        )
        report = simulation.run(77)
        plane = report.observations
        assert plane.n_services == 8
        assert np.unique(plane.service_ids).size == 8
        for user in range(4):
            row = int(plane.real_rows[user])
            assert plane.owner_ids[row] == user
            assert np.array_equal(
                plane.trajectories[row], report.user_trajectories[user]
            )

    def test_ledger_per_slot_totals(self, chain):
        report = _fleet(chain, n_users=3, horizon=8).run(13)
        for ledger in report.ledgers:
            assert ledger.slots == 8
            assert len(ledger.per_slot_totals) == 8
            assert ledger.per_slot_totals[-1] == pytest.approx(ledger.total)


class TestFleetEvaluation:
    def test_per_user_scoring_against_the_crowd(self, chain):
        simulation = _fleet(chain, n_users=6, horizon=25)
        report = simulation.run(55)
        evaluation = report.evaluate(chain, MaximumLikelihoodDetector())
        assert evaluation.chosen_rows.shape == (6,)
        assert evaluation.tracking_per_user.shape == (6,)
        assert np.all(evaluation.tracking_per_user >= 0)
        assert np.all(evaluation.tracking_per_user <= 1)
        # Detection per user equals "the chosen row is that user's real
        # service" against the merged plane.
        for user in range(6):
            expected = float(
                evaluation.chosen_rows[user]
                == report.observations.real_rows[user]
            )
            assert evaluation.detected_per_user[user] == expected

    def test_crowd_blending_shrinks_detection(self, chain):
        """Per-user detection in a crowd of M statistically identical
        users is ~1/N — far below the single-user 1/2 baseline."""
        topology = MECTopology.from_grid(GridTopology(2, 5), capacity=20)
        config = FleetSimulationConfig(n_users=20, horizon=40, n_chaffs=1)
        simulation = FleetSimulation(
            topology, chain, strategy=get_strategy("IM"), config=config
        )
        stats = run_fleet_monte_carlo(simulation, n_runs=5, seed=3)
        assert stats.mean_detection < 0.25

    def test_detect_crowd_matches_broadcast_batch(self, chain):
        """The ML score-once override must pick the same rows as the
        generic broadcast-into-detect_batch path."""
        from repro.core.eavesdropper.detector import TrajectoryDetector
        from repro.sim.seeding import spawn_generators

        report = _fleet(chain, n_users=5, horizon=15).run(61)
        crowd = report.observations.trajectories
        detector = MaximumLikelihoodDetector()
        fast = detector.detect_crowd(chain, crowd, spawn_generators(4, 5))
        generic = TrajectoryDetector.detect_crowd(
            detector, chain, crowd, spawn_generators(4, 5)
        )
        assert np.array_equal(fast, generic)

    def test_random_guess_detector_supported(self, chain):
        report = _fleet(chain, n_users=4, horizon=10).run(21)
        evaluation = report.evaluate(chain, RandomGuessDetector())
        assert evaluation.chosen_rows.shape == (4,)

    def test_evaluate_requires_a_seed_source(self, chain):
        report = _fleet(chain, n_users=2, horizon=5).run(1)
        report.evaluation_seed = None
        with pytest.raises(ValueError, match="evaluation seed"):
            report.evaluate(chain, MaximumLikelihoodDetector())


class TestFleetMonteCarlo:
    def test_serial_equals_sharded(self, chain):
        simulation = _fleet(chain, n_users=5, horizon=15, capacity=3)
        serial = run_fleet_monte_carlo(simulation, n_runs=6, seed=17, workers=1)
        sharded = run_fleet_monte_carlo(
            simulation, n_runs=6, seed=17, workers=WORKERS
        )
        assert np.array_equal(serial.tracking_runs, sharded.tracking_runs)
        assert np.array_equal(serial.detection_runs, sharded.detection_runs)
        assert np.array_equal(serial.cost_runs, sharded.cost_runs)
        assert np.array_equal(serial.migrations_runs, sharded.migrations_runs)
        assert np.array_equal(serial.rejected_runs, sharded.rejected_runs)

    def test_loop_engine_through_the_shards(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=10)
        batch = run_fleet_monte_carlo(
            simulation, n_runs=4, seed=23, workers=WORKERS, engine="batch"
        )
        loop = run_fleet_monte_carlo(
            simulation, n_runs=4, seed=23, workers=1, engine="loop"
        )
        assert np.array_equal(batch.tracking_runs, loop.tracking_runs)
        assert np.array_equal(batch.cost_runs, loop.cost_runs)

    def test_aggregate_properties(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=10)
        stats = run_fleet_monte_carlo(simulation, n_runs=3, seed=29)
        assert stats.n_runs == 3
        assert stats.n_users == 4
        assert stats.tracking_per_user.shape == (4,)
        assert stats.mean_cost_per_user == pytest.approx(stats.cost_runs.mean())

    def test_invalid_runs_rejected(self, chain):
        simulation = _fleet(chain, n_users=2, horizon=5)
        with pytest.raises(ValueError):
            run_fleet_monte_carlo(simulation, n_runs=0, seed=1)


class TestFleetExperiment:
    def _config(self) -> FleetExperimentConfig:
        return FleetExperimentConfig(
            n_users=8,
            n_cells=10,
            site_capacity=4,
            horizon=12,
            n_runs=2,
            population_sweep=(4, 8),
            capacity_sweep=(2, 4),
        )

    def test_grid_dimensions(self):
        assert grid_dimensions(25) == (5, 5)
        assert grid_dimensions(10) == (2, 5)
        assert grid_dimensions(7) == (1, 7)
        with pytest.raises(ValueError):
            grid_dimensions(0)

    def test_experiment_shape(self):
        result = run_fleet_experiment(self._config())
        assert result.experiment_id == "fleet"
        assert len(result.groups) == 2
        for series_list in result.groups.values():
            labels = [series.label for series in series_list]
            assert labels == [
                "detection-accuracy",
                "tracking-accuracy",
                "per-user-cost",
                "rejected-migrations",
            ]
        assert "crowd_blending_gain" in result.scalars

    def test_workers_do_not_change_the_numbers(self):
        serial = run_fleet_experiment(self._config())
        config = FleetExperimentConfig.from_dict(
            {**self._config().to_dict(), "workers": WORKERS}
        )
        parallel = run_fleet_experiment(config)
        assert serial.to_dict()["groups"] == parallel.to_dict()["groups"]

    def test_engines_do_not_change_the_numbers(self):
        serial = run_fleet_experiment(self._config())
        config = FleetExperimentConfig.from_dict(
            {**self._config().to_dict(), "engine": "loop"}
        )
        looped = run_fleet_experiment(config)
        assert serial.to_dict()["groups"] == looped.to_dict()["groups"]

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = self._config()
        first = run_experiment("fleet", config, cache=cache)
        assert cache.hits == 0
        second = run_experiment("fleet", config, cache=cache)
        assert cache.hits == 1
        assert first.to_dict() == second.to_dict()

    def test_config_round_trip(self):
        config = self._config()
        assert FleetExperimentConfig.from_dict(config.to_dict()) == config

    def test_derived_sweeps_are_feasible(self):
        config = FleetExperimentConfig(n_users=50, n_cells=25, site_capacity=8)
        assert max(config.populations()) == 50
        services = 50 * config.services_per_user
        for capacity in config.capacities():
            assert capacity * config.n_cells >= services

    def test_infeasible_config_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            FleetExperimentConfig(n_users=50, n_cells=9, site_capacity=4)

    def test_derived_population_sweep_clamped_to_n_users(self):
        # Tiny fleets: the derived middle point max(3, M // 2) must not
        # exceed the configured population (it used to, crashing at
        # runtime inside the experiment).
        config = FleetExperimentConfig(n_users=2, n_cells=4, site_capacity=1)
        assert config.populations() == (2,)
        result = run_fleet_experiment(
            FleetExperimentConfig(
                n_users=2, n_cells=4, site_capacity=1, horizon=5, n_runs=1
            )
        )
        assert result.experiment_id == "fleet"

    def test_explicit_sweep_points_validated(self):
        with pytest.raises(ValueError, match="population sweep point"):
            FleetExperimentConfig(
                n_users=8, n_cells=10, site_capacity=2, population_sweep=(8, 80)
            )
        with pytest.raises(ValueError, match="capacity sweep point"):
            FleetExperimentConfig(
                n_users=50, n_cells=25, site_capacity=8, capacity_sweep=(1,)
            )
        with pytest.raises(ValueError, match="non-empty|positive"):
            FleetExperimentConfig(population_sweep=())


class TestFleetCLI:
    def test_fleet_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--users",
                "6",
                "--cells",
                "10",
                "--capacity",
                "3",
                "--runs",
                "2",
                "--horizon",
                "10",
                "--no-cache",
                "--output",
                str(tmp_path / "fleet.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[fleet]" in out
        assert (tmp_path / "fleet.json").exists()

    def test_run_fleet_uses_generic_flags(self, capsys):
        from repro.cli import main

        code = main(["run", "fleet", "--runs", "2", "--horizon", "8", "--no-cache"])
        assert code == 0
        assert "[fleet]" in capsys.readouterr().out


class TestSaturatedTopology:
    """Satellites: a fully saturated deployment, exact stats accounting."""

    def test_every_request_rejected_when_saturated(self):
        # Complete graph, capacity 1, every site occupied: any move
        # request targets a full site and no free site exists, so every
        # single request is rejected and nothing moves.
        topology = MECTopology.complete(4, capacity=1)
        engine = PlacementEngine(topology)
        current = engine.place_initial(np.array([0, 1, 2, 3]))
        assert engine.stats.as_dict() == {
            "admitted": 4,
            "spilled": 0,
            "rejected": 0,
            "evicted": 0,
            "stranded": 0,
        }
        for _slot in range(3):
            desired = np.roll(current, 1)  # everyone wants a neighbour
            placed = engine.resolve_moves(current, desired)
            assert placed.tolist() == current.tolist()
        assert engine.stats.as_dict() == {
            "admitted": 4,
            "spilled": 0,
            "rejected": 12,
            "evicted": 0,
            "stranded": 0,
        }
        assert engine.load.tolist() == [1, 1, 1, 1]

    def test_saturated_fleet_run_accounts_exactly(self, chain):
        # A fleet that exactly fills a capacity-1 deployment: after the
        # initial placement no service can ever move (every site full),
        # so both engines must report zero migrations and rejected
        # accounting must equal the number of distinct move requests.
        topology = MECTopology.complete(10, capacity=1)
        simulation = FleetSimulation(
            topology,
            chain,
            strategy=get_strategy("IM"),
            config=FleetSimulationConfig(n_users=5, horizon=12, n_chaffs=1),
        )
        for engine_name in ("batch", "loop"):
            report = simulation.run(3, engine=engine_name)
            assert report.total_migrations == 0
            stats = report.placement.as_dict()
            assert stats["admitted"] + stats["spilled"] == 10  # instantiation
            assert stats["evicted"] == 0 and stats["stranded"] == 0
            # every observed trajectory is frozen at its initial cell
            plane = report.observations.trajectories
            assert np.all(plane == plane[:, :1])
        batch = simulation.run(3, engine="batch")
        loop = simulation.run(3, engine="loop")
        assert batch.placement.as_dict() == loop.placement.as_dict()

    def test_nearest_free_tie_breaking_is_deterministic(self):
        # _nearest_free must break hop-distance ties towards the lowest
        # cell index, independent of argmin/flatnonzero platform quirks:
        # on a ring of 6 with cell 0 full, cells 1 and 5 are both one
        # hop away -> cell 1 wins, repeatably.
        for _ in range(5):
            engine = PlacementEngine(MECTopology.ring(6, capacity=1))
            engine.place_initial(np.array([0]))
            assert engine._nearest_free(0) == 1
        # with cell 1 also full the next candidates are 2 and 5 at
        # distances 2 and 1: distance wins over index.
        engine = PlacementEngine(MECTopology.ring(6, capacity=1))
        engine.place_initial(np.array([0, 1]))
        assert engine._nearest_free(0) == 5
        # equidistant free sites on a complete graph: lowest index wins.
        engine = PlacementEngine(MECTopology.complete(5, capacity=1))
        engine.place_initial(np.array([0]))
        assert engine._nearest_free(0) == 1
        # and the choice is stable under permuted load histories that
        # leave the same free set.
        engine = PlacementEngine(MECTopology.complete(5, capacity=1))
        engine.place_initial(np.array([0, 3]))
        assert engine._nearest_free(3) == 1


class TestSingleUserEquivalence:
    """Satellite: M=1 empty-timeline fleet == single-user MECSimulation.

    The regression anchor of the dynamic-world refactor: one user on an
    uncontended deployment must reproduce the single-user simulator's
    privacy and cost numbers bit-identically (the fleet's user stream is
    child 0 of the run seed; tie-free strategies keep the detector
    decisions deterministic).
    """

    @pytest.mark.parametrize("strategy_name", ["ML", "MO"])
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_m1_fleet_reproduces_single_user_simulation(
        self, chain, strategy_name, engine
    ):
        from repro.sim.seeding import as_seed_sequence

        seed = 424
        topology = MECTopology.from_grid(GridTopology(2, 5), capacity=16)
        strategy = get_strategy(strategy_name)
        fleet = FleetSimulation(
            topology,
            chain,
            strategy=strategy,
            config=FleetSimulationConfig(
                n_users=1, horizon=40, n_chaffs=2, shuffle_observations=False
            ),
        )
        fleet_report = fleet.run(seed, engine=engine)
        single = MECSimulation(
            topology,
            chain,
            strategy=strategy,
            config=MECSimulationConfig(
                horizon=40, n_chaffs=2, shuffle_observations=False
            ),
        )
        rng = np.random.default_rng(as_seed_sequence(seed).spawn(3)[0])
        single_report = single.run(rng)
        assert np.array_equal(
            fleet_report.user_trajectories[0], single_report.user_trajectory
        )
        assert np.array_equal(
            fleet_report.observations.trajectories,
            single_report.observations.trajectories,
        )
        fleet_ledger = fleet_report.ledgers[0]
        single_ledger = single_report.ledger
        assert fleet_ledger.migration_total == single_ledger.migration_total
        assert fleet_ledger.communication_total == single_ledger.communication_total
        assert fleet_ledger.chaff_total == single_ledger.chaff_total
        assert fleet_ledger.migrations == single_ledger.migrations
        assert fleet_ledger.per_slot_totals == single_ledger.per_slot_totals
        fleet_eval = fleet_report.evaluate(chain, MaximumLikelihoodDetector())
        single_eval = single_report.evaluate(
            chain, MaximumLikelihoodDetector(), np.random.default_rng(0)
        )
        assert fleet_eval.tracking_per_user[0] == single_eval["tracking_accuracy"]
        assert fleet_eval.detected_per_user[0] == single_eval["detection_accuracy"]
        assert fleet_report.total_cost == single_eval["total_cost"]

    def test_m1_no_chaff_fleet_reproduces_single_user(self, chain):
        from repro.sim.seeding import as_seed_sequence

        seed = 99
        topology = MECTopology.from_grid(GridTopology(2, 5), capacity=16)
        fleet = FleetSimulation(
            topology,
            chain,
            config=FleetSimulationConfig(
                n_users=1, horizon=30, n_chaffs=0, shuffle_observations=False
            ),
        )
        fleet_report = fleet.run(seed)
        single = MECSimulation(
            topology,
            chain,
            config=MECSimulationConfig(
                horizon=30, n_chaffs=0, shuffle_observations=False
            ),
        )
        rng = np.random.default_rng(as_seed_sequence(seed).spawn(3)[0])
        single_report = single.run(rng)
        assert np.array_equal(
            fleet_report.user_trajectories[0], single_report.user_trajectory
        )
        assert fleet_report.ledgers[0].per_slot_totals == (
            single_report.ledger.per_slot_totals
        )
