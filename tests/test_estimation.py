"""Tests for the empirical mobility-model fitting layer.

Covers additive-smoothing ergodicity guarantees, degenerate inputs
(empty trajectory sets, empty and length-1 trajectories), the censored
transition counter and count-matrix fitting used by the learning
adversary, and recovery of per-regime transition matrices when fitting
on trajectories split along a dynamic world's regime schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.estimation import (
    chain_from_transition_counts,
    count_censored_transitions,
    count_transitions,
    empirical_state_distribution,
    empirical_transition_matrix,
    fit_markov_chain,
)
from repro.mobility.markov import MarkovChain
from repro.mobility.models import paper_synthetic_models
from repro.world.events import RegimeSwitch
from repro.world.timeline import Timeline


class TestCountTransitions:
    def test_counts_pairs(self):
        counts = count_transitions([[0, 1, 1, 2]], 3)
        assert counts[0, 1] == 1
        assert counts[1, 1] == 1
        assert counts[1, 2] == 1
        assert counts.sum() == 3

    def test_empty_trajectory_set(self):
        assert count_transitions([], 4).sum() == 0

    def test_empty_and_length_one_trajectories(self):
        counts = count_transitions([[], [2], [0, 1]], 3)
        assert counts.sum() == 1
        assert counts[0, 1] == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            count_transitions([[0, 5]], 3)
        with pytest.raises(ValueError, match="n_states"):
            count_transitions([[0]], 0)


class TestCensoredCounts:
    def test_gaps_are_not_bridged(self):
        plane = np.array([[0, -1, 1, 1], [2, 2, -1, 0]])
        counts = count_censored_transitions(plane, 3)
        assert counts[1, 1] == 1
        assert counts[2, 2] == 1
        assert counts.sum() == 2

    def test_batch_tensor_counted_in_one_pass(self):
        tensor = np.array([[[0, 1], [1, 2]], [[2, 0], [0, 0]]])
        counts = count_censored_transitions(tensor, 3)
        assert counts.sum() == 4
        assert counts[0, 1] == 1 and counts[2, 0] == 1

    def test_degenerate_shapes(self):
        assert count_censored_transitions(np.empty((0, 5)), 3).sum() == 0
        assert count_censored_transitions(np.array([[4]]), 5).sum() == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            count_censored_transitions(np.array([[0, 9]]), 3)


class TestSmoothingAndErgodicity:
    def test_unseen_rows_become_uniform(self):
        matrix = empirical_transition_matrix([[0, 1, 0, 1]], 3, smoothing=1e-3)
        assert np.allclose(matrix[2], 1.0 / 3)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_smoothed_fit_is_ergodic(self):
        # A deterministic cycle fragment plus an unvisited state: without
        # smoothing the chain would be reducible; with it, ergodic.
        chain = fit_markov_chain([[0, 1, 0, 1, 0]], 4, smoothing=1e-3)
        assert chain.is_ergodic()
        assert np.all(chain.transition_matrix > 0)

    def test_zero_smoothing_rejected(self):
        with pytest.raises(ValueError, match="smoothing"):
            empirical_transition_matrix([[0, 1]], 2, smoothing=0.0)
        with pytest.raises(ValueError, match="smoothing"):
            chain_from_transition_counts(np.zeros((2, 2)), smoothing=0.0)

    def test_fit_on_no_observations_is_uniform(self):
        chain = fit_markov_chain([], 4, smoothing=1e-3)
        assert np.allclose(chain.transition_matrix, 0.25)
        assert np.allclose(chain.stationary, 0.25)

    def test_state_distribution_edge_cases(self):
        distribution = empirical_state_distribution([[0, 0, 1]], 3)
        assert distribution[0] == pytest.approx(2 / 3)
        with pytest.raises(ValueError, match="no observations"):
            empirical_state_distribution([], 3)
        smoothed = empirical_state_distribution([], 3, smoothing=1.0)
        assert np.allclose(smoothed, 1.0 / 3)

    def test_fit_recovers_a_known_chain(self):
        chain = MarkovChain(np.array([[0.8, 0.2], [0.4, 0.6]]))
        rng = np.random.default_rng(0)
        trajectories = chain.sample_trajectories(50, 200, rng)
        fitted = fit_markov_chain(list(trajectories), 2)
        assert np.abs(fitted.transition_matrix - chain.transition_matrix).max() < 0.03


class TestChainFromCounts:
    def test_matches_trajectory_fit(self):
        trajectories = [[0, 1, 1, 0], [1, 0, 0, 1]]
        counts = count_transitions(trajectories, 2)
        via_counts = chain_from_transition_counts(counts)
        via_trajectories = fit_markov_chain(trajectories, 2)
        assert np.allclose(
            via_counts.transition_matrix, via_trajectories.transition_matrix
        )

    def test_accumulated_counts_equal_joint_fit(self):
        a = count_transitions([[0, 1, 0]], 2)
        b = count_transitions([[1, 1, 1]], 2)
        joint = count_transitions([[0, 1, 0], [1, 1, 1]], 2)
        assert np.array_equal(a + b, joint)
        assert np.allclose(
            chain_from_transition_counts(a + b).transition_matrix,
            chain_from_transition_counts(joint).transition_matrix,
        )

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="square"):
            chain_from_transition_counts(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="non-negative"):
            chain_from_transition_counts(np.array([[1.0, -1.0], [0.0, 0.0]]))


class TestPerRegimeRecovery:
    def test_regime_split_fit_recovers_both_matrices(self):
        """Fitting on trajectory segments split by the world schedule
        recovers each regime's transition matrix."""
        chains = paper_synthetic_models(5, seed=7)
        base = chains["non-skewed"]
        regime = chains["temporally-skewed"]
        horizon, period = 200, 25
        timeline = Timeline(
            events=tuple(
                RegimeSwitch(slot=k * period, regime=k % 2)
                for k in range(horizon // period)
            ),
            regime_chains=(regime,),
        )
        schedule = timeline.compile(
            horizon=horizon,
            n_cells=5,
            n_users=1,
            base_capacities=np.full(5, 100, dtype=np.int64),
            base_chain=base,
        )
        stack = schedule.transition_stack()
        rng = np.random.default_rng(1)
        trajectories = np.stack(
            [
                base.sample_trajectory(horizon, rng, transition_stack=stack)
                for _ in range(120)
            ]
        )
        # The transition into slot t follows regimes[t]: split each
        # trajectory into per-regime (prev, next) pair lists and fit one
        # chain per regime.
        fitted = {}
        for index, chain in enumerate((base, regime)):
            slots = np.flatnonzero(schedule.regimes[1:] == index) + 1
            pairs = [
                trajectories[:, slot - 1 : slot + 1] for slot in slots
            ]
            segments = np.concatenate(pairs, axis=0)
            fitted[index] = fit_markov_chain(list(segments), 5)
            error = np.abs(
                fitted[index].transition_matrix - chain.transition_matrix
            ).max()
            assert error < 0.08, f"regime {index} off by {error}"
        # The two recovered regimes are genuinely different models.
        assert (
            np.abs(
                fitted[0].transition_matrix - fitted[1].transition_matrix
            ).max()
            > 0.1
        )
