"""Tests for the trellis graph and most-likely-trajectory solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trellis import (
    InfeasibleTrellisError,
    build_trellis_graph,
    most_likely_trajectory,
    most_likely_trajectory_dijkstra,
    trajectory_cost,
    validate_allowed_mask,
)


class TestValidateAllowedMask:
    def test_default_mask_all_true(self):
        mask = validate_allowed_mask(None, 5, 3)
        assert mask.shape == (5, 3) and mask.all()

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            validate_allowed_mask(np.ones((4, 3), dtype=bool), 5, 3)

    def test_fully_blocked_slot_rejected(self):
        mask = np.ones((4, 3), dtype=bool)
        mask[2] = False
        with pytest.raises(InfeasibleTrellisError):
            validate_allowed_mask(mask, 4, 3)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError):
            validate_allowed_mask(None, 0, 3)


class TestMostLikelyTrajectory:
    def test_matches_dijkstra_small_chains(self, random_chain, skewed_chain):
        for chain in (random_chain, skewed_chain):
            for horizon in (1, 2, 5, 12):
                viterbi = most_likely_trajectory(chain, horizon)
                dijkstra = most_likely_trajectory_dijkstra(chain, horizon)
                assert np.isclose(
                    trajectory_cost(chain, viterbi), trajectory_cost(chain, dijkstra)
                )

    def test_matches_bruteforce_tiny_chain(self, two_state_chain):
        horizon = 6
        best_cost = np.inf
        for code in range(2**horizon):
            candidate = [(code >> t) & 1 for t in range(horizon)]
            best_cost = min(best_cost, trajectory_cost(two_state_chain, candidate))
        solution = most_likely_trajectory(two_state_chain, horizon)
        assert np.isclose(trajectory_cost(two_state_chain, solution), best_cost)

    def test_skewed_chain_sticks_to_hot_cell(self, skewed_chain):
        trajectory = most_likely_trajectory(skewed_chain, 10)
        assert np.all(trajectory == 0)

    def test_horizon_one_returns_stationary_argmax(self, skewed_chain):
        trajectory = most_likely_trajectory(skewed_chain, 1)
        assert trajectory[0] == int(np.argmax(skewed_chain.stationary))

    def test_trajectory_has_no_lower_cost_than_samples(self, random_chain, rng):
        best = trajectory_cost(random_chain, most_likely_trajectory(random_chain, 15))
        for _ in range(50):
            sample = random_chain.sample_trajectory(15, rng)
            assert best <= trajectory_cost(random_chain, sample) + 1e-9

    def test_allowed_mask_respected(self, skewed_chain):
        horizon = 6
        mask = np.ones((horizon, skewed_chain.n_states), dtype=bool)
        mask[:, 0] = False  # forbid the hot cell everywhere
        trajectory = most_likely_trajectory(skewed_chain, horizon, allowed=mask)
        assert not np.any(trajectory == 0)

    def test_allowed_mask_single_cell_forces_it(self, random_chain):
        horizon = 4
        mask = np.zeros((horizon, random_chain.n_states), dtype=bool)
        mask[:, 3] = True
        trajectory = most_likely_trajectory(random_chain, horizon, allowed=mask)
        assert np.all(trajectory == 3)

    def test_masked_viterbi_matches_masked_dijkstra(self, random_chain):
        horizon = 8
        mask = np.ones((horizon, random_chain.n_states), dtype=bool)
        mask[2, 0] = False
        mask[5, 4] = False
        viterbi = most_likely_trajectory(random_chain, horizon, allowed=mask)
        dijkstra = most_likely_trajectory_dijkstra(random_chain, horizon, allowed=mask)
        assert np.isclose(
            trajectory_cost(random_chain, viterbi),
            trajectory_cost(random_chain, dijkstra),
        )

    def test_cost_is_negative_log_likelihood(self, random_chain, rng):
        trajectory = random_chain.sample_trajectory(9, rng)
        assert np.isclose(
            trajectory_cost(random_chain, trajectory),
            -random_chain.log_likelihood(trajectory),
        )


class TestTrellisGraph:
    def test_node_and_edge_counts(self, two_state_chain):
        horizon = 4
        graph, source, sink = build_trellis_graph(two_state_chain, horizon)
        # source + sink + horizon layers of L cells
        assert graph.number_of_nodes() == 2 + horizon * 2
        # source->L1 (2) + between-layer (3 * 4) + LT->sink (2)
        assert graph.number_of_edges() == 2 + (horizon - 1) * 4 + 2

    def test_edge_weights_match_model(self, two_state_chain):
        graph, source, _ = build_trellis_graph(two_state_chain, 3)
        weight = graph.edges[source, (1, 0)]["weight"]
        assert np.isclose(weight, -np.log(two_state_chain.stationary[0]))
        weight = graph.edges[(1, 0), (2, 1)]["weight"]
        assert np.isclose(weight, -np.log(two_state_chain.transition_matrix[0, 1]))

    def test_forbidden_vertices_removed(self, two_state_chain):
        mask = np.ones((3, 2), dtype=bool)
        mask[1, 0] = False
        graph, _, _ = build_trellis_graph(two_state_chain, 3, allowed=mask)
        assert (2, 0) not in graph.nodes
