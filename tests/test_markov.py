"""Unit tests for the Markov-chain mobility substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.markov import (
    MarkovChain,
    StationaryDistributionError,
    is_ergodic,
    stationary_distribution,
    total_variation_distance,
    validate_transition_matrix,
)


class TestValidateTransitionMatrix:
    def test_accepts_valid_matrix(self):
        matrix = np.array([[0.5, 0.5], [0.2, 0.8]])
        out = validate_transition_matrix(matrix)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_renormalises_tiny_drift(self):
        matrix = np.array([[0.5, 0.5 + 1e-9], [0.2, 0.8]])
        out = validate_transition_matrix(matrix)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_transition_matrix(np.ones((2, 3)) / 3)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="negative"):
            validate_transition_matrix(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="sums to"):
            validate_transition_matrix(np.array([[0.5, 0.1], [0.5, 0.5]]))

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError, match="at least one state"):
            validate_transition_matrix(np.empty((0, 0)))

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match="square"):
            validate_transition_matrix(np.ones((2, 2, 2)))


class TestStationaryDistribution:
    def test_two_state_closed_form(self):
        # For [[1-a, a], [b, 1-b]] the stationary vector is (b, a)/(a+b).
        a, b = 0.1, 0.3
        pi = stationary_distribution(np.array([[1 - a, a], [b, 1 - b]]))
        assert np.allclose(pi, [b / (a + b), a / (a + b)])

    def test_uniform_for_doubly_stochastic(self):
        matrix = np.array([[0.5, 0.25, 0.25], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]])
        pi = stationary_distribution(matrix)
        assert np.allclose(pi, 1.0 / 3.0)

    def test_is_left_eigenvector(self, random_chain):
        pi = random_chain.stationary
        assert np.allclose(pi @ random_chain.transition_matrix, pi, atol=1e-8)

    def test_sums_to_one(self, skewed_chain):
        assert np.isclose(skewed_chain.stationary.sum(), 1.0)

    def test_single_state(self):
        assert np.allclose(stationary_distribution(np.array([[1.0]])), [1.0])

    def test_identity_matrix_not_unique_but_valid_output(self):
        # The identity chain has many stationary vectors; the solver must
        # still return a valid probability vector satisfying pi P = pi.
        pi = stationary_distribution(np.eye(3))
        assert np.isclose(pi.sum(), 1.0)
        assert np.all(pi >= 0)


class TestErgodicity:
    def test_positive_matrix_is_ergodic(self):
        assert is_ergodic(np.full((4, 4), 0.25))

    def test_periodic_chain_not_ergodic(self):
        # Deterministic 2-cycle is irreducible but periodic.
        assert not is_ergodic(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_reducible_chain_not_ergodic(self):
        assert not is_ergodic(np.array([[1.0, 0.0], [0.0, 1.0]]))

    def test_single_state_is_ergodic(self):
        assert is_ergodic(np.array([[1.0]]))


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.3, 0.7])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestMarkovChainBasics:
    def test_n_states(self, two_state_chain):
        assert two_state_chain.n_states == 2

    def test_rejects_bad_initial_distribution_shape(self):
        with pytest.raises(ValueError, match="initial distribution"):
            MarkovChain(np.eye(2) * 0.5 + 0.25, initial_distribution=np.array([1.0]))

    def test_rejects_non_probability_initial_distribution(self):
        with pytest.raises(ValueError, match="probability"):
            MarkovChain(
                np.full((2, 2), 0.5), initial_distribution=np.array([0.7, 0.7])
            )

    def test_default_initial_is_stationary(self, two_state_chain):
        assert np.allclose(
            two_state_chain.initial_distribution, two_state_chain.stationary
        )

    def test_log_transition_matches_log(self, two_state_chain):
        assert np.allclose(
            two_state_chain.log_transition_matrix,
            np.log(two_state_chain.transition_matrix),
        )

    def test_is_ergodic_method(self, two_state_chain):
        assert two_state_chain.is_ergodic()


class TestSampling:
    def test_trajectory_length(self, two_state_chain, rng):
        assert two_state_chain.sample_trajectory(17, rng).shape == (17,)

    def test_trajectory_values_in_range(self, random_chain, rng):
        traj = random_chain.sample_trajectory(200, rng)
        assert traj.min() >= 0 and traj.max() < random_chain.n_states

    def test_initial_state_respected(self, random_chain, rng):
        traj = random_chain.sample_trajectory(5, rng, initial_state=3)
        assert traj[0] == 3

    def test_invalid_initial_state(self, two_state_chain, rng):
        with pytest.raises(ValueError):
            two_state_chain.sample_trajectory(5, rng, initial_state=9)

    def test_zero_length_rejected(self, two_state_chain, rng):
        with pytest.raises(ValueError):
            two_state_chain.sample_trajectory(0, rng)

    def test_sample_trajectories_shape(self, two_state_chain, rng):
        batch = two_state_chain.sample_trajectories(4, 9, rng)
        assert batch.shape == (4, 9)

    def test_sample_trajectories_count_positive(self, two_state_chain, rng):
        with pytest.raises(ValueError):
            two_state_chain.sample_trajectories(0, 5, rng)

    def test_deterministic_chain_sampling(self, rng):
        # An (almost) deterministic cycle must produce the cycle.
        eps = 1e-12
        matrix = np.array(
            [[eps, 1 - 2 * eps, eps], [eps, eps, 1 - 2 * eps], [1 - 2 * eps, eps, eps]]
        )
        chain = MarkovChain(matrix)
        traj = chain.sample_trajectory(9, rng, initial_state=0)
        assert list(traj[:4]) == [0, 1, 2, 0]

    def test_empirical_frequency_matches_stationary(self, two_state_chain):
        rng = np.random.default_rng(0)
        traj = two_state_chain.sample_trajectory(20_000, rng)
        frequency = np.bincount(traj, minlength=2) / traj.size
        assert np.allclose(frequency, two_state_chain.stationary, atol=0.03)

    def test_next_state_distribution(self, two_state_chain):
        rng = np.random.default_rng(1)
        draws = np.array(
            [two_state_chain.sample_next_state(0, rng) for _ in range(5000)]
        )
        assert abs(draws.mean() - two_state_chain.transition_matrix[0, 1]) < 0.02


class TestLikelihood:
    def test_log_likelihood_manual(self, two_state_chain):
        trajectory = [0, 1, 1]
        expected = (
            np.log(two_state_chain.stationary[0])
            + np.log(two_state_chain.transition_matrix[0, 1])
            + np.log(two_state_chain.transition_matrix[1, 1])
        )
        assert np.isclose(two_state_chain.log_likelihood(trajectory), expected)

    def test_single_slot_likelihood(self, two_state_chain):
        assert np.isclose(
            two_state_chain.log_likelihood([1]), np.log(two_state_chain.stationary[1])
        )

    def test_likelihood_exponentiates(self, two_state_chain):
        trajectory = [0, 0, 1]
        assert np.isclose(
            two_state_chain.likelihood(trajectory),
            np.exp(two_state_chain.log_likelihood(trajectory)),
        )

    def test_stepwise_sums_to_total(self, random_chain, rng):
        trajectory = random_chain.sample_trajectory(30, rng)
        steps = random_chain.stepwise_log_likelihood(trajectory)
        assert np.isclose(steps.sum(), random_chain.log_likelihood(trajectory))

    def test_out_of_range_trajectory(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.log_likelihood([0, 5])

    def test_empty_trajectory(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.log_likelihood([])

    def test_zero_probability_transition_is_floored(self):
        chain = MarkovChain(np.array([[1.0, 0.0], [0.5, 0.5]]))
        value = chain.log_likelihood([0, 1])
        assert np.isfinite(value)
        assert value < -100  # effectively impossible


class TestInformationQuantities:
    def test_entropy_rate_uniform_chain(self):
        chain = MarkovChain(np.full((4, 4), 0.25))
        assert np.isclose(chain.entropy_rate(), np.log(4))

    def test_entropy_rate_deterministic_chain(self):
        eps = 1e-15
        chain = MarkovChain(
            np.array([[eps, 1 - eps], [1 - eps, eps]])
        )
        assert chain.entropy_rate() < 1e-10

    def test_collision_probability_uniform(self):
        chain = MarkovChain(np.full((5, 5), 0.2))
        assert np.isclose(chain.stationary_collision_probability(), 0.2)

    def test_collision_probability_bounds(self, skewed_chain):
        value = skewed_chain.stationary_collision_probability()
        assert 1.0 / skewed_chain.n_states <= value <= 1.0

    def test_kl_row_distance_zero_for_identical_rows(self):
        chain = MarkovChain(np.full((3, 3), 1.0 / 3.0))
        assert chain.mean_kl_row_distance() == 0.0

    def test_kl_row_distance_positive_for_different_rows(self, random_chain):
        assert random_chain.mean_kl_row_distance() > 0

    def test_kl_matrix_diagonal_zero(self, random_chain):
        assert np.all(np.diag(random_chain.kl_row_distance_matrix()) == 0)

    def test_single_state_kl_zero(self):
        chain = MarkovChain(np.array([[1.0]]))
        assert chain.mean_kl_row_distance() == 0.0


class TestMixing:
    def test_mixing_time_fast_chain(self):
        chain = MarkovChain(np.full((3, 3), 1.0 / 3.0))
        assert chain.mixing_time(0.25) == 1

    def test_mixing_time_monotone_in_epsilon(self, random_chain):
        assert random_chain.mixing_time(0.01) >= random_chain.mixing_time(0.25)

    def test_mixing_time_invalid_epsilon(self, random_chain):
        with pytest.raises(ValueError):
            random_chain.mixing_time(0.0)

    def test_mixing_time_capped(self):
        # Near-periodic chain mixes very slowly; the cap must be returned.
        eps = 1e-9
        chain = MarkovChain(np.array([[eps, 1 - eps], [1 - eps, eps]]))
        assert chain.mixing_time(0.01, max_steps=10) == 10

    def test_n_step_matrix(self, two_state_chain):
        two_step = two_state_chain.n_step_matrix(2)
        assert np.allclose(
            two_step,
            two_state_chain.transition_matrix @ two_state_chain.transition_matrix,
        )

    def test_n_step_matrix_zero(self, two_state_chain):
        assert np.allclose(two_state_chain.n_step_matrix(0), np.eye(2))

    def test_n_step_matrix_negative(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.n_step_matrix(-1)


class TestRestrictedArgmax:
    def test_row_argmax(self, skewed_chain):
        assert skewed_chain.restricted_argmax_row(1) == 0

    def test_row_argmax_with_exclusion(self, skewed_chain):
        best = skewed_chain.restricted_argmax_row(1, excluded=[0])
        assert best != 0

    def test_stationary_argmax(self, skewed_chain):
        assert skewed_chain.restricted_argmax_stationary() == int(
            np.argmax(skewed_chain.stationary)
        )

    def test_stationary_argmax_with_exclusion(self, skewed_chain):
        top = int(np.argmax(skewed_chain.stationary))
        assert skewed_chain.restricted_argmax_stationary(excluded=[top]) != top

    def test_all_excluded_raises(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.restricted_argmax_row(0, excluded=[0, 1])

    def test_invalid_state_raises(self, two_state_chain):
        with pytest.raises(ValueError):
            two_state_chain.restricted_argmax_row(5)


class TestStationaryError:
    def test_error_type_is_value_error(self):
        assert issubclass(StationaryDistributionError, ValueError)
