"""Golden-seed equivalence tests: batched engine == looped engine.

The batched Monte-Carlo engine must reproduce the looped engine *exactly*
— same user trajectories, same chaffs, same detection decisions, same
``TrackingStatistics`` — for the same master seed, because each run keeps
its own child generator and every batched stage consumes the generators
in the scalar order.  These tests pin that contract for every registered
strategy and every detector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import aggregate_episodes
from repro.core.eavesdropper import (
    BayesianPosteriorTracker,
    MaximumLikelihoodDetector,
    PrefixMLTracker,
    RandomGuessDetector,
    StrategyAwareDetector,
)
from repro.core.game import PrivacyGame
from repro.core.strategies import available_strategies, get_strategy
from repro.mobility.models import paper_synthetic_models
from repro.sim.monte_carlo import MonteCarloRunner, run_game_monte_carlo
from repro.sim.runner import sweep_strategies

N_RUNS = 6
HORIZON = 12
SEED = 2017


@pytest.fixture(scope="module")
def chain():
    return paper_synthetic_models(8, seed=1)["spatially-skewed"]


def _spawn(n_runs: int = N_RUNS, seed: int = SEED):
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(n_runs)
    ]


def assert_batch_matches_episodes(batch, episodes):
    assert batch.n_runs == len(episodes)
    for run, episode in enumerate(episodes):
        assert np.array_equal(batch.user_trajectories[run], episode.user_trajectory)
        assert np.array_equal(batch.chaff_trajectories[run], episode.chaff_trajectories)
        assert np.array_equal(
            batch.observed_trajectories[run], episode.observed_trajectories
        )
        assert batch.detection.chosen_indices[run] == episode.detection.chosen_index
        assert np.array_equal(
            batch.detection.scores[run], episode.detection.scores, equal_nan=True
        )
        assert np.array_equal(
            batch.detection.candidate_indices[run],
            episode.detection.candidate_indices,
        )
        assert np.array_equal(batch.tracked_per_slot[run], episode.tracked_per_slot)
        assert bool(batch.detected_user[run]) == episode.detected_user


class TestStrategyEquivalence:
    @pytest.mark.parametrize("name", available_strategies())
    @pytest.mark.parametrize("n_services", [2, 4])
    def test_batch_reproduces_loop(self, chain, name, n_services):
        game = PrivacyGame(
            chain, get_strategy(name), MaximumLikelihoodDetector(), n_services=n_services
        )
        loop = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop")
        batch = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch")
        episodes = loop.run_episodes(game, horizon=HORIZON)
        result = batch.run_batch(game, horizon=HORIZON)
        assert_batch_matches_episodes(result, episodes)
        stats_loop = aggregate_episodes(episodes)
        stats_batch = result.aggregate()
        assert np.array_equal(
            stats_loop.per_slot_accuracy, stats_batch.per_slot_accuracy
        )
        assert stats_loop.tracking_accuracy == stats_batch.tracking_accuracy
        assert stats_loop.detection_accuracy == stats_batch.detection_accuracy
        assert stats_loop.n_episodes == stats_batch.n_episodes

    @pytest.mark.parametrize("name", available_strategies())
    def test_generate_batch_matches_generate(self, chain, name):
        strategy_batch = get_strategy(name)
        strategy_loop = get_strategy(name)
        rngs_a = _spawn()
        rngs_b = _spawn()
        users = chain.sample_trajectories_batch(HORIZON, _spawn(seed=5))
        batched = strategy_batch.generate_batch(chain, users, 2, rngs_a)
        looped = np.stack(
            [
                strategy_loop.generate(chain, users[run], 2, rngs_b[run])
                for run in range(N_RUNS)
            ]
        )
        assert np.array_equal(batched, looped)
        # The generators must also end in the same state so downstream
        # detector draws stay aligned.
        for a, b in zip(rngs_a, rngs_b, strict=True):
            assert a.random() == b.random()


class TestDetectorEquivalence:
    @pytest.mark.parametrize(
        "detector_factory",
        [
            MaximumLikelihoodDetector,
            RandomGuessDetector,
            lambda: StrategyAwareDetector(get_strategy("MO")),
        ],
    )
    def test_detect_batch_matches_detect(self, chain, detector_factory):
        detector = detector_factory()
        observed = np.stack(
            [
                chain.sample_trajectories(3, HORIZON, rng)
                for rng in _spawn(seed=11)
            ]
        )
        outcome = detector.detect_batch(chain, observed, _spawn())
        rngs = _spawn()
        for run in range(N_RUNS):
            single = detector_factory().detect(chain, observed[run], rngs[run])
            assert outcome.chosen_indices[run] == single.chosen_index
            assert np.array_equal(outcome.scores[run], single.scores, equal_nan=True)
            assert np.array_equal(
                outcome.candidate_indices[run], single.candidate_indices
            )

    def test_strategy_aware_game_equivalence(self, chain):
        detector = StrategyAwareDetector(get_strategy("MO"))
        game = PrivacyGame(chain, get_strategy("RMO"), detector, n_services=3)
        loop = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop")
        batch = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch")
        episodes = loop.run_episodes(game, horizon=HORIZON)
        result = batch.run_batch(game, horizon=HORIZON)
        assert_batch_matches_episodes(result, episodes)


class TestProviderEquivalence:
    def test_user_trajectory_provider(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        trace = chain.sample_trajectory(HORIZON, np.random.default_rng(3))
        provider = lambda run, rng: np.roll(trace, run)
        loop = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop")
        batch = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch")
        episodes = loop.run_episodes(game, user_trajectory_provider=provider)
        result = batch.run_batch(game, user_trajectory_provider=provider)
        assert_batch_matches_episodes(result, episodes)

    def test_background_provider(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        background = chain.sample_trajectories(3, HORIZON, np.random.default_rng(4))
        provider = lambda run, rng: background
        loop = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop")
        batch = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch")
        episodes = loop.run_episodes(
            game, horizon=HORIZON, background_provider=provider
        )
        result = batch.run_batch(game, horizon=HORIZON, background_provider=provider)
        assert result.observed_trajectories.shape == (N_RUNS, 5, HORIZON)
        assert_batch_matches_episodes(result, episodes)

    def test_providers_invoked_exactly_once_per_run(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        calls: list[int] = []

        def provider(run, rng):
            calls.append(run)
            # Ragged on purpose: forces the loop fallback, which must reuse
            # the outputs already drawn instead of re-invoking the provider.
            return chain.sample_trajectories(1 + run % 2, HORIZON, rng)

        MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch").run(
            game, horizon=HORIZON, background_provider=provider
        )
        assert calls == list(range(N_RUNS))

    def test_ragged_backgrounds_fall_back_to_loop(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        rng = np.random.default_rng(5)
        backgrounds = [
            chain.sample_trajectories(1 + run % 2, HORIZON, rng)
            for run in range(N_RUNS)
        ]
        provider = lambda run, run_rng: backgrounds[run]
        batch = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="batch")
        loop = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop")
        stats_batch = batch.run(game, horizon=HORIZON, background_provider=provider)
        stats_loop = loop.run(game, horizon=HORIZON, background_provider=provider)
        assert np.array_equal(
            stats_batch.per_slot_accuracy, stats_loop.per_slot_accuracy
        )
        assert stats_batch.detection_accuracy == stats_loop.detection_accuracy


class TestHarnessEquivalence:
    def test_run_matches_between_engines(self, chain):
        game = PrivacyGame(
            chain, get_strategy("OO"), MaximumLikelihoodDetector(), n_services=2
        )
        a = run_game_monte_carlo(game, n_runs=5, horizon=10, seed=2, engine="batch")
        b = run_game_monte_carlo(game, n_runs=5, horizon=10, seed=2, engine="loop")
        assert np.array_equal(a.per_slot_accuracy, b.per_slot_accuracy)
        assert a.tracking_accuracy == b.tracking_accuracy
        assert a.detection_accuracy == b.detection_accuracy

    def test_sweep_matches_between_engines(self, chain):
        specs = {"IM (N = 2)": ("IM", 2), "MO (N = 3)": ("MO", 3)}
        kwargs = dict(horizon=10, n_runs=5, seed=3)
        batch = sweep_strategies(
            chain, MaximumLikelihoodDetector(), specs, engine="batch", **kwargs
        )
        loop = sweep_strategies(
            chain, MaximumLikelihoodDetector(), specs, engine="loop", **kwargs
        )
        for label in specs:
            assert np.array_equal(
                batch.statistics[label].per_slot_accuracy,
                loop.statistics[label].per_slot_accuracy,
            )

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(n_runs=2, engine="warp")

    def test_batch_episodes_materialise(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        result = MonteCarloRunner(n_runs=4, seed=0).run_batch(game, horizon=9)
        episodes = result.episodes()
        assert len(episodes) == 4
        assert all(e.horizon == 9 for e in episodes)
        stats = aggregate_episodes(episodes)
        assert np.array_equal(
            stats.per_slot_accuracy, result.aggregate().per_slot_accuracy
        )


class TestMarkovBatching:
    def test_sample_trajectories_matches_scalar_stream(self, chain):
        batched = chain.sample_trajectories(5, 20, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        scalar = np.stack([chain.sample_trajectory(20, rng) for _ in range(5)])
        assert np.array_equal(batched, scalar)

    def test_sample_trajectories_batch_matches_scalar(self, chain):
        batched = chain.sample_trajectories_batch(15, _spawn(seed=21))
        rngs = _spawn(seed=21)
        scalar = np.stack(
            [chain.sample_trajectory(15, rngs[run]) for run in range(N_RUNS)]
        )
        assert np.array_equal(batched, scalar)

    def test_log_likelihoods_matches_scalar(self, chain):
        trajectories = chain.sample_trajectories(4, 12, np.random.default_rng(2))
        tensor = trajectories.reshape(2, 2, 12)
        scores = chain.log_likelihoods(tensor)
        assert scores.shape == (2, 2)
        for i in range(2):
            for j in range(2):
                assert scores[i, j] == pytest.approx(
                    chain.log_likelihood(tensor[i, j]), abs=1e-12
                )

    def test_top_two_tables_match_restricted_argmax(self, chain):
        top1, top2 = chain.top_two_successors()
        for state in range(chain.n_states):
            assert top1[state] == chain.restricted_argmax_row(state)
            assert top2[state] == chain.restricted_argmax_row(
                state, {int(top1[state])}
            )
        pi1, pi2 = chain.top_two_stationary()
        assert pi1 == chain.restricted_argmax_stationary()
        assert pi2 == chain.restricted_argmax_stationary({pi1})


class TestOnlineTrackerBatching:
    @pytest.mark.parametrize(
        "tracker_cls", [PrefixMLTracker, BayesianPosteriorTracker]
    )
    def test_track_batch_matches_track(self, chain, tracker_cls):
        users = chain.sample_trajectories_batch(HORIZON, _spawn(seed=31))
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=3
        )
        observed = game.run_batch(_spawn(seed=32), user_trajectories=users)
        tracker = tracker_cls()
        batch_results = tracker.track_batch(
            chain, observed.observed_trajectories, users, _spawn(seed=33)
        )
        rngs = _spawn(seed=33)
        for run in range(N_RUNS):
            single = tracker_cls().track(
                chain, observed.observed_trajectories[run], users[run], rngs[run]
            )
            assert np.array_equal(
                batch_results[run].estimated_cells, single.estimated_cells
            )
            assert np.array_equal(
                batch_results[run].chosen_indices, single.chosen_indices
            )
            assert np.array_equal(
                batch_results[run].posteriors, single.posteriors
            )
