"""Integration tests for the trace-driven experiments (Figs. 8-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_fig8, run_fig9, run_fig10
from repro.experiments.trace_common import (
    build_taxi_dataset,
    per_user_tracking_accuracy,
    protected_user_accuracy,
    top_k_tracked_users,
)
from repro.core.eavesdropper import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.sim.config import TraceExperimentConfig

#: Reduced-scale trace config shared by this module (cached dataset).
SMALL_TRACE = TraceExperimentConfig(
    n_nodes=80, n_towers=100, horizon=50, top_k_users=3, seed=2024
)


@pytest.fixture(scope="module")
def dataset():
    return build_taxi_dataset(SMALL_TRACE)


class TestTraceDataset:
    def test_dataset_dimensions(self, dataset):
        assert dataset.horizon == SMALL_TRACE.horizon
        assert 0 < dataset.n_nodes <= SMALL_TRACE.n_nodes
        assert dataset.n_cells > 10

    def test_dataset_cached(self, dataset):
        assert build_taxi_dataset(SMALL_TRACE) is dataset

    def test_population_model_is_spatially_skewed(self, dataset):
        stationary = dataset.mobility_model.stationary
        assert stationary.max() > 3.0 / dataset.n_cells

    def test_per_user_accuracy_heavy_tailed(self, dataset):
        accuracies = per_user_tracking_accuracy(dataset, seed=1)
        baseline = 1.0 / dataset.n_nodes
        assert accuracies.max() > 10 * baseline
        assert np.median(accuracies) < accuracies.max() / 2

    def test_top_k_users_sorted_by_accuracy(self, dataset):
        accuracies = per_user_tracking_accuracy(dataset, seed=0)
        top = top_k_tracked_users(dataset, 3, seed=0)
        top_values = accuracies[top]
        assert np.all(np.diff(top_values) <= 1e-9)

    def test_protected_user_accuracy_validation(self, dataset):
        detector = MaximumLikelihoodDetector()
        with pytest.raises(ValueError):
            protected_user_accuracy(dataset, -1, None, detector)
        with pytest.raises(ValueError):
            protected_user_accuracy(dataset, 0, None, detector, n_chaffs=-1)

    def test_ml_chaff_protects_top_user(self, dataset):
        """A single ML chaff must not increase (and typically decreases) the
        top user's tracking accuracy under the basic eavesdropper."""
        detector = MaximumLikelihoodDetector()
        top_user = top_k_tracked_users(dataset, 1, seed=0)[0]
        before = protected_user_accuracy(dataset, top_user, None, detector, seed=3)
        after = protected_user_accuracy(
            dataset, top_user, get_strategy("ML"), detector, n_chaffs=1, seed=3
        )
        assert after <= before + 1e-9


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(SMALL_TRACE)

    def test_scalar_consistency(self, result):
        assert result.scalars["n_cells"] > 0
        assert result.scalars["n_nodes"] > 0
        assert result.scalars["horizon"] == SMALL_TRACE.horizon

    def test_steady_state_is_distribution(self, result):
        empirical = result.series("steady-state", "empirical-visits")
        assert np.isclose(sum(empirical.values), 1.0)
        fitted = result.series("steady-state", "fitted-model")
        assert np.isclose(sum(fitted.values), 1.0)

    def test_spatial_skew_entropy_gap(self, result):
        """The empirical mobility model concentrates on few cells, so its
        stationary entropy is well below the uniform entropy (Fig. 8(b))."""
        assert (
            result.scalars["stationary_entropy_nats"]
            < 0.9 * result.scalars["uniform_entropy_nats"]
        )

    def test_layout_coordinates_match_cell_count(self, result):
        xs = result.series("layout", "tower-x-meters")
        assert len(xs.values) == int(result.scalars["n_cells"])


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(SMALL_TRACE)

    def test_panel_a_shows_users_above_baseline(self, result):
        assert result.scalars["max_unprotected_accuracy"] > 10 * result.scalars[
            "baseline_1_over_N"
        ]
        assert result.scalars["n_users_above_10x_baseline"] >= 1

    def test_panel_a_sorted_descending(self, result):
        series = result.series("no-chaff", "per-user accuracy (sorted)")
        assert np.all(np.diff(series.values) <= 1e-9)

    def test_panel_b_has_top_k_users(self, result):
        assert len(result.groups["single-chaff"]) == SMALL_TRACE.top_k_users

    def test_im_does_not_help_top_users(self, result):
        """Fig. 9(b): a single IM chaff barely changes the top users'
        accuracy (it only adds one more plausible trajectory among many)."""
        for rank in range(1, SMALL_TRACE.top_k_users + 1):
            no_chaff = result.scalars[f"user{rank}/no chaff"]
            im = result.scalars[f"user{rank}/IM"]
            assert im >= no_chaff - 0.1

    def test_ml_and_oo_reduce_tracking_of_top_users(self, result):
        """Fig. 9(b): ML and OO chaffs significantly lower the accuracy."""
        improvements = 0
        for rank in range(1, SMALL_TRACE.top_k_users + 1):
            no_chaff = result.scalars[f"user{rank}/no chaff"]
            ml = result.scalars[f"user{rank}/ML"]
            oo = result.scalars[f"user{rank}/OO"]
            if ml < no_chaff - 0.05 or oo < no_chaff - 0.05:
                improvements += 1
            assert ml <= no_chaff + 1e-9
            assert oo <= no_chaff + 1e-9
        assert improvements >= 1


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(SMALL_TRACE, n_chaffs=2)

    def test_all_strategies_reported(self, result):
        for rank in range(1, SMALL_TRACE.top_k_users + 1):
            for label in ("IM", "ML", "OO", "MO", "RMO", "RML", "ROO"):
                assert f"user{rank}/{label}" in result.scalars

    def test_values_are_probabilities(self, result):
        for value in result.scalars.values():
            assert 0.0 <= value <= 1.0

    def test_robust_strategies_not_worse_than_deterministic_oo(self, result):
        """Against the strategy-aware eavesdropper, ROO must not be worse
        than plain OO on average over the top users (the whole point of the
        randomisation)."""
        oo_mean = np.mean(
            [
                result.scalars[f"user{rank}/OO"]
                for rank in range(1, SMALL_TRACE.top_k_users + 1)
            ]
        )
        roo_mean = np.mean(
            [
                result.scalars[f"user{rank}/ROO"]
                for rank in range(1, SMALL_TRACE.top_k_users + 1)
            ]
        )
        assert roo_mean <= oo_mean + 0.05
