"""Sparse-backend equivalence suite.

The CSR backend's contract is that at any ``L`` where a dense chain
exists, the sparse chain built from the *same validated floats* produces
**bit-identical** samples (same uniforms, same draw order), exact score
equality, and identical Viterbi paths — so switching backends at paper
scale (L = 10) changes nothing, while city-scale runs (L = 10^4) become
possible at all.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.eavesdropper import (
    BayesianPosteriorTracker,
    MaximumLikelihoodDetector,
    PrefixMLTracker,
    RandomGuessDetector,
    StrategyAwareDetector,
    prefix_log_likelihood_scores,
    trajectory_log_likelihoods,
)
from repro.core.game import PrivacyGame
from repro.core.strategies import available_strategies, get_strategy
from repro.core.trellis import (
    InfeasibleTrellisError,
    most_likely_trajectories,
    most_likely_trajectory,
)
from repro.mobility import (
    GridTopology,
    SparseMarkovChain,
    as_backend,
    chain_density,
    grid_drift_walk,
    grid_random_walk,
    is_ergodic,
    paper_synthetic_models,
    resolve_backend,
    stationary_distribution,
)
from repro.mobility.markov import StationaryDistributionError
from repro.mobility.sparse import DENSE_MATERIALISE_LIMIT, SPARSE_AUTO_THRESHOLD
from repro.sim.config import FleetExperimentConfig, SyntheticExperimentConfig


@pytest.fixture(scope="module")
def model_pairs():
    """The four paper models, each as a (dense, sparse) pair."""
    dense = paper_synthetic_models(10)
    return {name: (chain, SparseMarkovChain.from_chain(chain)) for name, chain in dense.items()}


@pytest.fixture(scope="module")
def banded_pair():
    """A genuinely sparse chain (tridiagonal ring) as a (dense, sparse) pair."""
    n = 30
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i, i] = 0.5
        matrix[i, (i + 1) % n] = 0.3
        matrix[i, (i - 1) % n] = 0.2
    from repro.mobility.markov import MarkovChain

    dense = MarkovChain(matrix)
    return dense, SparseMarkovChain.from_chain(dense)


class TestBackendResolution:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("dense", n_states=10**6) == "dense"
        assert resolve_backend("sparse", n_states=2) == "sparse"

    def test_auto_prefers_dense_at_paper_scale(self):
        assert resolve_backend("auto", n_states=10, density=1.0) == "dense"

    def test_auto_switches_on_size(self):
        assert resolve_backend("auto", n_states=SPARSE_AUTO_THRESHOLD) == "sparse"

    def test_auto_switches_on_sparsity(self):
        assert resolve_backend("auto", n_states=100, density=0.05) == "sparse"
        assert resolve_backend("auto", n_states=100, density=0.9) == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("csc", n_states=10)

    def test_as_backend_round_trip(self, model_pairs):
        dense, _ = model_pairs["non-skewed"]
        converted = as_backend(dense, "sparse")
        assert converted.is_sparse
        assert np.array_equal(
            converted.transition_matrix.toarray(), dense.transition_matrix
        )
        assert np.array_equal(converted.stationary, dense.stationary)
        back = as_backend(converted, "dense")
        assert not back.is_sparse

    def test_as_backend_is_identity_when_matching(self, model_pairs):
        dense, sparse = model_pairs["non-skewed"]
        assert as_backend(dense, "dense") is dense
        assert as_backend(sparse, "sparse") is sparse

    def test_chain_density(self, banded_pair):
        dense, sparse = banded_pair
        assert chain_density(dense) == pytest.approx(3.0 / 30.0)
        assert chain_density(sparse) == pytest.approx(3.0 / 30.0)


class TestBitIdenticalSampling:
    """Same seed => same trajectories, bit for bit, at paper scale."""

    @pytest.mark.parametrize(
        "name",
        [
            "non-skewed",
            "spatially-skewed",
            "temporally-skewed",
            "spatially&temporally-skewed",
        ],
    )
    def test_batch_sampling_identical(self, model_pairs, name):
        dense, sparse = model_pairs[name]
        a = dense.sample_trajectories(20, 50, np.random.default_rng(3))
        b = sparse.sample_trajectories(20, 50, np.random.default_rng(3))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", ["non-skewed", "temporally-skewed"])
    def test_scalar_sampling_identical(self, model_pairs, name):
        dense, sparse = model_pairs[name]
        a = dense.sample_trajectory(40, np.random.default_rng(11))
        b = sparse.sample_trajectory(40, np.random.default_rng(11))
        assert np.array_equal(a, b)

    def test_sample_next_state_identical(self, model_pairs):
        dense, sparse = model_pairs["spatially-skewed"]
        for state in range(dense.n_states):
            assert dense.sample_next_state(
                state, np.random.default_rng(state)
            ) == sparse.sample_next_state(state, np.random.default_rng(state))

    def test_sparse_structure_sampling_identical(self, banded_pair):
        dense, sparse = banded_pair
        a = dense.sample_trajectories(10, 30, np.random.default_rng(5))
        b = sparse.sample_trajectories(10, 30, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestExactScores:
    def test_log_likelihoods_exact(self, model_pairs, rng):
        dense, sparse = model_pairs["non-skewed"]
        trajectories = dense.sample_trajectories(8, 25, rng)
        assert np.array_equal(
            dense.log_likelihoods(trajectories), sparse.log_likelihoods(trajectories)
        )

    def test_prefix_scores_exact(self, model_pairs, rng):
        dense, sparse = model_pairs["temporally-skewed"]
        observed = dense.sample_trajectories(6, 20, rng)
        assert np.array_equal(
            prefix_log_likelihood_scores(dense, observed),
            prefix_log_likelihood_scores(sparse, observed),
        )

    def test_zero_probability_steps_share_floor(self, banded_pair):
        dense, sparse = banded_pair
        # 0 -> 15 is not an edge of the banded chain: both backends must
        # score the impossible step with the same log floor.
        impossible = np.array([0, 15, 16])
        assert dense.log_likelihood(impossible) == sparse.log_likelihood(impossible)

    def test_accessors_match(self, model_pairs, banded_pair):
        for dense, sparse in (model_pairs["non-skewed"], banded_pair):
            assert np.array_equal(
                dense.transition_diagonal(), sparse.transition_diagonal()
            )
            for state in (0, dense.n_states - 1):
                assert np.array_equal(
                    dense.transition_row(state), sparse.transition_row(state)
                )
            assert dense.positive_transition_extrema() == pytest.approx(
                sparse.positive_transition_extrema(), abs=0
            )
            t1d, t2d = dense.top_two_successors()
            t1s, t2s = sparse.top_two_successors()
            assert np.array_equal(t1d, t1s) and np.array_equal(t2d, t2s)
            assert dense.entropy_rate() == pytest.approx(sparse.entropy_rate())
            for excluded in ((), (0,), (0, 1)):
                assert dense.restricted_argmax_row(
                    2, excluded
                ) == sparse.restricted_argmax_row(2, excluded)

    def test_dense_transition_accessor_matches(self, model_pairs, banded_pair):
        """``dense_transition()`` is the backend-agnostic dense view used by
        the pair-chain construction and the dynamic-world stacks."""
        for dense, sparse in (*model_pairs.values(), banded_pair):
            assert np.array_equal(dense.dense_transition(), sparse.dense_transition())
            assert dense.dense_transition() is dense.transition_matrix

    def test_transition_edges_accessor_matches(self, model_pairs, banded_pair):
        """Both backends enumerate the same (row, col, prob) edge set."""
        for dense, sparse in (*model_pairs.values(), banded_pair):
            rd, cd, pd = dense.transition_edges()
            rs, cs, ps = sparse.transition_edges()
            assert np.array_equal(rd, rs)
            assert np.array_equal(cd, cs)
            assert np.array_equal(pd, ps)
            # The edge list reconstructs the matrix exactly.
            rebuilt = np.zeros_like(dense.dense_transition())
            rebuilt[rd, cd] = pd
            assert np.array_equal(rebuilt, dense.dense_transition())

    def test_dense_transition_respects_materialise_guard(self):
        n = DENSE_MATERIALISE_LIMIT + 1
        diag = sp.eye(n, format="csr") * 0.5
        shifted = sp.eye(n, k=1, format="csr") * 0.5
        matrix = sp.csr_array(diag + shifted)
        matrix[-1, 0] = 0.5
        chain = SparseMarkovChain(sp.csr_array(matrix))
        with pytest.raises(ValueError, match="refusing to materialise"):
            chain.dense_transition()


class TestViterbiEquivalence:
    def test_unmasked_paths_identical(self, model_pairs):
        for dense, sparse in model_pairs.values():
            for horizon in (1, 2, 9, 30):
                assert np.array_equal(
                    most_likely_trajectory(dense, horizon),
                    most_likely_trajectory(sparse, horizon),
                )

    def test_masked_batch_identical(self, model_pairs):
        dense, sparse = model_pairs["spatially&temporally-skewed"]
        rng = np.random.default_rng(17)
        masks = rng.random((25, 12, dense.n_states)) > 0.35
        paths_d, infeasible_d = most_likely_trajectories(dense, 12, masks)
        paths_s, infeasible_s = most_likely_trajectories(sparse, 12, masks)
        assert np.array_equal(infeasible_d, infeasible_s)
        assert np.array_equal(paths_d, paths_s)

    def test_all_slots_blocked_is_infeasible(self, banded_pair):
        _, sparse = banded_pair
        mask = np.ones((5, sparse.n_states), dtype=bool)
        mask[2] = False
        with pytest.raises(InfeasibleTrellisError):
            most_likely_trajectory(sparse, 5, allowed=mask)

    def test_isolated_state_uses_floor_edges(self):
        """A masked-in cell with no positive-probability predecessors is
        still reachable through the log-floor edge, exactly as in dense."""
        from repro.mobility.markov import MarkovChain

        matrix = np.array(
            [
                [0.5, 0.5, 0.0, 0.0],
                [0.5, 0.5, 0.0, 0.0],
                [0.25, 0.25, 0.25, 0.25],
                [0.25, 0.25, 0.25, 0.25],
            ]
        )
        dense = MarkovChain(matrix)
        sparse = SparseMarkovChain.from_chain(dense)
        mask = np.ones((5, 4), dtype=bool)
        mask[2] = [False, False, True, True]  # force the walk through {2, 3}
        assert np.array_equal(
            most_likely_trajectory(dense, 5, allowed=mask),
            most_likely_trajectory(sparse, 5, allowed=mask),
        )

    def test_top_k_full_equals_exact(self, model_pairs):
        dense, sparse = model_pairs["non-skewed"]
        exact = most_likely_trajectory(sparse, 15)
        assert np.array_equal(
            exact, most_likely_trajectory(sparse, 15, top_k=dense.n_states)
        )
        # Dense chains accept top_k too (routed through the sparse kernel).
        assert np.array_equal(
            exact, most_likely_trajectory(dense, 15, top_k=dense.n_states)
        )

    def test_top_k_pruning_never_beats_exact(self, model_pairs):
        dense, sparse = model_pairs["temporally-skewed"]
        exact_ll = dense.log_likelihood(most_likely_trajectory(dense, 20))
        previous = -np.inf
        for top_k in (1, 2, 4, dense.n_states):
            pruned = most_likely_trajectory(sparse, 20, top_k=top_k)
            pruned_ll = dense.log_likelihood(pruned)
            assert pruned_ll <= exact_ll + 1e-12
            # More retained successors can only improve the pruned optimum.
            assert pruned_ll >= previous - 1e-12
            previous = pruned_ll


class TestStrategyAndDetectorEquivalence:
    """Full game episodes are bit-identical under either backend."""

    @pytest.mark.parametrize("strategy_name", sorted(available_strategies()))
    def test_episode_identical_per_strategy(self, model_pairs, strategy_name):
        dense, sparse = model_pairs["non-skewed"]
        detector = MaximumLikelihoodDetector()
        episodes = []
        for chain in (dense, sparse):
            game = PrivacyGame(chain, get_strategy(strategy_name), detector)
            episodes.append(game.run_episode(np.random.default_rng(23), horizon=15))
        first, second = episodes
        assert np.array_equal(
            first.observed_trajectories, second.observed_trajectories
        )
        assert first.detection.chosen_index == second.detection.chosen_index
        assert np.array_equal(first.tracked_per_slot, second.tracked_per_slot)

    @pytest.mark.parametrize(
        "detector",
        [
            MaximumLikelihoodDetector(),
            RandomGuessDetector(),
            StrategyAwareDetector(get_strategy("ML")),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_detectors_identical(self, model_pairs, detector):
        dense, sparse = model_pairs["spatially-skewed"]
        observed = dense.sample_trajectories(5, 18, np.random.default_rng(29))
        out_d = detector.detect(dense, observed, np.random.default_rng(31))
        out_s = detector.detect(sparse, observed, np.random.default_rng(31))
        assert out_d.chosen_index == out_s.chosen_index
        assert np.array_equal(out_d.scores, out_s.scores, equal_nan=True)

    def test_online_trackers_identical(self, model_pairs):
        dense, sparse = model_pairs["temporally-skewed"]
        observed = dense.sample_trajectories(4, 16, np.random.default_rng(37))
        user = observed[0]
        for tracker in (PrefixMLTracker(), BayesianPosteriorTracker()):
            res_d = tracker.track(dense, observed, user, np.random.default_rng(41))
            res_s = tracker.track(sparse, observed, user, np.random.default_rng(41))
            assert np.array_equal(res_d.chosen_indices, res_s.chosen_indices)
            assert np.array_equal(res_d.posteriors, res_s.posteriors)

    def test_trajectory_log_likelihoods_exact(self, model_pairs, rng):
        dense, sparse = model_pairs["non-skewed"]
        observed = dense.sample_trajectories(7, 22, rng)
        assert np.array_equal(
            trajectory_log_likelihoods(dense, observed),
            trajectory_log_likelihoods(sparse, observed),
        )


class TestStationarySolvers:
    def _ring_chain(self, n, seed=0):
        """Strongly connected ring with one random chord per row."""
        rng = np.random.default_rng(seed)
        rows = np.arange(n)
        coo_rows = np.concatenate([rows, rows, rows])
        coo_cols = np.concatenate(
            [(rows + 1) % n, rows, rng.integers(0, n, size=n)]
        )
        coo_data = np.concatenate(
            [np.full(n, 0.6), np.full(n, 0.3), np.full(n, 0.1)]
        )
        return sp.csr_array((coo_data, (coo_rows, coo_cols)), shape=(n, n))

    def test_power_matches_dense(self):
        P = self._ring_chain(120)
        pi_dense = stationary_distribution(P.toarray())
        pi_power = stationary_distribution(P, method="power")
        assert np.max(np.abs(pi_dense - pi_power)) < 1e-9

    def test_eigs_matches_dense(self):
        P = self._ring_chain(120, seed=1)
        pi_dense = stationary_distribution(P.toarray())
        pi_eigs = stationary_distribution(P, method="eigs")
        assert np.max(np.abs(pi_dense - pi_eigs)) < 1e-9

    def test_power_handles_periodic_chain(self):
        n = 6
        P = sp.csr_array(
            (np.ones(n), (np.arange(n), (np.arange(n) + 1) % n)), shape=(n, n)
        )
        pi = stationary_distribution(P, method="power")
        assert np.allclose(pi, np.full(n, 1.0 / n), atol=1e-12)

    def test_small_sparse_input_uses_exact_dense_path(self, model_pairs):
        dense, _ = model_pairs["non-skewed"]
        via_sparse = stationary_distribution(
            sp.csr_array(dense.transition_matrix)
        )
        # Both inputs route to the exact lstsq reference below the size
        # threshold; re-validation may renormalise rows by 1 +/- 1 ulp, so
        # the comparison is exact up to that rounding.
        via_dense = stationary_distribution(dense.transition_matrix)
        assert np.max(np.abs(via_sparse - via_dense)) < 1e-14

    def test_tiny_stationary_mass_is_preserved(self):
        # Regression: the old implementation zeroed any |pi| < atol BEFORE
        # validating the residual, silently truncating legitimate small
        # masses.  A near-absorbing state keeps its ~1e-12 mass now.
        eps = 1e-12
        matrix = np.array([[1.0 - eps, eps], [0.5, 0.5]])
        pi = stationary_distribution(matrix)
        assert pi[1] > 0
        assert pi[1] == pytest.approx(2 * eps, rel=1e-3)

    def test_numerical_noise_still_truncated(self):
        # A 2-block reducible chain restricted to one recurrent class:
        # lstsq leaves ~1e-17 noise on the transient states, which must
        # still come out exactly zero.
        matrix = np.array(
            [
                [0.9, 0.1, 0.0],
                [0.4, 0.6, 0.0],
                [0.2, 0.3, 0.5],
            ]
        )
        pi = stationary_distribution(matrix)
        assert pi[2] == 0.0

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.eye(2), method="magic")

    def test_unnormalisable_matrix_raises(self):
        bad = sp.csr_array(np.array([[1.0, 0.0], [0.0, 1.0]]))
        # Identity has no unique stationary distribution but every
        # distribution is stationary; the solver should still return a
        # valid one rather than raising.
        pi = stationary_distribution(bad, method="power")
        assert pi.sum() == pytest.approx(1.0)

    def test_negative_entries_raise(self):
        with pytest.raises((ValueError, StationaryDistributionError)):
            stationary_distribution(np.array([[1.2, -0.2], [0.5, 0.5]]))


class TestErgodicity:
    def test_sparse_and_dense_agree(self, model_pairs, banded_pair):
        for dense, sparse in (*model_pairs.values(), banded_pair):
            assert is_ergodic(dense.transition_matrix) == is_ergodic(
                sparse.transition_matrix
            )

    def test_reducible_chain_rejected(self):
        block = np.array(
            [
                [0.5, 0.5, 0.0],
                [0.5, 0.5, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        assert not is_ergodic(block)
        assert not is_ergodic(sp.csr_array(block))

    def test_periodic_chain_rejected(self):
        n = 4
        cycle = np.zeros((n, n))
        cycle[np.arange(n), (np.arange(n) + 1) % n] = 1.0
        assert not is_ergodic(cycle)
        assert not is_ergodic(sp.csr_array(cycle))

    def test_aperiodic_cycle_with_self_loop_accepted(self):
        n = 4
        cycle = np.zeros((n, n))
        cycle[np.arange(n), (np.arange(n) + 1) % n] = 1.0
        cycle[0, 1] = 0.5
        cycle[0, 0] = 0.5
        assert is_ergodic(cycle)
        assert is_ergodic(sp.csr_array(cycle))


class TestGridConstructors:
    @pytest.mark.parametrize("builder", [grid_random_walk, grid_drift_walk])
    def test_sparse_matches_dense(self, builder):
        topology = GridTopology(6, 5)
        dense = builder(topology, epsilon=0.0)
        sparse = builder(topology, epsilon=0.0, backend="sparse")
        assert sparse.is_sparse
        assert np.allclose(
            sparse.transition_matrix.toarray(),
            dense.transition_matrix,
            atol=1e-15,
        )
        assert np.allclose(sparse.stationary, dense.stationary, atol=1e-10)

    def test_sparse_rejects_teleport(self):
        with pytest.raises(ValueError):
            grid_random_walk(GridTopology(4, 4), epsilon=1e-4, backend="sparse")
        with pytest.raises(ValueError):
            grid_drift_walk(GridTopology(4, 4), backend="sparse")  # default eps > 0

    def test_auto_with_teleport_falls_back_to_dense(self):
        chain = grid_random_walk(GridTopology(20, 20), epsilon=1e-6, backend="auto")
        assert not chain.is_sparse

    def test_auto_without_teleport_goes_sparse_on_big_grids(self):
        chain = grid_random_walk(GridTopology(20, 20), backend="auto")
        assert chain.is_sparse

    def test_city_scale_never_materialises_dense(self):
        topology = GridTopology(60, 60)  # L = 3600 > DENSE_MATERIALISE_LIMIT
        assert topology.n_cells > DENSE_MATERIALISE_LIMIT
        chain = grid_random_walk(topology, backend="sparse")
        rng = np.random.default_rng(2)
        batch = chain.sample_trajectories(8, 40, rng)
        assert batch.shape == (8, 40)
        assert chain.log_likelihoods(batch).shape == (8,)
        path = most_likely_trajectory(chain, 10, top_k=3)
        assert path.shape == (10,)
        # The O(L^2) diagnostics must refuse rather than densify.
        with pytest.raises(ValueError):
            _ = chain.log_transition_matrix
        with pytest.raises(ValueError):
            chain.to_dense()


class TestConfigPlumbing:
    def test_synthetic_config_carries_backend(self):
        config = SyntheticExperimentConfig(backend="sparse")
        assert config.scaled(n_runs=3).backend == "sparse"
        assert SyntheticExperimentConfig.from_dict(config.to_dict()) == config

    def test_fleet_config_carries_backend(self):
        config = FleetExperimentConfig(backend="auto")
        assert config.scaled(n_runs=2).backend == "auto"
        assert FleetExperimentConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("cls", [SyntheticExperimentConfig, FleetExperimentConfig])
    def test_invalid_backend_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(backend="csc")

    def test_paper_models_backend_flows(self):
        sparse_models = paper_synthetic_models(10, backend="sparse")
        assert all(chain.is_sparse for chain in sparse_models.values())

    def test_fig5_identical_across_backends(self):
        from repro.experiments.fig5 import run_fig5

        base = SyntheticExperimentConfig(n_runs=5, horizon=8)
        result_dense = run_fig5(base)
        result_sparse = run_fig5(
            SyntheticExperimentConfig(n_runs=5, horizon=8, backend="sparse")
        )
        for group, series_list in result_dense.groups.items():
            for series_d, series_s in zip(series_list, result_sparse.groups[group], strict=True):
                assert np.array_equal(
                    np.asarray(series_d.values), np.asarray(series_s.values)
                )
