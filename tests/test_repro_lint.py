"""Tests for the ``repro-lint`` determinism-contract linter.

Each RPL rule gets a fixture trio (positive / negative / disable-comment)
stored under ``tests/fixtures/repro_lint`` as ``.pytmpl`` files so the
linter's own file discovery never picks them up.  The suite also checks
rule scoping (which paths each rule applies to), the disable-directive
parser, the RPL006 registry contract, the CLI, and — the point of the
whole exercise — that the repository itself is violation-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    DisableDirectives,
    Finding,
    check_config_contracts,
    iter_python_files,
    lint_paths,
    lint_source,
    rule_codes,
)
from repro.devtools.lint.cli import main
from repro.devtools.lint.contract import _check_one

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "repro_lint"

#: Synthetic in-package paths chosen so each fixture lands in its rule's scope.
_SCOPED_PATH = {
    "RPL001": "tests/test_fixture.py",  # applies everywhere
    "RPL002": "src/repro/analysis/information.py",
    "RPL003": "src/repro/analysis/loglik.py",
    "RPL004": "src/repro/mobility/sparse.py",
    "RPL005": "src/repro/sim/runner.py",
    "RPL007": "src/repro/mec/fleet.py",
    "RPL008": "src/repro/mec/streaming.py",
}


def fixture(name: str) -> str:
    return (FIXTURES / f"{name}.pytmpl").read_text(encoding="utf-8")


def lint_fixture(name: str, path: str | None = None) -> list[Finding]:
    code = name.split("_")[0].upper()
    return lint_source(fixture(name), path or _SCOPED_PATH[code])


class TestRuleFixtures:
    """Positive / negative / disabled fixture per rule."""

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("rpl001_bad", 4),  # seed(), RandomState(), two arithmetic seeds
            ("rpl002_bad", 2),  # np.log, np.log2
            ("rpl003_bad", 2),  # .transition_matrix, ._log_transition
            ("rpl004_bad", 1),  # unguarded .toarray()
            ("rpl005_bad", 3),  # time.time, datetime.now, bare default_rng()
            ("rpl007_bad", 2),  # np.empty 3-tuple, np.zeros shape= 3-tuple
            ("rpl008_bad", 3),  # Recorder(), time.perf_counter ref, bare ref
        ],
    )
    def test_positive_fixtures_are_flagged(self, name, expected):
        findings = lint_fixture(name)
        code = name.split("_")[0].upper()
        assert [f.code for f in findings] == [code] * expected

    @pytest.mark.parametrize(
        "name",
        [
            "rpl001_good",
            "rpl002_good",
            "rpl003_good",
            "rpl004_good",
            "rpl005_good",
            "rpl007_good",
            "rpl008_good",
        ],
    )
    def test_negative_fixtures_are_clean(self, name):
        assert lint_fixture(name) == []

    @pytest.mark.parametrize(
        "name",
        [
            "rpl001_disabled",
            "rpl002_disabled",
            "rpl003_disabled",
            "rpl004_disabled",
            "rpl005_disabled",
            "rpl007_disabled",
            "rpl008_disabled",
        ],
    )
    def test_disable_comments_suppress(self, name):
        assert lint_fixture(name) == []

    def test_findings_carry_location_and_fixit(self):
        findings = lint_fixture("rpl001_bad")
        first = findings[0]
        assert first.line > 1 and first.col >= 1
        assert "repro.sim.seeding" in first.message
        formatted = first.format()
        assert formatted.startswith(f"{first.path}:{first.line}:{first.col}: RPL001")


class TestRuleScoping:
    """Rules fire only inside the package layers they guard."""

    def test_rpl001_applies_outside_the_package_too(self):
        assert lint_fixture("rpl001_bad", path="benchmarks/test_bench_x.py")

    @pytest.mark.parametrize(
        "name, out_of_scope_path",
        [
            ("rpl002_bad", "tests/test_analysis.py"),  # only inside repro/
            ("rpl002_bad", "src/repro/numerics.py"),  # the helpers themselves
            ("rpl003_bad", "src/repro/mobility/markov.py"),  # backend home
            ("rpl003_bad", "tests/test_markov.py"),  # only inside repro/
            ("rpl004_bad", "benchmarks/conftest.py"),  # only inside repro/
            ("rpl005_bad", "src/repro/analysis/information.py"),  # pure layers only
            ("rpl005_bad", "examples/demo.py"),
            ("rpl007_bad", "src/repro/analysis/planes.py"),  # plane layers only
            ("rpl007_bad", "tests/test_fleet.py"),  # only inside repro/
            ("rpl007_bad", "benchmarks/test_bench_fleet.py"),
            ("rpl008_bad", "src/repro/telemetry/recorder.py"),  # clock's home
            ("rpl008_bad", "src/repro/cli.py"),  # the composition root
            ("rpl008_bad", "examples/demo.py"),
        ],
    )
    def test_out_of_scope_paths_are_clean(self, name, out_of_scope_path):
        assert lint_source(fixture(name), out_of_scope_path) == []

    @pytest.mark.parametrize("layer", ["sim", "mec", "adversary", "world"])
    def test_rpl005_covers_every_pure_layer(self, layer):
        findings = lint_source(fixture("rpl005_bad"), f"src/repro/{layer}/module.py")
        assert {f.code for f in findings} == {"RPL005"}

    @pytest.mark.parametrize("layer", ["sim", "mec", "adversary", "world"])
    def test_rpl008_covers_every_pure_layer(self, layer):
        findings = lint_source(fixture("rpl008_bad"), f"src/repro/{layer}/module.py")
        assert {f.code for f in findings} == {"RPL008"}

    @pytest.mark.parametrize("layer", ["mec", "adversary", "world", "sim"])
    def test_rpl007_covers_every_plane_layer(self, layer):
        findings = lint_source(fixture("rpl007_bad"), f"src/repro/{layer}/module.py")
        assert {f.code for f in findings} == {"RPL007"}


class TestDisableDirectives:
    def test_line_scoped_codes(self):
        directives = DisableDirectives.parse(
            "x = 1\ny = np.log(p)  # repro-lint: disable=RPL002, rpl005\n"
        )
        hit = Finding(path="f.py", line=2, col=5, code="RPL002", message="m")
        miss_line = Finding(path="f.py", line=1, col=1, code="RPL002", message="m")
        miss_code = Finding(path="f.py", line=2, col=5, code="RPL001", message="m")
        assert directives.suppresses(hit)
        assert directives.suppresses(
            Finding(path="f.py", line=2, col=5, code="RPL005", message="m")
        )
        assert not directives.suppresses(miss_line)
        assert not directives.suppresses(miss_code)

    def test_disable_all_and_file_wide(self):
        directives = DisableDirectives.parse(
            "# repro-lint: disable-file=RPL003\nz = 2  # repro-lint: disable=all\n"
        )
        assert directives.suppresses(
            Finding(path="f.py", line=99, col=1, code="RPL003", message="m")
        )
        assert directives.suppresses(
            Finding(path="f.py", line=2, col=1, code="RPL001", message="m")
        )
        assert not directives.suppresses(
            Finding(path="f.py", line=3, col=1, code="RPL001", message="m")
        )

    def test_syntax_errors_become_rpl000(self):
        findings = lint_source("def broken(:\n", "src/repro/sim/x.py")
        assert [f.code for f in findings] == ["RPL000"]


class TestEngine:
    def test_select_and_ignore(self):
        source = fixture("rpl005_bad")
        path = _SCOPED_PATH["RPL005"]
        assert lint_source(source, path, select=["RPL001"]) == []
        assert lint_source(source, path, ignore=["rpl005"]) == []
        assert lint_source(source, path, select=["rpl005"])

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "ok.cpython-312.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        found = [p.name for p in iter_python_files([tmp_path])]
        assert found == ["ok.py"]

    def test_iter_python_files_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["/no/such/dir-for-repro-lint"]))

    def test_lint_paths_over_a_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "impure.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(fixture("rpl005_bad"), encoding="utf-8")
        findings = lint_paths([tmp_path])
        assert {f.code for f in findings} == {"RPL005"}
        assert all(f.path == str(bad) for f in findings)


class _GoodConfig:
    def __init__(self, n_runs: int = 3):
        self.n_runs = n_runs

    def to_dict(self):
        return {"n_runs": self.n_runs}

    @classmethod
    def from_dict(cls, payload):
        return cls(**payload)


class _LossyConfig(_GoodConfig):
    @classmethod
    def from_dict(cls, payload):
        return cls(n_runs=0)  # drops the round-tripped value


class _UnserialisableConfig(_GoodConfig):
    def to_dict(self):
        return {"n_runs": {1, 2, 3}}  # sets have no canonical JSON form


class _NoDefaultsConfig(_GoodConfig):
    def __init__(self, n_runs):
        super().__init__(n_runs)


class TestConfigContract:
    """RPL006: registered configs must round-trip the cache-key JSON."""

    def test_live_registry_is_clean(self):
        assert check_config_contracts() == []

    def test_good_config_passes(self):
        assert list(_check_one("unit", _GoodConfig)) == []

    @pytest.mark.parametrize(
        "cls, fragment",
        [
            (_LossyConfig, "changes the canonical form"),
            (_UnserialisableConfig, "not canonically JSON-serialisable"),
            (_NoDefaultsConfig, "not default-constructible"),
        ],
    )
    def test_broken_configs_are_flagged(self, cls, fragment):
        findings = list(_check_one("unit", cls))
        assert len(findings) == 1
        assert findings[0].code == "RPL006"
        assert fragment in findings[0].message

    def test_execution_only_fields_never_reach_cache_keys(self):
        # The probe in _check_one guards this invariant for every registered
        # config; exercise it concretely for the fleet config and the
        # streaming knobs it grew.
        from repro.sim.cache import EXECUTION_ONLY_KEYS, experiment_cache_key
        from repro.sim.config import FleetExperimentConfig

        assert {"stream", "chunk_slots", "regions"} <= set(EXECUTION_ONLY_KEYS)
        base = FleetExperimentConfig().to_dict()
        key = experiment_cache_key("fleet", base)
        assert key is not None
        for field in EXECUTION_ONLY_KEYS:
            probed = dict(base)
            probed[field] = "__probe__"
            assert experiment_cache_key("fleet", probed) == key, field
        streamed = FleetExperimentConfig(
            stream=True, chunk_slots=7, regions=4
        ).to_dict()
        assert experiment_cache_key("fleet", streamed) == key

    def test_registry_config_example_round_trips(self):
        # One concrete registered config, exercised the way the cache does.
        from repro.sim.cache import experiment_cache_key
        from repro.sim.config import SyntheticExperimentConfig

        config = SyntheticExperimentConfig()
        payload = json.loads(
            json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
        )
        again = SyntheticExperimentConfig.from_dict(payload)
        assert again.to_dict() == config.to_dict()
        assert experiment_cache_key("fig4", config.to_dict()) == experiment_cache_key(
            "fig4", again.to_dict()
        )


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--no-contract"]) == 0
        assert "0 findings" in capsys.readouterr().err

    def test_violations_exit_one_and_print(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "mec" / "impure.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(fixture("rpl005_bad"), encoding="utf-8")
        assert main([str(tmp_path), "--no-contract"]) == 1
        captured = capsys.readouterr()
        assert "RPL005" in captured.out
        assert str(bad) in captured.out

    def test_select_filters_and_quiet_silences(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "mec" / "impure.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(fixture("rpl005_bad"), encoding="utf-8")
        code = main(
            [str(tmp_path), "--no-contract", "--select", "RPL001", "--quiet"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == "" and captured.err == ""

    def test_unknown_code_is_a_usage_error(self, capsys):
        assert main(["--select", "RPL999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["/no/such/dir-for-repro-lint", "--no-contract"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules_names_every_code(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out

    def test_contract_check_runs_by_default(self, tmp_path, capsys):
        # An empty tree with the contract on: the live registry is clean,
        # so the run still exits 0 — but only after checking it.
        (tmp_path / "empty.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0


class TestRepositoryIsClean:
    """The clean-sweep guarantee: the repo's own tree has zero findings."""

    @pytest.mark.parametrize("tree", ["src", "examples", "benchmarks"])
    def test_tree_is_violation_free(self, tree):
        findings = lint_paths([REPO_ROOT / tree])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_tests_are_violation_free(self):
        findings = lint_paths([REPO_ROOT / "tests"])
        assert findings == [], "\n".join(f.format() for f in findings)
