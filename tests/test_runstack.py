"""Tests for the run-stacked fleet Monte-Carlo and the score cache.

The load-bearing contract is **stack-size bit-identity**: folding
``run_stack`` episodes into one pass of the slot kernel must reproduce
the per-episode path bit-for-bit — every per-run FleetStatistics array,
every report field — for any stack size, engine, worker count and
timeline, because each run's RNG draws still come from that run's own
SeedSequence children in the canonical order.  Around that sit the
satellite suites: ``simulate_fleet_reports``'s execution knobs, the
``parallel_map`` shared-object channel that ships one simulation per
worker instead of one per task, the adversary score-component cache
(hits, LRU eviction, digest-based invalidation, cached-vs-uncached
bit-identity across the coverage grid), and the config/CLI plumbing of
the ``run_stack`` knob.

The worker count for sharded tests comes from ``REPRO_TEST_WORKERS``
(default 2) so CI can pin the multi-process path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.adversary import (
    AdversaryDetector,
    FullCoverage,
    ScoreComponentCache,
    SiteCoverage,
    coalition_coverage,
    make_knowledge,
)
from repro.adversary.monte_carlo import (
    run_adversary_monte_carlo,
    simulate_fleet_reports,
)
from repro.adversary.score_cache import array_digest, chain_digest
from repro.cli import _build_config, build_parser
from repro.core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
)
from repro.core.strategies import get_strategy
from repro.mec.fleet import (
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.runstack import supports_fast_metrics
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import EXECUTION_ONLY_KEYS, experiment_cache_key
from repro.sim.config import AdversaryExperimentConfig, FleetExperimentConfig
from repro.sim.parallel import get_shared, parallel_map
from repro.world import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    Timeline,
    UserArrival,
    UserDeparture,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

HORIZON = 30
N_RUNS = 5
#: Stack sizes from the issue: per-episode, a split, the whole shard.
STACK_SIZES = (1, 3, N_RUNS)


@pytest.fixture(scope="module")
def chain9():
    return paper_synthetic_models(9, seed=2017)["non-skewed"]


@pytest.fixture(scope="module")
def regime9():
    return paper_synthetic_models(9, seed=2017)["temporally-skewed"]


@pytest.fixture(scope="module")
def grid9():
    return MECTopology.from_grid(GridTopology(3, 3), capacity=4)


def _edge_timeline(regime) -> Timeline:
    """A rich dynamic world (same event mix as the streaming tests)."""
    return Timeline(
        events=(
            RegimeSwitch(slot=7, regime=1),
            RegimeSwitch(slot=21, regime=0),
            SiteDown(slot=7, cell=4),
            SiteUp(slot=14, cell=4),
            CapacityChange(slot=14, cell=0, capacity=1),
            SiteDown(slot=28, cell=1),
            UserArrival(slot=7, user=2),
            UserDeparture(slot=28, user=2),
            UserDeparture(slot=14, user=0),
            UserArrival(slot=21, user=5),
        ),
        regime_chains=(regime,),
    )


def _make_sim(chain, grid, timeline=None) -> FleetSimulation:
    return FleetSimulation(
        grid,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=6, horizon=HORIZON, n_chaffs=(1, 2, 1, 0, 2, 1)
        ),
        timeline=timeline,
    )


def assert_statistics_identical(expected, got) -> None:
    """Bit-identity across every per-run FleetStatistics array."""
    assert np.array_equal(expected.tracking_runs, got.tracking_runs)
    assert np.array_equal(expected.detection_runs, got.detection_runs)
    assert np.array_equal(expected.cost_runs, got.cost_runs)
    assert np.array_equal(expected.migrations_runs, got.migrations_runs)
    assert np.array_equal(expected.rejected_runs, got.rejected_runs)
    assert np.array_equal(expected.spilled_runs, got.spilled_runs)
    assert np.array_equal(expected.evicted_runs, got.evicted_runs)
    assert np.array_equal(expected.stranded_runs, got.stranded_runs)


def assert_reports_identical(expected, got) -> None:
    """Bit-identity across every field the paper's figures consume."""
    assert np.array_equal(expected.user_trajectories, got.user_trajectories)
    assert np.array_equal(
        expected.observations.trajectories, got.observations.trajectories
    )
    assert np.array_equal(
        expected.observations.service_ids, got.observations.service_ids
    )
    assert np.array_equal(
        expected.observations.owner_ids, got.observations.owner_ids
    )
    assert np.array_equal(
        expected.observations.real_rows, got.observations.real_rows
    )
    assert expected.placement.as_dict() == got.placement.as_dict()
    if expected.windows is None:
        assert got.windows is None
    else:
        assert np.array_equal(expected.windows, got.windows)
    if expected.transition_stack is None:
        assert got.transition_stack is None
    else:
        assert np.array_equal(expected.transition_stack, got.transition_stack)
    for want, have in zip(expected.ledgers, got.ledgers, strict=True):
        assert want.migration_total == have.migration_total
        assert want.communication_total == have.communication_total
        assert want.chaff_total == have.chaff_total
        assert want.migrations == have.migrations
        assert want.per_slot_totals == have.per_slot_totals


# ----------------------------------------------------------------------
# Tentpole: stacked Monte-Carlo bit-identity across every knob
# ----------------------------------------------------------------------


class TestStackedMonteCarloIdentity:
    @pytest.fixture(scope="class")
    def reference(self, chain9, regime9, grid9):
        """Per-episode statistics, one per timeline flavour."""

        def build(dynamic: bool):
            timeline = _edge_timeline(regime9) if dynamic else None
            return run_fleet_monte_carlo(
                _make_sim(chain9, grid9, timeline),
                n_runs=N_RUNS,
                seed=2017,
                detector=MaximumLikelihoodDetector(),
                workers=1,
                run_stack=1,
            )

        return {False: build(False), True: build(True)}

    @pytest.mark.parametrize("run_stack", STACK_SIZES)
    @pytest.mark.parametrize("engine", ["batch", "stream"])
    @pytest.mark.parametrize("workers", [1, WORKERS])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_fuzz_sweep(
        self, chain9, regime9, grid9, reference, run_stack, engine, workers, dynamic
    ):
        timeline = _edge_timeline(regime9) if dynamic else None
        stacked = run_fleet_monte_carlo(
            _make_sim(chain9, grid9, timeline),
            n_runs=N_RUNS,
            seed=2017,
            detector=MaximumLikelihoodDetector(),
            workers=workers,
            engine=engine,
            chunk_slots=7,
            regions=2,
            run_stack=run_stack,
        )
        assert_statistics_identical(reference[dynamic], stacked)

    def test_random_guess_detector(self, chain9, grid9):
        plain = run_fleet_monte_carlo(
            _make_sim(chain9, grid9),
            n_runs=N_RUNS,
            seed=11,
            detector=RandomGuessDetector(),
            run_stack=1,
        )
        stacked = run_fleet_monte_carlo(
            _make_sim(chain9, grid9),
            n_runs=N_RUNS,
            seed=11,
            detector=RandomGuessDetector(),
            run_stack=N_RUNS,
        )
        assert_statistics_identical(plain, stacked)

    def test_stack_larger_than_the_shard(self, chain9, grid9, reference):
        stacked = run_fleet_monte_carlo(
            _make_sim(chain9, grid9),
            n_runs=N_RUNS,
            seed=2017,
            detector=MaximumLikelihoodDetector(),
            run_stack=64,
        )
        assert_statistics_identical(reference[False], stacked)

    def test_loop_engine_falls_back_per_episode(self, chain9, grid9):
        # The per-service reference engine has no stacked form; run_stack
        # must be a silent no-op there, not an error or a drift.
        plain = run_fleet_monte_carlo(
            _make_sim(chain9, grid9), n_runs=2, seed=5, engine="loop", run_stack=1
        )
        stacked = run_fleet_monte_carlo(
            _make_sim(chain9, grid9), n_runs=2, seed=5, engine="loop", run_stack=2
        )
        assert_statistics_identical(plain, stacked)

    def test_run_stack_validation(self, chain9, grid9):
        with pytest.raises(ValueError, match="run_stack"):
            run_fleet_monte_carlo(
                _make_sim(chain9, grid9), n_runs=2, seed=1, run_stack=0
            )


# ----------------------------------------------------------------------
# Stacked outcome: reports and the fast metrics path
# ----------------------------------------------------------------------


class TestStackedRunOutcome:
    @pytest.mark.parametrize("engine", ["batch", "stream"])
    @pytest.mark.parametrize("dynamic", [False, True])
    def test_to_reports_matches_per_episode_runs(
        self, chain9, regime9, grid9, engine, dynamic
    ):
        timeline = _edge_timeline(regime9) if dynamic else None
        seeds = [np.random.SeedSequence(40 + k) for k in range(3)]
        outcome = _make_sim(chain9, grid9, timeline).run_stacked(
            seeds, engine=engine, chunk_slots=7, regions=2
        )
        assert outcome.run_stack == 3
        reports = outcome.to_reports()
        for seed, report in zip(seeds, reports, strict=True):
            expected = _make_sim(chain9, grid9, timeline).run(seed)
            assert_reports_identical(expected, report)
            evaluation = expected.evaluate(chain9, MaximumLikelihoodDetector())
            got = report.evaluate(chain9, MaximumLikelihoodDetector())
            assert np.array_equal(evaluation.chosen_rows, got.chosen_rows)
            assert np.array_equal(
                evaluation.detected_per_user, got.detected_per_user
            )

    def test_collect_per_slot_false_blocks_reports(self, chain9, grid9):
        outcome = _make_sim(chain9, grid9).run_stacked(
            [1, 2, 3], collect_per_slot=False
        )
        with pytest.raises(ValueError, match="collect_per_slot"):
            outcome.to_reports()

    @pytest.mark.parametrize("engine", ["batch", "stream"])
    def test_collect_per_slot_false_keeps_metrics(self, chain9, grid9, engine):
        detector = MaximumLikelihoodDetector()
        full = _make_sim(chain9, grid9).run_stacked(
            [1, 2, 3], engine=engine, chunk_slots=7
        )
        lean = _make_sim(chain9, grid9).run_stacked(
            [1, 2, 3], engine=engine, chunk_slots=7, collect_per_slot=False
        )
        for want, have in zip(
            full.to_metrics(detector), lean.to_metrics(detector), strict=True
        ):
            for a, b in zip(want, have, strict=True):
                assert np.array_equal(a, b)

    def test_supports_fast_metrics_surface(self):
        assert supports_fast_metrics(MaximumLikelihoodDetector())
        assert supports_fast_metrics(RandomGuessDetector())
        adversary = AdversaryDetector(make_knowledge("oracle"), FullCoverage())
        assert not supports_fast_metrics(adversary)

    def test_rejects_empty_and_bad_engine(self, chain9, grid9):
        sim = _make_sim(chain9, grid9)
        with pytest.raises(ValueError, match="at least one seed"):
            sim.run_stacked([])
        with pytest.raises(ValueError, match="engine"):
            sim.run_stacked([1, 2], engine="loop")


# ----------------------------------------------------------------------
# simulate_fleet_reports execution knobs (satellite: missing knobs)
# ----------------------------------------------------------------------


class TestSimulateFleetReportsKnobs:
    @pytest.fixture(scope="class")
    def reference_reports(self, chain9, grid9):
        return simulate_fleet_reports(
            _make_sim(chain9, grid9), n_runs=4, seed=77, workers=1
        )

    @pytest.mark.parametrize("workers", [1, WORKERS])
    def test_stream_knobs_are_invisible(
        self, chain9, grid9, reference_reports, workers
    ):
        streamed = simulate_fleet_reports(
            _make_sim(chain9, grid9),
            n_runs=4,
            seed=77,
            workers=workers,
            engine="stream",
            chunk_slots=7,
            regions=2,
        )
        for expected, got in zip(reference_reports, streamed, strict=True):
            assert_reports_identical(expected, got)

    @pytest.mark.parametrize("run_stack", [3, 4])
    @pytest.mark.parametrize("workers", [1, WORKERS])
    def test_run_stack_is_invisible(
        self, chain9, grid9, reference_reports, run_stack, workers
    ):
        stacked = simulate_fleet_reports(
            _make_sim(chain9, grid9),
            n_runs=4,
            seed=77,
            workers=workers,
            run_stack=run_stack,
        )
        for expected, got in zip(reference_reports, stacked, strict=True):
            assert_reports_identical(expected, got)

    def test_dynamic_world_run_stack(self, chain9, regime9, grid9):
        timeline = _edge_timeline(regime9)
        plain = simulate_fleet_reports(
            _make_sim(chain9, grid9, timeline), n_runs=3, seed=13
        )
        stacked = simulate_fleet_reports(
            _make_sim(chain9, grid9, timeline),
            n_runs=3,
            seed=13,
            engine="stream",
            chunk_slots=7,
            run_stack=3,
        )
        for expected, got in zip(plain, stacked, strict=True):
            assert_reports_identical(expected, got)

    def test_validation(self, chain9, grid9):
        sim = _make_sim(chain9, grid9)
        with pytest.raises(ValueError, match="n_runs"):
            simulate_fleet_reports(sim, n_runs=0, seed=1)
        with pytest.raises(ValueError, match="run_stack"):
            simulate_fleet_reports(sim, n_runs=2, seed=1, run_stack=0)


# ----------------------------------------------------------------------
# parallel_map shared channel (satellite: per-task pickling)
# ----------------------------------------------------------------------


def _shared_probe(task):
    """Module-level so process pools can pickle it."""
    payload = get_shared()
    return (task, None if payload is None else payload["tag"])


class TestSharedChannel:
    def test_serial_binds_and_restores(self):
        assert get_shared() is None
        results = parallel_map(
            _shared_probe, [1, 2], workers=1, shared={"tag": "fleet"}
        )
        assert results == [(1, "fleet"), (2, "fleet")]
        assert get_shared() is None

    def test_workers_see_the_shared_object(self):
        results = parallel_map(
            _shared_probe,
            list(range(4)),
            workers=WORKERS,
            shared={"tag": "fleet"},
        )
        assert results == [(k, "fleet") for k in range(4)]
        assert get_shared() is None

    def test_without_shared_workers_read_none(self):
        assert parallel_map(_shared_probe, [7], workers=1) == [(7, None)]


# ----------------------------------------------------------------------
# Score-component cache
# ----------------------------------------------------------------------


class TestScoreComponentCache:
    def test_hit_miss_counters(self):
        cache = ScoreComponentCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "hit_ratio": 0.5,
        }

    def test_lru_eviction(self):
        cache = ScoreComponentCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh: "b" is now oldest
        cache.get_or_compute("c", lambda: 3)  # evicts "b"
        assert cache.evictions == 1
        assert len(cache) == 2
        recomputed = []
        cache.get_or_compute("b", lambda: recomputed.append(1) or 2)
        assert recomputed == [1]

    def test_clear_resets_everything(self):
        cache = ScoreComponentCache()
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hit_ratio"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            ScoreComponentCache(max_entries=0)

    def test_array_digest_is_content_addressed(self):
        a = np.arange(6).reshape(2, 3)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.astype(float))
        assert array_digest(a) != array_digest(a.reshape(3, 2))
        assert array_digest(None) == "none"

    def test_chain_digest_tracks_the_model(self, chain9):
        other = paper_synthetic_models(9, seed=2017)["temporally-skewed"]
        assert chain_digest(chain9) == chain_digest(chain9)
        assert chain_digest(chain9) != chain_digest(other)


class TestCachedAdversaryScoring:
    @pytest.fixture(scope="class")
    def world(self, chain9, grid9):
        simulation = _make_sim(chain9, grid9)
        reports = simulate_fleet_reports(simulation, n_runs=3, seed=99)
        return simulation, reports

    def _statistics(self, world, level, coverage, cache):
        simulation, reports = world
        adversary = AdversaryDetector(
            make_knowledge(level), coverage, score_cache=cache
        )
        return run_adversary_monte_carlo(
            simulation,
            adversary,
            n_runs=len(reports),
            seed=0,
            reports=reports,
        )

    def test_coverage_grid_is_bit_identical_and_reuses_tables(
        self, chain9, world
    ):
        coverage_seed = np.random.SeedSequence(31)
        grid = [
            FullCoverage(),
            SiteCoverage(0.6, coverage_seed),
            SiteCoverage(0.3, coverage_seed),
            coalition_coverage(2, 0.4, coverage_seed),
        ]
        cache = ScoreComponentCache()
        for level in ("oracle", "stale"):
            for coverage in grid:
                plain = self._statistics(world, level, coverage, None)
                cached = self._statistics(world, level, coverage, cache)
                assert_statistics_identical(plain, cached)
        # The same planes are re-scored across the grid, so later points
        # gather from tables the earlier points built.
        stats = cache.stats()
        assert stats["hits"] > 0
        assert stats["evictions"] == 0

    def test_dynamic_world_stack_branch(self, chain9, regime9, grid9):
        timeline = _edge_timeline(regime9)
        simulation = _make_sim(chain9, grid9, timeline)
        reports = simulate_fleet_reports(simulation, n_runs=2, seed=23)
        assert reports[0].transition_stack is not None
        world = (simulation, reports)
        coverage = SiteCoverage(0.5, np.random.SeedSequence(3))
        cache = ScoreComponentCache()
        plain = self._statistics(world, "oracle", coverage, None)
        cached = self._statistics(world, "oracle", coverage, cache)
        assert_statistics_identical(plain, cached)
        assert cache.misses > 0

    def test_learned_knowledge_invalidates_by_digest(self, world):
        # A learning adversary refits its chain between episodes; the
        # digest keys must change with it, so nothing stale is ever hit
        # and the replay stays bit-identical to the uncached path.
        cache = ScoreComponentCache()
        plain = self._statistics(world, "learned", FullCoverage(), None)
        cached = self._statistics(world, "learned", FullCoverage(), cache)
        assert_statistics_identical(plain, cached)
        assert cache.hits == 0
        assert cache.misses > 0


# ----------------------------------------------------------------------
# Config, CLI and cache-key plumbing of the run_stack knob
# ----------------------------------------------------------------------


class TestRunStackKnob:
    def test_execution_only(self):
        assert "run_stack" in EXECUTION_ONLY_KEYS
        base = FleetExperimentConfig().to_dict()
        stacked = FleetExperimentConfig(run_stack=16).to_dict()
        assert experiment_cache_key("fleet", base) == experiment_cache_key(
            "fleet", stacked
        )

    @pytest.mark.parametrize(
        "config_cls", [FleetExperimentConfig, AdversaryExperimentConfig]
    )
    def test_round_trip_and_validation(self, config_cls):
        config = config_cls(run_stack=8)
        again = config_cls.from_dict(config.to_dict())
        assert again.run_stack == 8
        assert config.scaled(n_runs=2).run_stack == 8
        with pytest.raises(ValueError, match="run_stack"):
            config_cls(run_stack=0)

    def test_fleet_cli_flag(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "--run-stack", "8"])
        assert _build_config(args, "fleet").run_stack == 8
        default = parser.parse_args(["fleet"])
        assert _build_config(default, "fleet").run_stack == 1

    def test_adversary_cli_flag(self):
        parser = build_parser()
        args = parser.parse_args(["run", "adversary", "--run-stack", "4"])
        assert _build_config(args, "adversary").run_stack == 4
