"""Tests for the synthetic taxi traces and the preprocessing pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.points import GeoPoint
from repro.geo.towers import TowerPlacementConfig, generate_towers
from repro.geo.voronoi import VoronoiQuantizer
from repro.traces.preprocess import (
    CellTrajectoryDataset,
    TracePipeline,
    filter_inactive_traces,
    quantize_traces,
    resample_trace,
)
from repro.traces.taxi import GpsFix, RawTrace, TaxiFleetConfig, TaxiFleetGenerator


def _make_trace(node_id: int, timestamps, latitudes, longitude=-122.4) -> RawTrace:
    fixes = [
        GpsFix(timestamp=float(t), position=GeoPoint(float(lat), longitude))
        for t, lat in zip(timestamps, latitudes, strict=True)
    ]
    return RawTrace(node_id=node_id, fixes=fixes)


class TestGpsFixAndRawTrace:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            GpsFix(timestamp=-1.0, position=GeoPoint(37.7, -122.4))

    def test_fixes_sorted_on_construction(self):
        trace = _make_trace(0, [60, 0, 30], [37.7, 37.6, 37.65])
        assert [fix.timestamp for fix in trace.fixes] == [0, 30, 60]

    def test_add_fix_keeps_order(self):
        trace = _make_trace(0, [0, 60], [37.6, 37.7])
        trace.add_fix(GpsFix(timestamp=30, position=GeoPoint(37.65, -122.4)))
        assert [fix.timestamp for fix in trace.fixes] == [0, 30, 60]

    def test_duration(self):
        trace = _make_trace(0, [10, 130], [37.6, 37.7])
        assert trace.duration == 120

    def test_duration_single_fix(self):
        trace = _make_trace(0, [10], [37.6])
        assert trace.duration == 0.0

    def test_max_gap(self):
        trace = _make_trace(0, [0, 60, 400], [37.6, 37.7, 37.8])
        assert trace.max_gap() == 340

    def test_negative_node_id(self):
        with pytest.raises(ValueError):
            RawTrace(node_id=-1)


class TestTaxiFleetGenerator:
    def test_generates_requested_number_of_nodes(self):
        config = TaxiFleetConfig(n_nodes=12, duration_minutes=20)
        traces = TaxiFleetGenerator(config).generate(np.random.default_rng(0))
        assert len(traces) == 12
        assert {trace.node_id for trace in traces} == set(range(12))

    def test_fixes_within_bbox_and_duration(self):
        config = TaxiFleetConfig(n_nodes=5, duration_minutes=15)
        traces = TaxiFleetGenerator(config).generate(np.random.default_rng(1))
        for trace in traces:
            assert trace.fixes
            for fix in trace.fixes:
                assert config.bbox.contains(fix.position)
                assert 0 <= fix.timestamp <= config.duration_minutes * 60 + 1e-6

    def test_update_intervals_are_irregular(self):
        config = TaxiFleetConfig(n_nodes=3, duration_minutes=30, silence_probability=0.0)
        traces = TaxiFleetGenerator(config).generate(np.random.default_rng(2))
        intervals = np.diff(traces[0].timestamps())
        assert intervals.std() > 1.0  # not perfectly regular

    def test_reproducible_with_seed(self):
        config = TaxiFleetConfig(n_nodes=4, duration_minutes=10)
        a = TaxiFleetGenerator(config).generate(np.random.default_rng(5))
        b = TaxiFleetGenerator(config).generate(np.random.default_rng(5))
        assert [fix.timestamp for fix in a[0].fixes] == [
            fix.timestamp for fix in b[0].fixes
        ]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TaxiFleetConfig(n_nodes=0)
        with pytest.raises(ValueError):
            TaxiFleetConfig(update_jitter=1.5)
        with pytest.raises(ValueError):
            TaxiFleetConfig(loiterer_fraction=2.0)


class TestFilterInactive:
    def test_drops_trace_with_long_gap(self):
        active = _make_trace(0, range(0, 600, 60), [37.6 + 0.001 * i for i in range(10)])
        inactive = _make_trace(1, [0, 60, 500], [37.6, 37.61, 37.62])
        kept = filter_inactive_traces([active, inactive], max_gap_s=300)
        assert [trace.node_id for trace in kept] == [0]

    def test_drops_short_traces(self):
        short = _make_trace(0, [0, 60], [37.6, 37.61])
        kept = filter_inactive_traces([short], max_gap_s=300, min_duration_s=600)
        assert kept == []

    def test_drops_single_fix_traces(self):
        kept = filter_inactive_traces([_make_trace(0, [0], [37.6])])
        assert kept == []

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            filter_inactive_traces([], max_gap_s=0)


class TestResample:
    def test_regular_grid_length(self):
        trace = _make_trace(0, [0, 60, 120, 180], [37.60, 37.61, 37.62, 37.63])
        points = resample_trace(trace, interval_s=60, duration_s=180)
        assert len(points) == 4

    def test_linear_interpolation_midpoint(self):
        trace = _make_trace(0, [0, 120], [37.60, 37.62])
        points = resample_trace(trace, interval_s=60, duration_s=120)
        assert np.isclose(points[1].latitude, 37.61, atol=1e-9)

    def test_extrapolation_clamps_to_last_fix(self):
        trace = _make_trace(0, [0, 60], [37.60, 37.61])
        points = resample_trace(trace, interval_s=60, duration_s=240)
        assert points[-1].latitude == 37.61

    def test_requires_two_fixes(self):
        with pytest.raises(ValueError):
            resample_trace(_make_trace(0, [0], [37.6]))

    def test_invalid_interval(self):
        trace = _make_trace(0, [0, 60], [37.6, 37.61])
        with pytest.raises(ValueError):
            resample_trace(trace, interval_s=0)


class TestQuantizeAndPipeline:
    @pytest.fixture
    def quantizer(self) -> VoronoiQuantizer:
        towers = generate_towers(
            TowerPlacementConfig(n_towers=40), rng=np.random.default_rng(11)
        )
        return VoronoiQuantizer(towers)

    def test_quantize_traces_shape(self, quantizer):
        trace = _make_trace(0, [0, 60, 120], [37.6, 37.7, 37.8])
        resampled = [resample_trace(trace, duration_s=120)]
        cells = quantize_traces(resampled, quantizer)
        assert cells.shape == (1, 3)

    def test_quantize_traces_requires_equal_lengths(self, quantizer):
        a = resample_trace(_make_trace(0, [0, 120], [37.6, 37.7]), duration_s=120)
        b = resample_trace(_make_trace(1, [0, 180], [37.6, 37.7]), duration_s=180)
        with pytest.raises(ValueError):
            quantize_traces([a, b], quantizer)

    def test_quantize_traces_empty(self, quantizer):
        with pytest.raises(ValueError):
            quantize_traces([], quantizer)

    def test_pipeline_produces_dataset(self, quantizer):
        config = TaxiFleetConfig(
            n_nodes=20, duration_minutes=30, silence_probability=0.0
        )
        traces = TaxiFleetGenerator(config).generate(np.random.default_rng(3))
        pipeline = TracePipeline(quantizer=quantizer, horizon_slots=25)
        dataset = pipeline.run(traces)
        assert isinstance(dataset, CellTrajectoryDataset)
        assert dataset.horizon == 25
        assert dataset.n_nodes > 0
        assert dataset.trajectories.max() < dataset.n_cells
        assert dataset.mobility_model.is_ergodic()

    def test_pipeline_empty_after_filter_raises(self, quantizer):
        # A single trace with a huge gap is filtered out entirely.
        trace = _make_trace(0, [0, 4000], [37.6, 37.7])
        pipeline = TracePipeline(quantizer=quantizer, horizon_slots=10)
        with pytest.raises(ValueError):
            pipeline.run([trace])

    def test_dataset_helpers(self, quantizer):
        config = TaxiFleetConfig(
            n_nodes=10, duration_minutes=25, silence_probability=0.0
        )
        traces = TaxiFleetGenerator(config).generate(np.random.default_rng(4))
        dataset = TracePipeline(quantizer=quantizer, horizon_slots=20).run(traces)
        node = dataset.node_ids[0]
        assert dataset.trajectory_of(node).shape == (20,)
        with pytest.raises(KeyError):
            dataset.trajectory_of(9999)
        stationary = dataset.empirical_stationary()
        assert np.isclose(stationary.sum(), 1.0)

    def test_pipeline_invalid_horizon(self, quantizer):
        with pytest.raises(ValueError):
            TracePipeline(quantizer=quantizer, horizon_slots=1)
