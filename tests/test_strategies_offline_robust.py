"""Tests for the optimal offline (OO) strategy and the robust variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import (
    OptimalOfflineStrategy,
    RobustMLStrategy,
    RobustMyopicOnlineStrategy,
    RobustOptimalOfflineStrategy,
    get_strategy,
    solve_optimal_offline,
    sample_exclusion_mask,
)
from repro.core.trellis import most_likely_trajectory, trajectory_cost
from repro.mobility.markov import MarkovChain
from repro.mobility.models import lazy_uniform_model


def _brute_force_oo(chain: MarkovChain, user: np.ndarray) -> int:
    """Exhaustive optimal number of intersections for tiny instances."""
    horizon = user.size
    user_loglik = chain.log_likelihood(user)
    # First pass: does any trajectory strictly beat the user?
    best_loglik = -np.inf
    for code in range(chain.n_states**horizon):
        candidate = []
        value = code
        for _ in range(horizon):
            candidate.append(value % chain.n_states)
            value //= chain.n_states
        best_loglik = max(best_loglik, chain.log_likelihood(candidate))
    strict = best_loglik > user_loglik + 1e-9
    best_intersections = horizon + 1
    for code in range(chain.n_states**horizon):
        candidate = []
        value = code
        for _ in range(horizon):
            candidate.append(value % chain.n_states)
            value //= chain.n_states
        loglik = chain.log_likelihood(candidate)
        qualifies = (
            loglik > user_loglik + 1e-9
            if strict
            else loglik >= user_loglik - 1e-9
        )
        if qualifies:
            intersections = int(np.sum(np.asarray(candidate) == user))
            best_intersections = min(best_intersections, intersections)
    return best_intersections


class TestOptimalOffline:
    def test_chaff_likelihood_at_least_user(self, random_chain, rng):
        for _ in range(10):
            user = random_chain.sample_trajectory(25, rng)
            result = solve_optimal_offline(random_chain, user)
            assert result.chaff_cost <= result.user_cost + 1e-6

    def test_intersections_matches_actual_overlap(self, random_chain, rng):
        user = random_chain.sample_trajectory(30, rng)
        result = solve_optimal_offline(random_chain, user)
        assert result.intersections == int(np.sum(result.trajectory == user))

    def test_matches_bruteforce_on_tiny_instances(self, rng):
        generator = np.random.default_rng(42)
        matrix = generator.uniform(0.2, 1.0, size=(3, 3))
        matrix /= matrix.sum(axis=1, keepdims=True)
        chain = MarkovChain(matrix)
        for seed in range(8):
            user = chain.sample_trajectory(5, np.random.default_rng(seed))
            result = solve_optimal_offline(chain, user)
            assert result.intersections == _brute_force_oo(chain, user)

    def test_zero_intersections_for_high_entropy_user(self):
        chain = lazy_uniform_model(8, stay_probability=0.2)
        rng = np.random.default_rng(0)
        user = chain.sample_trajectory(40, rng)
        result = solve_optimal_offline(chain, user)
        assert result.intersections == 0

    def test_user_on_most_likely_path_forces_tie(self, skewed_chain):
        # If the user parks in the hot cell (the most likely trajectory),
        # no trajectory is strictly more likely: the OO strategy ties.
        user = np.zeros(10, dtype=np.int64)
        result = solve_optimal_offline(skewed_chain, user)
        assert not result.strict
        assert np.isclose(result.chaff_cost, result.user_cost, atol=1e-6)

    def test_allowed_mask_respected(self, random_chain, rng):
        user = random_chain.sample_trajectory(12, rng)
        mask = np.ones((12, random_chain.n_states), dtype=bool)
        mask[4, int(user[4])] = False
        mask[7, 2] = False
        result = solve_optimal_offline(random_chain, user, allowed=mask)
        assert result.trajectory[4] != user[4]
        assert result.trajectory[7] != 2

    def test_horizon_one(self, random_chain):
        user = np.array([int(np.argmax(random_chain.stationary))])
        result = solve_optimal_offline(random_chain, user)
        assert result.trajectory.shape == (1,)

    def test_rejects_empty_user(self, random_chain):
        with pytest.raises(ValueError):
            solve_optimal_offline(random_chain, np.array([], dtype=np.int64))

    def test_strategy_wrapper_first_chaff_optimal(self, random_chain, rng):
        strategy = OptimalOfflineStrategy()
        user = random_chain.sample_trajectory(20, rng)
        chaffs = strategy.generate(random_chain, user, 2, rng)
        reference = solve_optimal_offline(random_chain, user)
        assert np.array_equal(chaffs[0], reference.trajectory)

    def test_beats_or_ties_cml_in_overlap(self, random_chain, rng):
        """OO minimises co-location among likelihood-qualified trajectories,
        so its overlap is never worse than any qualified alternative we can
        construct (here: the most likely trajectory)."""
        user = random_chain.sample_trajectory(25, rng)
        result = solve_optimal_offline(random_chain, user)
        ml_chaff = most_likely_trajectory(random_chain, 25)
        ml_overlap = int(np.sum(ml_chaff == user))
        assert result.intersections <= ml_overlap

    def test_chaff_cost_not_below_global_optimum(self, random_chain, rng):
        user = random_chain.sample_trajectory(20, rng)
        result = solve_optimal_offline(random_chain, user)
        best = trajectory_cost(random_chain, most_likely_trajectory(random_chain, 20))
        assert result.chaff_cost >= best - 1e-9


class TestExclusionMask:
    def test_mask_marks_one_pair_per_prior_trajectory(self, random_chain, rng):
        prior = random_chain.sample_trajectories(3, 10, rng)
        mask = sample_exclusion_mask(prior, random_chain.n_states, rng)
        assert mask.shape == (10, random_chain.n_states)
        assert (~mask).sum() <= 3

    def test_mask_never_blocks_whole_slot(self, rng):
        chain = MarkovChain(np.full((2, 2), 0.5))
        prior = chain.sample_trajectories(4, 6, rng)
        mask = sample_exclusion_mask(prior, 2, rng)
        assert mask.any(axis=1).all()

    def test_mask_rejects_empty_prior(self, rng):
        with pytest.raises(ValueError):
            sample_exclusion_mask(np.empty((0, 5), dtype=np.int64), 5, rng)


class TestRobustStrategies:
    def test_rml_chaffs_are_high_likelihood(self, random_chain, rng):
        strategy = RobustMLStrategy()
        user = random_chain.sample_trajectory(20, rng)
        chaffs = strategy.generate(random_chain, user, 4, rng)
        user_loglik = random_chain.log_likelihood(user)
        # Perturbed ML trajectories stay close to the global optimum and in
        # particular typically beat a random user trajectory.
        beats = sum(
            random_chain.log_likelihood(chaff) >= user_loglik for chaff in chaffs
        )
        assert beats >= 3

    def test_rml_randomised_across_seeds(self, random_chain):
        strategy = RobustMLStrategy()
        user = random_chain.sample_trajectory(20, np.random.default_rng(0))
        a = strategy.generate(random_chain, user, 3, np.random.default_rng(1))
        b = strategy.generate(random_chain, user, 3, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_rml_differs_from_deterministic_ml(self, random_chain, rng):
        user = random_chain.sample_trajectory(20, rng)
        rml = RobustMLStrategy().generate(random_chain, user, 3, rng)
        ml = most_likely_trajectory(random_chain, 20)
        # At least one chaff must deviate from the unperturbed ML trajectory,
        # otherwise the advanced eavesdropper unmasks them all.
        assert any(not np.array_equal(chaff, ml) for chaff in rml)

    def test_roo_keeps_low_overlap_with_user(self, random_chain, rng):
        strategy = RobustOptimalOfflineStrategy()
        user = random_chain.sample_trajectory(25, rng)
        chaffs = strategy.generate(random_chain, user, 3, rng)
        for chaff in chaffs:
            assert np.mean(chaff == user) < 0.3

    def test_roo_randomised_across_seeds(self, random_chain):
        strategy = RobustOptimalOfflineStrategy()
        user = random_chain.sample_trajectory(15, np.random.default_rng(0))
        a = strategy.generate(random_chain, user, 3, np.random.default_rng(3))
        b = strategy.generate(random_chain, user, 3, np.random.default_rng(4))
        assert not np.array_equal(a, b)

    def test_rmo_respects_exclusions_shape(self, random_chain, rng):
        strategy = RobustMyopicOnlineStrategy()
        user = random_chain.sample_trajectory(30, rng)
        chaffs = strategy.generate(random_chain, user, 5, rng)
        assert chaffs.shape == (5, 30)
        assert chaffs.min() >= 0

    def test_rmo_low_colocation(self, random_chain, rng):
        strategy = RobustMyopicOnlineStrategy()
        user = random_chain.sample_trajectory(40, rng)
        chaffs = strategy.generate(random_chain, user, 2, rng)
        assert np.mean(chaffs[0] == user) < 0.3

    def test_rmo_works_in_tiny_state_space(self, rng):
        chain = MarkovChain(np.array([[0.6, 0.3, 0.1], [0.2, 0.5, 0.3], [0.3, 0.3, 0.4]]))
        user = chain.sample_trajectory(10, rng)
        chaffs = RobustMyopicOnlineStrategy().generate(chain, user, 2, rng)
        assert chaffs.shape == (2, 10)

    @pytest.mark.parametrize("name", ["RML", "ROO", "RMO"])
    def test_robust_strategies_generate_distinct_chaffs(self, name, random_chain, rng):
        strategy = get_strategy(name)
        user = random_chain.sample_trajectory(20, rng)
        chaffs = strategy.generate(random_chain, user, 3, rng)
        # The whole point of the robust variants is that the chaffs are not
        # all identical copies of one deterministic trajectory.
        assert len({chaff.tobytes() for chaff in chaffs}) >= 2
