"""Tests for the extension modules: online eavesdroppers and the rollout strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eavesdropper.online import (
    BayesianPosteriorTracker,
    PrefixMLTracker,
)
from repro.core.strategies import get_strategy
from repro.core.strategies.rollout import RolloutController, RolloutOnlineStrategy
from repro.experiments.ablations import (
    run_online_eavesdropper_comparison,
    run_rollout_vs_myopic,
)
from repro.sim.config import SyntheticExperimentConfig


class TestOnlineTrackers:
    def _observations(self, chain, strategy_name, horizon, seed=0):
        rng = np.random.default_rng(seed)
        user = chain.sample_trajectory(horizon, rng)
        chaffs = get_strategy(strategy_name).generate(chain, user, 1, rng)
        observed = np.concatenate([user[None, :], chaffs], axis=0)
        return observed, user

    @pytest.mark.parametrize("tracker_cls", [PrefixMLTracker, BayesianPosteriorTracker])
    def test_output_shapes(self, tracker_cls, random_chain):
        observed, user = self._observations(random_chain, "IM", 25)
        result = tracker_cls().track(
            random_chain, observed, user, np.random.default_rng(1)
        )
        assert result.estimated_cells.shape == (25,)
        assert result.chosen_indices.shape == (25,)
        assert result.tracked_per_slot.shape == (25,)
        assert result.posteriors.shape == (25, 2)
        assert 0.0 <= result.tracking_accuracy <= 1.0

    @pytest.mark.parametrize("tracker_cls", [PrefixMLTracker, BayesianPosteriorTracker])
    def test_posteriors_are_distributions(self, tracker_cls, random_chain):
        observed, user = self._observations(random_chain, "IM", 20)
        result = tracker_cls().track(
            random_chain, observed, user, np.random.default_rng(2)
        )
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)
        assert np.all(result.posteriors >= 0)

    def test_no_chaff_perfect_tracking(self, random_chain, rng):
        user = random_chain.sample_trajectory(15, rng)
        observed = user[None, :]
        for tracker in (PrefixMLTracker(), BayesianPosteriorTracker()):
            result = tracker.track(random_chain, observed, user, rng)
            assert result.tracking_accuracy == 1.0

    def test_validation_errors(self, random_chain, rng):
        user = random_chain.sample_trajectory(10, rng)
        with pytest.raises(ValueError):
            PrefixMLTracker().track(
                random_chain, np.empty((0, 10), dtype=np.int64), user, rng
            )
        with pytest.raises(ValueError):
            PrefixMLTracker().track(
                random_chain, user[None, :5], user, rng
            )

    def test_bayesian_at_least_as_good_as_prefix_against_im(self, random_chain):
        """Pooling posterior mass per cell can only help compared to picking
        a single trajectory (on average over runs)."""
        prefix_scores, bayes_scores = [], []
        for seed in range(15):
            observed, user = self._observations(random_chain, "IM", 30, seed=seed)
            rng = np.random.default_rng(seed)
            prefix_scores.append(
                PrefixMLTracker().track(random_chain, observed, user, rng).tracking_accuracy
            )
            bayes_scores.append(
                BayesianPosteriorTracker()
                .track(random_chain, observed, user, np.random.default_rng(seed))
                .tracking_accuracy
            )
        assert np.mean(bayes_scores) >= np.mean(prefix_scores) - 0.05

    def test_oo_still_defeats_online_trackers(self, random_chain):
        """The OO chaff has higher prefix likelihood at the end and most of
        the way through, so even a per-slot tracker is mostly misled."""
        accuracies = []
        for seed in range(10):
            observed, user = self._observations(random_chain, "OO", 40, seed=seed)
            result = PrefixMLTracker().track(
                random_chain, observed, user, np.random.default_rng(seed)
            )
            accuracies.append(result.tracking_accuracy)
        assert np.mean(accuracies) < 0.5


class TestRolloutStrategy:
    def test_registered(self):
        strategy = get_strategy("ROLLOUT")
        assert isinstance(strategy, RolloutOnlineStrategy)
        assert strategy.is_online

    def test_output_shape(self, random_chain, rng):
        strategy = RolloutOnlineStrategy(lookahead=2, n_rollouts=2, n_candidates=2)
        user = random_chain.sample_trajectory(15, rng)
        chaffs = strategy.generate(random_chain, user, 2, rng)
        assert chaffs.shape == (2, 15)
        assert np.array_equal(chaffs[0], chaffs[1])  # replicas

    def test_zero_lookahead_behaves_like_greedy(self, random_chain, rng):
        controller = RolloutController(
            random_chain, lookahead=0, n_rollouts=1, n_candidates=random_chain.n_states
        )
        user = random_chain.sample_trajectory(20, rng)
        chaff = controller.run(user)
        # With zero lookahead the controller picks a zero-immediate-cost cell
        # whenever one exists among the candidates.
        colocations = np.mean(chaff == user)
        assert colocations < 0.3

    def test_rollout_protects_high_entropy_user(self, random_chain):
        from repro.core.eavesdropper import MaximumLikelihoodDetector
        from repro.core.game import PrivacyGame
        from repro.sim.monte_carlo import MonteCarloRunner

        strategy = RolloutOnlineStrategy(lookahead=3, n_rollouts=2, n_candidates=3)
        game = PrivacyGame(
            random_chain, strategy, MaximumLikelihoodDetector(), n_services=2
        )
        stats = MonteCarloRunner(n_runs=15, seed=0).run(game, horizon=40)
        assert stats.tracking_accuracy < 0.25

    def test_invalid_parameters(self, random_chain):
        with pytest.raises(ValueError):
            RolloutController(random_chain, lookahead=-1)
        with pytest.raises(ValueError):
            RolloutController(random_chain, n_rollouts=0)
        with pytest.raises(ValueError):
            RolloutController(random_chain, n_candidates=0)

    def test_controller_rejects_bad_user_location(self, random_chain):
        controller = RolloutController(random_chain, lookahead=1)
        with pytest.raises(ValueError):
            controller.step(99)


class TestExtensionExperiments:
    def test_rollout_experiment_runs(self):
        config = SyntheticExperimentConfig(
            n_runs=8, horizon=25, mobility_models=("non-skewed",)
        )
        result = run_rollout_vs_myopic(config, n_runs=8, lookahead=2, n_rollouts=2)
        assert set(result.groups) == {"non-skewed"}
        assert {series.label for series in result.groups["non-skewed"]} == {
            "MO",
            "ROLLOUT",
            "OO",
        }
        for value in result.scalars.values():
            assert 0.0 <= value <= 1.0

    def test_online_eavesdropper_experiment_runs(self):
        config = SyntheticExperimentConfig(
            n_runs=8, horizon=25, mobility_models=("non-skewed",)
        )
        result = run_online_eavesdropper_comparison(config, n_runs=8)
        scalars = result.scalars
        assert "non-skewed/offline-ml" in scalars
        assert "non-skewed/prefix-ml" in scalars
        assert "non-skewed/bayesian" in scalars
        for value in scalars.values():
            assert 0.0 <= value <= 1.0
