"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import im_tracking_accuracy, lemma_v1_holds
from repro.analysis.concentration import lemma_v3_bound
from repro.analysis.information import entropy, kl_divergence
from repro.analysis.loglik import ct_series
from repro.core.strategies import get_strategy, solve_optimal_offline
from repro.core.trellis import most_likely_trajectory, trajectory_cost
from repro.core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    trajectory_log_likelihoods,
)
from repro.mobility.markov import MarkovChain

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def transition_matrices(draw, min_states: int = 2, max_states: int = 6) -> np.ndarray:
    """Random strictly-positive row-stochastic matrices (ergodic chains)."""
    n = draw(st.integers(min_states, max_states))
    raw = draw(
        st.lists(
            st.lists(st.floats(0.05, 1.0), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.asarray(raw, dtype=float)
    return matrix / matrix.sum(axis=1, keepdims=True)


@st.composite
def chains(draw) -> MarkovChain:
    return MarkovChain(draw(transition_matrices()))


@st.composite
def probability_vectors(draw, min_size: int = 2, max_size: int = 10) -> np.ndarray:
    n = draw(st.integers(min_size, max_size))
    raw = np.asarray(draw(st.lists(st.floats(0.01, 1.0), min_size=n, max_size=n)))
    return raw / raw.sum()


# ---------------------------------------------------------------------------
# Markov chain invariants
# ---------------------------------------------------------------------------


class TestChainProperties:
    @_SETTINGS
    @given(matrix=transition_matrices())
    def test_stationary_is_fixed_point(self, matrix):
        chain = MarkovChain(matrix)
        assert np.allclose(chain.stationary @ chain.transition_matrix, chain.stationary, atol=1e-7)
        assert np.isclose(chain.stationary.sum(), 1.0)

    @_SETTINGS
    @given(chain=chains(), length=st.integers(1, 30), seed=st.integers(0, 10_000))
    def test_sampled_trajectories_stay_in_range(self, chain, length, seed):
        trajectory = chain.sample_trajectory(length, np.random.default_rng(seed))
        assert trajectory.shape == (length,)
        assert trajectory.min() >= 0 and trajectory.max() < chain.n_states

    @_SETTINGS
    @given(chain=chains(), length=st.integers(1, 20), seed=st.integers(0, 10_000))
    def test_log_likelihood_is_negative_and_consistent(self, chain, length, seed):
        trajectory = chain.sample_trajectory(length, np.random.default_rng(seed))
        loglik = chain.log_likelihood(trajectory)
        assert loglik <= 1e-12
        assert np.isclose(chain.stepwise_log_likelihood(trajectory).sum(), loglik)

    @_SETTINGS
    @given(chain=chains())
    def test_entropy_rate_bounded_by_log_l(self, chain):
        assert 0.0 <= chain.entropy_rate() <= np.log(chain.n_states) + 1e-9

    @_SETTINGS
    @given(chain=chains())
    def test_collision_probability_bounds(self, chain):
        value = chain.stationary_collision_probability()
        assert 1.0 / chain.n_states - 1e-9 <= value <= 1.0


# ---------------------------------------------------------------------------
# Information measures
# ---------------------------------------------------------------------------


class TestInformationProperties:
    @_SETTINGS
    @given(p=probability_vectors())
    def test_entropy_nonnegative_and_bounded(self, p):
        assert 0.0 <= entropy(p) <= np.log(p.size) + 1e-9

    @_SETTINGS
    @given(p=probability_vectors(max_size=6), q=probability_vectors(max_size=6))
    def test_kl_nonnegative(self, p, q):
        if p.size != q.size:
            pytest.skip("different sizes")
        assert kl_divergence(p, q) >= -1e-9

    @_SETTINGS
    @given(p=probability_vectors())
    def test_lemma_v1_always_holds(self, p):
        assert lemma_v1_holds(p)

    @_SETTINGS
    @given(
        n=st.integers(1, 500),
        delta=st.floats(0.0, 2.0),
        epsilon=st.floats(0.0, 1.0),
    )
    def test_lemma_v3_bound_is_probability_like(self, n, delta, epsilon):
        value = lemma_v3_bound(n, delta, a=-1.0, b=1.0, epsilon=epsilon)
        assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# Strategy / detector invariants
# ---------------------------------------------------------------------------


class TestStrategyProperties:
    @_SETTINGS
    @given(chain=chains(), horizon=st.integers(2, 15), seed=st.integers(0, 5000))
    def test_oo_chaff_at_least_as_likely_as_user(self, chain, horizon, seed):
        user = chain.sample_trajectory(horizon, np.random.default_rng(seed))
        result = solve_optimal_offline(chain, user)
        assert result.chaff_cost <= result.user_cost + 1e-6
        assert 0 <= result.intersections <= horizon
        assert result.intersections == int(np.sum(result.trajectory == user))

    @_SETTINGS
    @given(chain=chains(), horizon=st.integers(1, 15))
    def test_most_likely_trajectory_dominates_samples(self, chain, horizon):
        best = trajectory_cost(chain, most_likely_trajectory(chain, horizon))
        rng = np.random.default_rng(0)
        for _ in range(5):
            sample = chain.sample_trajectory(horizon, rng)
            assert best <= trajectory_cost(chain, sample) + 1e-9

    @_SETTINGS
    @given(chain=chains(), horizon=st.integers(2, 12), seed=st.integers(0, 5000))
    def test_cml_chaff_never_colocated(self, chain, horizon, seed):
        rng = np.random.default_rng(seed)
        user = chain.sample_trajectory(horizon, rng)
        chaff = get_strategy("CML").generate(chain, user, 1, rng)[0]
        assert not np.any(chaff == user)

    @_SETTINGS
    @given(
        chain=chains(),
        horizon=st.integers(2, 12),
        n_chaffs=st.integers(1, 4),
        seed=st.integers(0, 5000),
    )
    def test_im_chaffs_shape_and_range(self, chain, horizon, n_chaffs, seed):
        rng = np.random.default_rng(seed)
        user = chain.sample_trajectory(horizon, rng)
        chaffs = get_strategy("IM").generate(chain, user, n_chaffs, rng)
        assert chaffs.shape == (n_chaffs, horizon)
        assert chaffs.min() >= 0 and chaffs.max() < chain.n_states

    @_SETTINGS
    @given(chain=chains(), horizon=st.integers(2, 12), seed=st.integers(0, 5000))
    def test_ml_detector_chooses_argmax(self, chain, horizon, seed):
        rng = np.random.default_rng(seed)
        trajectories = chain.sample_trajectories(4, horizon, rng)
        outcome = MaximumLikelihoodDetector().detect(chain, trajectories, rng)
        scores = trajectory_log_likelihoods(chain, trajectories)
        assert np.isclose(scores[outcome.chosen_index], scores.max(), atol=1e-9)

    @_SETTINGS
    @given(chain=chains(), horizon=st.integers(2, 12), seed=st.integers(0, 5000))
    def test_ct_series_antisymmetric(self, chain, horizon, seed):
        rng = np.random.default_rng(seed)
        a = chain.sample_trajectory(horizon, rng)
        b = chain.sample_trajectory(horizon, rng)
        forward = ct_series(chain, a, b)
        backward = ct_series(chain, b, a)
        assert np.allclose(forward, -backward)

    @_SETTINGS
    @given(chain=chains(), n=st.integers(2, 20))
    def test_eq11_is_probability(self, chain, n):
        assert 0.0 < im_tracking_accuracy(chain, n) <= 1.0
