"""Parallel-equivalence and result-cache tests.

Mirrors ``tests/test_batch_engine.py`` one level up: the sharded
process-pool execution layer must be *bit-identical* to the serial
engines for the same master seed, regardless of the worker count, and
the on-disk result cache must round-trip ``ExperimentResult`` objects
and miss on any config change.  Also pins the seeding discipline: all
experiment streams are spawned children, pairwise distinct across
series, runs and neighbouring master seeds.

The worker count is taken from ``REPRO_TEST_WORKERS`` (default 2) so CI
can exercise the process-pool path explicitly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.eavesdropper import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    StrategyAwareDetector,
)
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.experiments import registry
from repro.experiments.registry import run_experiment
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import (
    EXECUTION_ONLY_KEYS,
    ResultCache,
    experiment_cache_key,
)
from repro.sim.config import SyntheticExperimentConfig
from repro.sim.monte_carlo import MonteCarloRunner
from repro.sim.parallel import (
    concatenate_batches,
    parallel_map,
    resolve_workers,
    shard_slices,
)
from repro.sim.results import ExperimentResult, SeriesResult
from repro.sim.runner import sweep_strategies
from repro.sim.seeding import (
    as_seed_sequence,
    spawn_generators,
    spawn_sequences,
    spawn_sequences_range,
)

N_RUNS = 12
HORIZON = 10
SEED = 2017

#: Worker count exercised by the equivalence tests (CI pins it to 2).
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


@pytest.fixture(scope="module")
def chain():
    return paper_synthetic_models(8, seed=1)["spatially-skewed"]


def assert_stats_equal(a, b):
    assert np.array_equal(a.per_slot_accuracy, b.per_slot_accuracy)
    assert a.tracking_accuracy == b.tracking_accuracy
    assert a.detection_accuracy == b.detection_accuracy
    assert a.n_episodes == b.n_episodes


class TestShardSlices:
    def test_cover_range_contiguously(self):
        for n_items in (1, 5, 12, 100):
            for n_shards in (1, 2, 3, 7, 200):
                slices = shard_slices(n_items, n_shards)
                covered = [i for s in slices for i in range(s.start, s.stop)]
                assert covered == list(range(n_items))
                sizes = [s.stop - s.start for s in slices]
                assert max(sizes) - min(sizes) <= 1
                assert all(size > 0 for size in sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_slices(0, 2)
        with pytest.raises(ValueError):
            shard_slices(5, 0)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestParallelEquivalence:
    @pytest.mark.parametrize("name", ["IM", "ML", "MO", "OO", "CML", "RMO"])
    def test_workers_match_serial(self, chain, name):
        game = PrivacyGame(
            chain, get_strategy(name), MaximumLikelihoodDetector(), n_services=3
        )
        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=1)
        sharded = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=WORKERS)
        assert_stats_equal(
            serial.run(game, horizon=HORIZON), sharded.run(game, horizon=HORIZON)
        )

    @pytest.mark.parametrize(
        "detector_factory",
        [
            MaximumLikelihoodDetector,
            RandomGuessDetector,
            lambda: StrategyAwareDetector(get_strategy("MO")),
        ],
    )
    def test_detectors_match_serial(self, chain, detector_factory):
        game = PrivacyGame(
            chain, get_strategy("RML"), detector_factory(), n_services=3
        )
        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=1)
        sharded = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=WORKERS)
        assert_stats_equal(
            serial.run(game, horizon=HORIZON), sharded.run(game, horizon=HORIZON)
        )

    def test_uneven_shards_and_all_cores(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        reference = MonteCarloRunner(n_runs=7, seed=3, workers=1).run(
            game, horizon=HORIZON
        )
        for workers in (2, 3, 4, 0):
            stats = MonteCarloRunner(n_runs=7, seed=3, workers=workers).run(
                game, horizon=HORIZON
            )
            assert_stats_equal(reference, stats)

    def test_loop_engine_matches_serial(self, chain):
        game = PrivacyGame(
            chain, get_strategy("MO"), MaximumLikelihoodDetector(), n_services=2
        )
        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, engine="loop", workers=1)
        sharded = MonteCarloRunner(
            n_runs=N_RUNS, seed=SEED, engine="loop", workers=WORKERS
        )
        assert_stats_equal(
            serial.run(game, horizon=HORIZON), sharded.run(game, horizon=HORIZON)
        )

    def test_run_batch_concatenates_in_run_order(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=1).run_batch(
            game, horizon=HORIZON
        )
        sharded = MonteCarloRunner(
            n_runs=N_RUNS, seed=SEED, workers=WORKERS
        ).run_batch(game, horizon=HORIZON)
        assert np.array_equal(serial.user_trajectories, sharded.user_trajectories)
        assert np.array_equal(serial.chaff_trajectories, sharded.chaff_trajectories)
        assert np.array_equal(
            serial.observed_trajectories, sharded.observed_trajectories
        )
        assert np.array_equal(
            serial.detection.chosen_indices, sharded.detection.chosen_indices
        )
        assert np.array_equal(serial.detection.scores, sharded.detection.scores)
        assert np.array_equal(serial.tracked_per_slot, sharded.tracked_per_slot)
        assert np.array_equal(serial.detected_user, sharded.detected_user)

    def test_provider_path_matches_serial(self, chain):
        """Providers draw from the per-run generators before the episode,
        so the parallel path must ship the consumed generator state."""
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )

        def provider(run, rng):
            return chain.sample_trajectory(HORIZON, rng)

        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=1).run(
            game, user_trajectory_provider=provider
        )
        sharded = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=WORKERS).run(
            game, user_trajectory_provider=provider
        )
        assert_stats_equal(serial, sharded)

    def test_ragged_background_provider_matches_serial(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )

        def provider(run, rng):
            return chain.sample_trajectories(1 + run % 2, HORIZON, rng)

        serial = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=1).run(
            game, horizon=HORIZON, background_provider=provider
        )
        sharded = MonteCarloRunner(n_runs=N_RUNS, seed=SEED, workers=WORKERS).run(
            game, horizon=HORIZON, background_provider=provider
        )
        assert_stats_equal(serial, sharded)

    def test_sweep_grid_parallel_matches_serial(self, chain):
        specs = {"IM (N = 2)": ("IM", 2), "MO (N = 3)": ("MO", 3)}
        kwargs = dict(horizon=HORIZON, n_runs=8, seed=5)
        serial = sweep_strategies(
            chain, MaximumLikelihoodDetector(), specs, workers=1, **kwargs
        )
        pooled = sweep_strategies(
            chain, MaximumLikelihoodDetector(), specs, workers=WORKERS, **kwargs
        )
        for label in specs:
            assert_stats_equal(serial.statistics[label], pooled.statistics[label])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(n_runs=2, workers=-1)

    def test_concatenate_batches_requires_input(self):
        with pytest.raises(ValueError):
            concatenate_batches([])


def _square(value: int) -> int:
    return value * value


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(9))
        assert parallel_map(_square, items, workers=1) == [i * i for i in items]
        assert parallel_map(_square, items, workers=WORKERS) == [
            i * i for i in items
        ]

    def test_empty(self):
        assert parallel_map(_square, [], workers=WORKERS) == []


class TestSeedingDiscipline:
    def test_spawned_streams_pairwise_distinct(self):
        """Children spawned for neighbouring master seeds never collide —
        the regression the old ``seed + offset`` arithmetic failed."""
        states = set()
        for seed in (SEED, SEED + 1, SEED + 2):
            for child in spawn_sequences(seed, 8):
                states.add(tuple(child.generate_state(4)))
        assert len(states) == 3 * 8

    def test_sweep_series_do_not_alias_across_seeds(self, chain):
        """Series k of a seed=S sweep must differ from series k-1 of a
        seed=S+1 sweep (the old arithmetic made them share a master seed)."""
        specs = {"A": ("IM", 2), "B": ("IM", 2)}
        sweep_a = sweep_strategies(
            chain,
            MaximumLikelihoodDetector(),
            specs,
            horizon=HORIZON,
            n_runs=10,
            seed=SEED,
        )
        sweep_b = sweep_strategies(
            chain,
            MaximumLikelihoodDetector(),
            specs,
            horizon=HORIZON,
            n_runs=10,
            seed=SEED + 1,
        )
        assert not np.array_equal(
            sweep_a.statistics["B"].per_slot_accuracy,
            sweep_b.statistics["A"].per_slot_accuracy,
        )

    def test_as_seed_sequence_is_spawn_stable(self):
        root = np.random.SeedSequence(SEED)
        root.spawn(3)  # advance the caller's spawn counter
        fresh = as_seed_sequence(root)
        assert fresh.entropy == root.entropy
        assert [
            tuple(c.generate_state(2)) for c in fresh.spawn(2)
        ] == [
            tuple(c.generate_state(2))
            for c in np.random.SeedSequence(SEED).spawn(2)
        ]

    def test_runner_accepts_seed_sequence(self, chain):
        game = PrivacyGame(
            chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        child = np.random.SeedSequence(SEED).spawn(1)[0]
        a = MonteCarloRunner(n_runs=5, seed=child).run(game, horizon=HORIZON)
        b = MonteCarloRunner(n_runs=5, seed=child).run(game, horizon=HORIZON)
        assert_stats_equal(a, b)

    def test_spawn_generators_repeatable(self):
        draws_a = [rng.random() for rng in spawn_generators(SEED, 4)]
        draws_b = [rng.random() for rng in spawn_generators(SEED, 4)]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 4

    def test_experiment_keys_separate_streams(self):
        """Two experiments sharing config.seed must not replay the same
        children — the experiment id is mixed into the master entropy."""
        states = set()
        for key in (None, "fig5", "fig7", "ablation-chaff-budget"):
            for child in spawn_sequences(SEED, 4, key=key):
                states.add(tuple(child.generate_state(4)))
        assert len(states) == 4 * 4

    def test_key_is_deterministic(self):
        a = spawn_sequences(SEED, 3, key="fig5")
        b = spawn_sequences(SEED, 3, key="fig5")
        assert [tuple(x.generate_state(4)) for x in a] == [
            tuple(x.generate_state(4)) for x in b
        ]

    def test_key_rejected_for_spawned_children(self):
        child = np.random.SeedSequence(SEED).spawn(1)[0]
        with pytest.raises(ValueError):
            spawn_sequences(child, 2, key="fig5")

    def test_spawn_range_matches_sliced_spawn(self):
        full = spawn_sequences(SEED, 9)
        ranged = spawn_sequences_range(SEED, 3, 7)
        assert [tuple(x.generate_state(4)) for x in full[3:7]] == [
            tuple(x.generate_state(4)) for x in ranged
        ]
        child = np.random.SeedSequence(SEED).spawn(2)[1]
        assert [
            tuple(x.generate_state(4)) for x in spawn_sequences(child, 6)[2:5]
        ] == [tuple(x.generate_state(4)) for x in spawn_sequences_range(child, 2, 5)]
        with pytest.raises(ValueError):
            spawn_sequences_range(SEED, 4, 2)


def _dummy_result(value: float = 1.0) -> ExperimentResult:
    return ExperimentResult(
        experiment_id="dummy",
        description="cache test fixture",
        groups={"g": [SeriesResult.from_array("s", [value, value + 1.0])]},
        scalars={"v": value},
        config={"n_runs": 3},
    )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = experiment_cache_key("dummy", {"n_runs": 3}, version="1.0.0")
        assert cache.get(key) is None
        assert cache.misses == 1
        result = _dummy_result()
        path = cache.put(key, result)
        assert path.exists()
        restored = cache.get(key)
        assert restored == result
        assert cache.hits == 1

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = experiment_cache_key("dummy", {"n_runs": 3}, version="1.0.0")
        key_b = experiment_cache_key("dummy", {"n_runs": 4}, version="1.0.0")
        key_c = experiment_cache_key("dummy", {"n_runs": 3}, version="1.0.1")
        assert len({key_a, key_b, key_c}) == 3
        cache.put(key_a, _dummy_result())
        assert cache.get(key_b) is None
        assert cache.get(key_c) is None

    def test_execution_only_keys_shared(self):
        assert set(EXECUTION_ONLY_KEYS) == {
            "engine",
            "workers",
            "backend",
            "stream",
            "chunk_slots",
            "regions",
            "run_stack",
            "telemetry",
            "metrics_out",
            "trace_out",
        }
        base = {"n_runs": 3, "engine": "batch", "workers": 1, "backend": "dense"}
        variant = {
            "n_runs": 3,
            "engine": "loop",
            "workers": 8,
            "backend": "sparse",
            "stream": True,
            "chunk_slots": 7,
            "regions": 4,
            "run_stack": 16,
            "telemetry": True,
            "metrics_out": "metrics.json",
            "trace_out": "trace.json",
        }
        assert experiment_cache_key("dummy", base) == experiment_cache_key(
            "dummy", variant
        )

    def test_unserialisable_extra_uncacheable(self):
        key = experiment_cache_key("dummy", {"n_runs": 3}, extra={"fn": object()})
        assert key is None

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json",
            '{"experiment_id": "fig5", "groups": []}',
            '{"experiment_id": "fig5", "scalars": {"a": null}}',
            '{"description": "missing id"}',
        ],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, payload):
        cache = ResultCache(tmp_path)
        key = experiment_cache_key("dummy", {"n_runs": 3}, version="1.0.0")
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text(payload)
        assert cache.get(key) is None
        # The entry stays overwritable after the miss.
        cache.put(key, _dummy_result())
        assert cache.get(key) == _dummy_result()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = experiment_cache_key("dummy", {"n_runs": 3}, version="1.0.0")
        cache.put(key, _dummy_result())
        assert cache.clear() == 1
        assert cache.get(key) is None


class TestRegistryCacheWiring:
    @pytest.fixture()
    def counting_experiment(self, monkeypatch):
        calls = {"count": 0}

        def fake_experiment(config=None):
            calls["count"] += 1
            return _dummy_result(float(calls["count"]))

        monkeypatch.setitem(registry.EXPERIMENTS, "dummy-cached", fake_experiment)
        return calls

    def test_hit_skips_execution(self, tmp_path, counting_experiment):
        config = SyntheticExperimentConfig(n_runs=3, horizon=5)
        first = run_experiment("dummy-cached", config, cache=tmp_path)
        second = run_experiment("dummy-cached", config, cache=tmp_path)
        assert counting_experiment["count"] == 1
        assert first == second

    def test_config_change_reruns(self, tmp_path, counting_experiment):
        run_experiment(
            "dummy-cached", SyntheticExperimentConfig(n_runs=3, horizon=5),
            cache=tmp_path,
        )
        run_experiment(
            "dummy-cached", SyntheticExperimentConfig(n_runs=4, horizon=5),
            cache=tmp_path,
        )
        assert counting_experiment["count"] == 2

    def test_workers_share_cache_entries(self, tmp_path, counting_experiment):
        run_experiment(
            "dummy-cached",
            SyntheticExperimentConfig(n_runs=3, horizon=5, workers=1),
            cache=tmp_path,
        )
        run_experiment(
            "dummy-cached",
            SyntheticExperimentConfig(n_runs=3, horizon=5, workers=4),
            cache=tmp_path,
        )
        assert counting_experiment["count"] == 1

    def test_no_cache_runs_every_time(self, counting_experiment):
        config = SyntheticExperimentConfig(n_runs=3, horizon=5)
        run_experiment("dummy-cached", config)
        run_experiment("dummy-cached", config)
        assert counting_experiment["count"] == 2
