"""Tests for the synthetic mobility models, grid walks and model fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.estimation import (
    count_transitions,
    empirical_state_distribution,
    empirical_transition_matrix,
    fit_markov_chain,
)
from repro.mobility.grid import GridTopology, grid_drift_walk, grid_random_walk
from repro.mobility.models import (
    SYNTHETIC_MODEL_BUILDERS,
    lazy_uniform_model,
    paper_synthetic_models,
    random_mobility_model,
    spatially_skewed_model,
    spatially_temporally_skewed_model,
    temporally_skewed_model,
    uniform_iid_model,
)


class TestSyntheticModels:
    def test_paper_models_have_four_entries(self, synthetic_models):
        assert set(synthetic_models) == {
            "non-skewed",
            "spatially-skewed",
            "temporally-skewed",
            "spatially&temporally-skewed",
        }

    def test_all_models_are_ergodic(self, synthetic_models):
        for chain in synthetic_models.values():
            assert chain.is_ergodic()

    def test_all_models_have_ten_cells(self, synthetic_models):
        for chain in synthetic_models.values():
            assert chain.n_states == 10

    def test_spatially_skewed_concentrates_on_hot_cell(self):
        chain = spatially_skewed_model(10, hot_cell=4)
        assert int(np.argmax(chain.stationary)) == 4
        assert chain.stationary[4] > 2.0 / 10.0

    def test_temporally_skewed_has_uniform_stationary(self):
        chain = temporally_skewed_model(10)
        assert np.allclose(chain.stationary, 0.1, atol=1e-3)

    def test_temporally_skewed_has_high_kl(self):
        # The paper reports 8.18 for model (c); the exact value depends only
        # on the construction, so it must land close.
        chain = temporally_skewed_model(10)
        assert 6.0 < chain.mean_kl_row_distance() < 10.0

    def test_both_skewed_has_nonuniform_stationary(self):
        chain = spatially_temporally_skewed_model(10)
        assert chain.stationary.max() > 0.2

    def test_both_skewed_more_spatially_skewed_than_model_c(self):
        c = temporally_skewed_model(10)
        d = spatially_temporally_skewed_model(10)
        assert d.stationary_collision_probability() > c.stationary_collision_probability()

    def test_random_model_reproducible_with_seed(self):
        a = random_mobility_model(8, rng=np.random.default_rng(3))
        b = random_mobility_model(8, rng=np.random.default_rng(3))
        assert np.allclose(a.transition_matrix, b.transition_matrix)

    def test_random_model_requires_two_cells(self):
        with pytest.raises(ValueError):
            random_mobility_model(1)

    def test_spatially_skewed_invalid_hot_cell(self):
        with pytest.raises(ValueError):
            spatially_skewed_model(5, hot_cell=9)

    def test_spatially_skewed_invalid_weight(self):
        with pytest.raises(ValueError):
            spatially_skewed_model(5, hot_weight=0.0)

    def test_random_walk_invalid_probabilities(self):
        with pytest.raises(ValueError):
            temporally_skewed_model(10, p_right=0.8, p_left=0.5)

    def test_random_walk_needs_three_cells(self):
        with pytest.raises(ValueError):
            temporally_skewed_model(2)

    def test_random_walk_epsilon_bound(self):
        with pytest.raises(ValueError):
            temporally_skewed_model(10, epsilon=0.2)

    def test_lazy_uniform_stationary_uniform(self):
        chain = lazy_uniform_model(6, stay_probability=0.4)
        assert np.allclose(chain.stationary, 1.0 / 6.0)

    def test_lazy_uniform_invalid_stay(self):
        with pytest.raises(ValueError):
            lazy_uniform_model(6, stay_probability=1.0)

    def test_uniform_iid_rows_uniform(self):
        chain = uniform_iid_model(5)
        assert np.allclose(chain.transition_matrix, 0.2)

    def test_builder_registry_matches_labels(self):
        assert set(SYNTHETIC_MODEL_BUILDERS) == set(paper_synthetic_models(10))

    def test_models_reproducible_for_fixed_seed(self):
        a = paper_synthetic_models(10, seed=5)
        b = paper_synthetic_models(10, seed=5)
        for label in a:
            assert np.allclose(a[label].transition_matrix, b[label].transition_matrix)

    def test_kl_ordering_matches_paper(self, synthetic_models):
        # Models (c) and (d) are far more temporally skewed than (a) and (b).
        kl = {label: chain.mean_kl_row_distance() for label, chain in synthetic_models.items()}
        assert kl["temporally-skewed"] > 10 * kl["non-skewed"]
        assert kl["spatially&temporally-skewed"] > 10 * kl["spatially-skewed"]


class TestGridTopology:
    def test_index_roundtrip(self):
        grid = GridTopology(3, 4)
        for index in range(grid.n_cells):
            row, col = grid.coordinates(index)
            assert grid.index(row, col) == index

    def test_neighbors_corner(self):
        grid = GridTopology(3, 3)
        assert sorted(grid.neighbors(0)) == [1, 3]

    def test_neighbors_center(self):
        grid = GridTopology(3, 3)
        assert sorted(grid.neighbors(4)) == [1, 3, 5, 7]

    def test_manhattan_distance(self):
        grid = GridTopology(4, 4)
        assert grid.manhattan_distance(0, 15) == 6

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridTopology(0, 3)

    def test_invalid_coordinates(self):
        with pytest.raises(ValueError):
            GridTopology(2, 2).index(2, 0)

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            GridTopology(2, 2).coordinates(4)

    def test_iter_cells_count(self):
        grid = GridTopology(2, 5)
        assert len(list(grid.iter_cells())) == 10


class TestGridWalks:
    def test_random_walk_is_valid_chain(self):
        chain = grid_random_walk(GridTopology(3, 3))
        assert np.allclose(chain.transition_matrix.sum(axis=1), 1.0)

    def test_random_walk_stationary_uniform_with_lazy_component(self):
        # The simple random walk on a grid is not uniform in general, but
        # the chain must still be a valid ergodic chain.
        chain = grid_random_walk(GridTopology(3, 3), epsilon=1e-4)
        assert chain.is_ergodic()

    def test_random_walk_invalid_stay(self):
        with pytest.raises(ValueError):
            grid_random_walk(GridTopology(2, 2), stay_probability=1.0)

    def test_drift_walk_biased_direction(self):
        chain = grid_drift_walk(GridTopology(5, 5), drift=(1.0, 0.0, 0.0, 0.0))
        # Mass concentrates on the bottom row under pure downward drift.
        bottom_row_mass = chain.stationary[-5:].sum()
        assert bottom_row_mass > 0.5

    def test_drift_walk_invalid_drift_length(self):
        with pytest.raises(ValueError):
            grid_drift_walk(GridTopology(2, 2), drift=(1.0, 1.0))

    def test_drift_walk_negative_drift(self):
        with pytest.raises(ValueError):
            grid_drift_walk(GridTopology(2, 2), drift=(1.0, -1.0, 0.0, 0.0))

    def test_drift_walk_zero_drift(self):
        with pytest.raises(ValueError):
            grid_drift_walk(GridTopology(2, 2), drift=(0.0, 0.0, 0.0, 0.0))


class TestEstimation:
    def test_count_transitions_simple(self):
        counts = count_transitions([[0, 1, 1, 0]], n_states=2)
        assert counts[0, 1] == 1
        assert counts[1, 1] == 1
        assert counts[1, 0] == 1
        assert counts[0, 0] == 0

    def test_count_transitions_multiple_trajectories(self):
        counts = count_transitions([[0, 1], [0, 1], [1, 0]], n_states=2)
        assert counts[0, 1] == 2
        assert counts[1, 0] == 1

    def test_count_transitions_out_of_range(self):
        with pytest.raises(ValueError):
            count_transitions([[0, 3]], n_states=2)

    def test_count_transitions_empty_trajectory_ok(self):
        counts = count_transitions([[]], n_states=2)
        assert counts.sum() == 0

    def test_empirical_state_distribution(self):
        dist = empirical_state_distribution([[0, 0, 1]], n_states=2)
        assert np.allclose(dist, [2 / 3, 1 / 3])

    def test_empirical_state_distribution_no_data(self):
        with pytest.raises(ValueError):
            empirical_state_distribution([], n_states=3)

    def test_empirical_state_distribution_smoothing(self):
        dist = empirical_state_distribution([], n_states=4, smoothing=1.0)
        assert np.allclose(dist, 0.25)

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = empirical_transition_matrix([[0, 1, 0, 1, 1]], n_states=3)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_transition_matrix_requires_smoothing(self):
        with pytest.raises(ValueError):
            empirical_transition_matrix([[0, 1]], n_states=2, smoothing=0.0)

    def test_fit_recovers_true_chain(self, two_state_chain):
        rng = np.random.default_rng(5)
        trajectories = two_state_chain.sample_trajectories(30, 500, rng)
        fitted = fit_markov_chain(trajectories, 2, smoothing=1e-6)
        assert np.allclose(
            fitted.transition_matrix, two_state_chain.transition_matrix, atol=0.05
        )

    def test_fitted_chain_is_ergodic_even_with_missing_states(self):
        fitted = fit_markov_chain([[0, 0, 0, 0]], n_states=3)
        assert fitted.is_ergodic()
