"""Tests for the geographic substrate: points, towers and Voronoi cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo.points import (
    BoundingBox,
    GeoPoint,
    SAN_FRANCISCO_BBOX,
    haversine_distance,
    planar_distance,
    project_to_plane,
)
from repro.geo.towers import TowerPlacementConfig, deduplicate_towers, generate_towers
from repro.geo.voronoi import VoronoiQuantizer


class TestGeoPoint:
    def test_valid_point(self):
        point = GeoPoint(37.7, -122.4)
        assert point.as_tuple() == (37.7, -122.4)

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)


class TestBoundingBox:
    def test_center(self):
        box = BoundingBox(0.0, 2.0, 10.0, 14.0)
        assert box.center.as_tuple() == (1.0, 12.0)

    def test_contains(self):
        assert SAN_FRANCISCO_BBOX.contains(GeoPoint(37.7, -122.4))
        assert not SAN_FRANCISCO_BBOX.contains(GeoPoint(40.0, -122.4))

    def test_clamp(self):
        clamped = SAN_FRANCISCO_BBOX.clamp(GeoPoint(40.0, -122.4))
        assert clamped.latitude == SAN_FRANCISCO_BBOX.max_latitude

    def test_sample_uniform_inside(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert SAN_FRANCISCO_BBOX.contains(SAN_FRANCISCO_BBOX.sample_uniform(rng))

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 1.0, 0.0, 2.0)


class TestDistances:
    def test_haversine_zero(self):
        p = GeoPoint(37.7, -122.4)
        assert haversine_distance(p, p) == 0.0

    def test_haversine_one_degree_latitude(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(1.0, 0.0)
        # One degree of latitude is roughly 111 km.
        assert 110_000 < haversine_distance(a, b) < 112_500

    def test_haversine_symmetric(self):
        a = GeoPoint(37.7, -122.4)
        b = GeoPoint(37.8, -122.3)
        assert np.isclose(haversine_distance(a, b), haversine_distance(b, a))

    def test_projection_preserves_local_distance(self):
        a = GeoPoint(37.70, -122.40)
        b = GeoPoint(37.72, -122.38)
        xy = project_to_plane([a, b], reference=a)
        assert np.isclose(
            planar_distance(xy[0], xy[1]), haversine_distance(a, b), rtol=0.01
        )

    def test_planar_distance_validation(self):
        with pytest.raises(ValueError):
            planar_distance(np.zeros(3), np.zeros(2))

    def test_projection_reference_maps_to_origin(self):
        a = GeoPoint(37.7, -122.4)
        xy = project_to_plane([a], reference=a)
        assert np.allclose(xy[0], [0.0, 0.0])


class TestTowerPlacement:
    def test_generate_returns_points_in_bbox(self):
        towers = generate_towers(TowerPlacementConfig(n_towers=50))
        assert towers
        for tower in towers:
            assert SAN_FRANCISCO_BBOX.contains(tower)

    def test_deduplication_enforces_min_separation(self):
        towers = generate_towers(
            TowerPlacementConfig(n_towers=120, min_separation_m=500.0)
        )
        for i, a in enumerate(towers):
            for b in towers[i + 1 :]:
                assert haversine_distance(a, b) >= 500.0

    def test_deduplicate_keeps_first(self):
        a = GeoPoint(37.7, -122.4)
        b = GeoPoint(37.70001, -122.40001)  # a few metres away
        kept = deduplicate_towers([a, b], min_separation_m=100.0)
        assert kept == [a]

    def test_deduplicate_zero_separation_keeps_all(self):
        a = GeoPoint(37.7, -122.4)
        b = GeoPoint(37.70001, -122.40001)
        assert len(deduplicate_towers([a, b], min_separation_m=0.0)) == 2

    def test_reproducible_with_seed(self):
        a = generate_towers(TowerPlacementConfig(n_towers=40), rng=np.random.default_rng(1))
        b = generate_towers(TowerPlacementConfig(n_towers=40), rng=np.random.default_rng(1))
        assert [t.as_tuple() for t in a] == [t.as_tuple() for t in b]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TowerPlacementConfig(n_towers=0)
        with pytest.raises(ValueError):
            TowerPlacementConfig(cluster_fraction=1.5)


class TestVoronoiQuantizer:
    @pytest.fixture
    def quantizer(self) -> VoronoiQuantizer:
        towers = [
            GeoPoint(37.60, -122.50),
            GeoPoint(37.60, -122.20),
            GeoPoint(37.90, -122.50),
            GeoPoint(37.90, -122.20),
        ]
        return VoronoiQuantizer(towers)

    def test_n_cells(self, quantizer):
        assert quantizer.n_cells == 4

    def test_point_near_tower_maps_to_it(self, quantizer):
        assert quantizer.quantize_point(GeoPoint(37.61, -122.49)) == 0
        assert quantizer.quantize_point(GeoPoint(37.89, -122.21)) == 3

    def test_quantize_points_batch(self, quantizer):
        cells = quantizer.quantize_points(
            [GeoPoint(37.60, -122.50), GeoPoint(37.90, -122.20)]
        )
        assert list(cells) == [0, 3]

    def test_quantize_empty(self, quantizer):
        assert quantizer.quantize_points([]).size == 0

    def test_requires_towers(self):
        with pytest.raises(ValueError):
            VoronoiQuantizer([])

    def test_adjacency_symmetric_no_self_loops(self, quantizer):
        adjacency = quantizer.cell_adjacency()
        assert np.array_equal(adjacency, adjacency.T)
        assert not np.any(np.diag(adjacency))

    def test_adjacency_small_layouts(self):
        towers = [GeoPoint(37.6, -122.5), GeoPoint(37.9, -122.2)]
        adjacency = VoronoiQuantizer(towers).cell_adjacency()
        assert adjacency[0, 1] and adjacency[1, 0]

    def test_single_tower_adjacency_empty(self):
        adjacency = VoronoiQuantizer([GeoPoint(37.6, -122.5)]).cell_adjacency()
        assert adjacency.shape == (1, 1) and not adjacency.any()

    def test_visit_histogram(self, quantizer):
        histogram = quantizer.cell_visit_histogram([0, 0, 1, 3])
        assert np.isclose(histogram.sum(), 1.0)
        assert histogram[0] == 0.5

    def test_visit_histogram_out_of_range(self, quantizer):
        with pytest.raises(ValueError):
            quantizer.cell_visit_histogram([9])

    def test_tower_planar_coordinates_shape(self, quantizer):
        assert quantizer.tower_planar_coordinates.shape == (4, 2)
