"""End-to-end invariants tying the simulation to the paper's claims.

These are the "does the reproduction behave like the paper says" tests:
each one encodes a statement from Sections V-VII and checks it on a
reduced-scale simulation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import im_tracking_accuracy, ml_tracking_accuracy
from repro.analysis.loglik import build_cml_induced_chain
from repro.analysis.metrics import aggregate_episodes
from repro.core.eavesdropper import MaximumLikelihoodDetector, StrategyAwareDetector
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.mobility.models import (
    lazy_uniform_model,
    paper_synthetic_models,
    spatially_skewed_model,
)
from repro.sim.monte_carlo import MonteCarloRunner


def _tracking(chain, strategy_name, detector, n_services=2, horizon=80, n_runs=60, seed=0):
    strategy = get_strategy(strategy_name) if strategy_name else None
    game = PrivacyGame(chain, strategy, detector, n_services=n_services)
    runner = MonteCarloRunner(n_runs=n_runs, seed=seed)
    return runner.run(game, horizon=horizon)


class TestSectionVClaims:
    def test_im_accuracy_matches_eq11_all_models(self, synthetic_models):
        """Eq. (11) must predict the simulated IM accuracy for every model."""
        detector = MaximumLikelihoodDetector()
        for label, chain in synthetic_models.items():
            stats = _tracking(chain, "IM", detector, n_services=4, n_runs=80)
            analytic = im_tracking_accuracy(chain, 4)
            assert abs(stats.tracking_accuracy - analytic) < 0.08, label

    def test_ml_accuracy_matches_eq12(self, synthetic_models):
        """Eq. (12): ML chaff accuracy equals the mean stationary mass of the
        chaff's cells (the chaff is deterministic)."""
        detector = MaximumLikelihoodDetector()
        chain = synthetic_models["non-skewed"]
        horizon = 60
        stats = _tracking(chain, "ML", detector, horizon=horizon, n_runs=80)
        assert abs(stats.tracking_accuracy - ml_tracking_accuracy(chain, horizon)) < 0.08

    def test_im_accuracy_bounded_away_from_zero(self):
        """Remark after Eq. (11): even many IM chaffs cannot reach zero."""
        chain = lazy_uniform_model(10, stay_probability=0.3)
        detector = MaximumLikelihoodDetector()
        stats = _tracking(chain, "IM", detector, n_services=10, n_runs=60)
        assert stats.tracking_accuracy > 0.5 / chain.n_states

    def test_oo_and_mo_decay_to_zero_for_high_entropy_user(self):
        """Theorems V.4 / V.5: for a high-entropy user the OO and MO tracking
        accuracies decay toward zero over time."""
        chain = lazy_uniform_model(10, stay_probability=0.2)
        detector = MaximumLikelihoodDetector()
        for name in ("OO", "MO", "CML"):
            stats = _tracking(chain, name, detector, horizon=100, n_runs=40)
            late = stats.per_slot_accuracy[-20:].mean()
            assert late < 0.05, name

    def test_predictable_user_not_fully_protected_by_cml(self):
        """When E[c_t] >= 0 (very predictable user) the decay condition fails
        and CML cannot drive the accuracy to zero."""
        chain = spatially_skewed_model(6, hot_weight=20.0, rng=np.random.default_rng(0))
        induced = build_cml_induced_chain(chain)
        assert induced.expected_ct > -0.2  # weak or failed decay condition
        detector = MaximumLikelihoodDetector()
        stats = _tracking(chain, "CML", detector, horizon=80, n_runs=40)
        assert stats.tracking_accuracy > 0.1

    def test_oo_is_best_strategy_under_basic_eavesdropper(self, synthetic_models):
        """OO minimises tracking accuracy among all strategies for the ML
        detector (it is optimal by construction)."""
        detector = MaximumLikelihoodDetector()
        chain = synthetic_models["spatially&temporally-skewed"]
        accuracies = {
            name: _tracking(chain, name, detector, horizon=60, n_runs=40).tracking_accuracy
            for name in ("IM", "ML", "OO", "MO", "CML")
        }
        best_other = min(v for k, v in accuracies.items() if k != "OO")
        assert accuracies["OO"] <= best_other + 0.03


class TestSectionVIClaims:
    def test_deterministic_strategies_fail_against_advanced_eavesdropper(self):
        """Section VI-A: an eavesdropper aware of a deterministic strategy
        tracks the user almost perfectly."""
        chain = paper_synthetic_models(10)["non-skewed"]
        for name in ("ML", "OO"):
            detector = StrategyAwareDetector(get_strategy(name))
            stats = _tracking(chain, name, detector, horizon=40, n_runs=30)
            assert stats.detection_accuracy > 0.9, name

    def test_im_fully_robust_to_advanced_eavesdropper(self):
        """Section VI-A1: knowing the IM strategy does not help."""
        chain = paper_synthetic_models(10)["non-skewed"]
        basic = _tracking(chain, "IM", MaximumLikelihoodDetector(), n_services=5, n_runs=60)
        aware = _tracking(
            chain,
            "IM",
            StrategyAwareDetector(get_strategy("IM")),
            n_services=5,
            n_runs=60,
        )
        assert abs(basic.tracking_accuracy - aware.tracking_accuracy) < 0.08

    def test_robust_strategies_beat_their_deterministic_counterparts(self):
        """Section VI-B: against the strategy-aware eavesdropper, the robust
        variants achieve far lower tracking accuracy than the deterministic
        strategies they perturb."""
        chain = paper_synthetic_models(10)["non-skewed"]
        pairs = (("ML", "RML"), ("OO", "ROO"))
        for deterministic, robust in pairs:
            detector = StrategyAwareDetector(get_strategy(deterministic))
            det_stats = _tracking(
                chain, deterministic, detector, n_services=4, horizon=40, n_runs=30
            )
            rob_stats = _tracking(
                chain, robust, detector, n_services=4, horizon=40, n_runs=30
            )
            assert rob_stats.tracking_accuracy < det_stats.tracking_accuracy - 0.3

    def test_robust_strategies_competitive_under_basic_eavesdropper(self):
        """Section VI-B discussion: the robust strategies approximate their
        originals when the eavesdropper is not strategy-aware."""
        chain = paper_synthetic_models(10)["non-skewed"]
        detector = MaximumLikelihoodDetector()
        rml = _tracking(chain, "RML", detector, n_services=4, horizon=60, n_runs=40)
        im = _tracking(chain, "IM", detector, n_services=4, horizon=60, n_runs=40)
        assert rml.tracking_accuracy <= im.tracking_accuracy + 0.1


class TestEavesdropperMetricsRelationship:
    def test_tracking_at_least_detection_times_one(self):
        """Detection implies tracking at every slot, so tracking accuracy is
        always >= detection accuracy."""
        chain = paper_synthetic_models(10)["spatially-skewed"]
        detector = MaximumLikelihoodDetector()
        game = PrivacyGame(chain, get_strategy("IM"), detector, n_services=3)
        episodes = [
            game.run_episode(np.random.default_rng(seed), horizon=40)
            for seed in range(40)
        ]
        stats = aggregate_episodes(episodes)
        assert stats.tracking_accuracy >= stats.detection_accuracy - 1e-9

    def test_no_chaff_baseline_perfect_tracking(self, synthetic_models):
        """Without chaffs (single-user observation) the eavesdropper is
        always right — the worst case the paper starts from."""
        chain = synthetic_models["non-skewed"]
        stats = _tracking(chain, None, MaximumLikelihoodDetector(), n_services=1, n_runs=10)
        assert stats.tracking_accuracy == 1.0
