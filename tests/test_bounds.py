"""Tests for the Section V closed forms and bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import (
    cml_tracking_bound,
    corollary_v6_bound,
    im_tracking_accuracy,
    im_tracking_accuracy_limit,
    lemma_v1_holds,
    likelihood_gap_constants,
    ml_tracking_accuracy,
    mo_tracking_bound,
    theorem_v4_bound,
    theorem_v5_bound,
)
from repro.analysis.metrics import aggregate_episodes
from repro.core.eavesdropper import MaximumLikelihoodDetector
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.mobility.models import lazy_uniform_model, uniform_iid_model


class TestIMClosedForm:
    def test_eq11_uniform_chain(self):
        chain = uniform_iid_model(10)
        # sum pi^2 = 1/10; with N = 2 accuracy = 0.1 + 0.9 / 2 = 0.55.
        assert np.isclose(im_tracking_accuracy(chain, 2), 0.55)

    def test_eq11_monotone_in_n(self, skewed_chain):
        values = [im_tracking_accuracy(skewed_chain, n) for n in range(2, 12)]
        assert all(a >= b for a, b in zip(values, values[1:], strict=False))

    def test_eq11_limit(self, skewed_chain):
        assert np.isclose(
            im_tracking_accuracy_limit(skewed_chain),
            skewed_chain.stationary_collision_probability(),
        )

    def test_limit_at_least_one_over_l(self, random_chain):
        assert im_tracking_accuracy_limit(random_chain) >= 1.0 / random_chain.n_states

    def test_eq11_requires_chaff(self, random_chain):
        with pytest.raises(ValueError):
            im_tracking_accuracy(random_chain, 1)

    def test_eq11_matches_simulation(self, random_chain):
        """The simulated IM tracking accuracy must match Eq. (11)."""
        n_services = 3
        game = PrivacyGame(
            random_chain,
            get_strategy("IM"),
            MaximumLikelihoodDetector(),
            n_services=n_services,
        )
        episodes = [
            game.run_episode(np.random.default_rng(seed), horizon=60)
            for seed in range(150)
        ]
        simulated = aggregate_episodes(episodes).tracking_accuracy
        analytic = im_tracking_accuracy(random_chain, n_services)
        assert abs(simulated - analytic) < 0.06


class TestMLClosedForm:
    def test_eq12_value_range(self, random_chain):
        value = ml_tracking_accuracy(random_chain, 50)
        assert 0.0 < value <= 1.0

    def test_eq12_skewed_chain_equals_max_pi(self, skewed_chain):
        # The ML chaff parks in the hot cell, so the accuracy equals pi_max.
        assert np.isclose(
            ml_tracking_accuracy(skewed_chain, 20), skewed_chain.stationary.max()
        )

    def test_lemma_v1_relation(self, skewed_chain, random_chain):
        """Lemma V.1: if the ML chaff parks in the max-pi cell, many IM
        chaffs are at least as good (limit = sum pi^2 <= max pi)."""
        for chain in (skewed_chain, random_chain):
            assert lemma_v1_holds(chain.stationary)
            assert im_tracking_accuracy_limit(chain) <= chain.stationary.max() + 1e-12

    def test_lemma_v1_equality_for_uniform(self):
        pi = np.full(7, 1.0 / 7.0)
        assert lemma_v1_holds(pi)
        assert np.isclose(np.sum(pi**2), pi.max())


class TestGapConstants:
    def test_constants_signs(self, random_chain):
        constants = likelihood_gap_constants(random_chain)
        assert constants.c0 >= 0
        assert constants.c_min <= 0
        assert constants.c_max >= 0

    def test_uniform_chain_constants_zero(self):
        constants = likelihood_gap_constants(uniform_iid_model(5))
        assert np.isclose(constants.c0, 0.0)
        assert np.isclose(constants.c_min, 0.0)
        assert np.isclose(constants.c_max, 0.0)

    def test_single_state_rejected(self):
        from repro.mobility.markov import MarkovChain

        with pytest.raises(ValueError):
            likelihood_gap_constants(MarkovChain(np.array([[1.0]])))


class TestTheoremFormulas:
    def test_theorem_v4_decreases_with_horizon(self):
        kwargs = dict(mu=0.5, epsilon=0.01, delta=1.0, w=3, c0=1.0, c_min=-2.0, c_max=2.0)
        short = theorem_v4_bound(horizon=50, **kwargs)
        long = theorem_v4_bound(horizon=500, **kwargs)
        assert long < short

    def test_theorem_v4_condition_violation(self):
        with pytest.raises(ValueError):
            theorem_v4_bound(
                horizon=10, mu=0.01, epsilon=0.5, delta=1.0, w=3, c0=5.0,
                c_min=-2.0, c_max=2.0,
            )

    def test_theorem_v4_requires_horizon_above_w(self):
        with pytest.raises(ValueError):
            theorem_v4_bound(
                horizon=3, mu=0.5, epsilon=0.01, delta=1.0, w=3, c0=1.0,
                c_min=-2.0, c_max=2.0,
            )

    def test_theorem_v5_decreases_with_horizon(self):
        kwargs = dict(
            mu_prime=0.5, epsilon=0.01, delta_prime=1.0, w_prime=3, c0=1.0,
            c_min=-2.0, c_max=2.0,
        )
        assert theorem_v5_bound(horizon=500, **kwargs) < theorem_v5_bound(
            horizon=50, **kwargs
        )

    def test_corollary_v6_in_unit_interval(self):
        value = corollary_v6_bound(horizon=100, t0=20, alpha=0.3, w_prime=4)
        assert 0.0 <= value <= 1.0

    def test_corollary_v6_decreases_with_horizon(self):
        short = corollary_v6_bound(horizon=100, t0=20, alpha=0.3, w_prime=4)
        long = corollary_v6_bound(horizon=1000, t0=20, alpha=0.3, w_prime=4)
        assert long < short

    def test_corollary_v6_validation(self):
        with pytest.raises(ValueError):
            corollary_v6_bound(horizon=10, t0=20, alpha=0.3, w_prime=4)
        with pytest.raises(ValueError):
            corollary_v6_bound(horizon=10, t0=2, alpha=0.0, w_prime=4)


class TestEndToEndBounds:
    def test_cml_bound_dominates_simulation_high_entropy(self):
        """For a high-entropy user the Theorem V.4 bound must upper-bound the
        simulated CML tracking accuracy."""
        chain = lazy_uniform_model(8, stay_probability=0.2)
        horizon = 120
        bound = cml_tracking_bound(chain, horizon, epsilon=0.05)
        game = PrivacyGame(
            chain, get_strategy("CML"), MaximumLikelihoodDetector(), n_services=2
        )
        episodes = [
            game.run_episode(np.random.default_rng(seed), horizon=horizon)
            for seed in range(40)
        ]
        simulated = aggregate_episodes(episodes).tracking_accuracy
        assert simulated <= bound + 0.05

    def test_cml_bound_trivial_when_condition_fails(self, skewed_chain):
        """For a very predictable user E[c_t] >= 0 and the bound is trivial."""
        assert cml_tracking_bound(skewed_chain, 50) == 1.0

    def test_cml_bound_small_horizon_rejected(self, random_chain):
        with pytest.raises(ValueError):
            cml_tracking_bound(random_chain, 1)

    def test_mo_bound_in_unit_interval(self, random_chain):
        value = mo_tracking_bound(
            random_chain, 80, n_estimation_runs=10, rng=np.random.default_rng(0)
        )
        assert 0.0 <= value <= 1.0

    def test_mo_bound_small_horizon_rejected(self, random_chain):
        with pytest.raises(ValueError):
            mo_tracking_bound(random_chain, 3)
