"""Tests for the eavesdropper detectors and the privacy game."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eavesdropper import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    StrategyAwareDetector,
    trajectory_log_likelihoods,
)
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.analysis.metrics import aggregate_episodes


class TestTrajectoryLogLikelihoods:
    def test_matches_chain_log_likelihood(self, random_chain, rng):
        trajectories = random_chain.sample_trajectories(5, 12, rng)
        scores = trajectory_log_likelihoods(random_chain, trajectories)
        for row, score in zip(trajectories, scores, strict=True):
            assert np.isclose(score, random_chain.log_likelihood(row))

    def test_rejects_empty(self, random_chain):
        with pytest.raises(ValueError):
            trajectory_log_likelihoods(random_chain, np.empty((0, 5), dtype=np.int64))

    def test_rejects_out_of_range(self, random_chain):
        with pytest.raises(ValueError):
            trajectory_log_likelihoods(random_chain, np.array([[0, 99]]))

    def test_single_slot_trajectories(self, random_chain):
        scores = trajectory_log_likelihoods(random_chain, np.array([[0], [1]]))
        assert np.isclose(scores[0], random_chain.log_stationary[0])


class TestMaximumLikelihoodDetector:
    def test_picks_highest_likelihood(self, skewed_chain, rng):
        detector = MaximumLikelihoodDetector()
        likely = np.zeros(10, dtype=np.int64)  # parked in the hot cell
        unlikely = np.arange(10) % skewed_chain.n_states
        outcome = detector.detect(skewed_chain, np.stack([unlikely, likely]), rng)
        assert outcome.chosen_index == 1

    def test_scores_are_log_likelihoods(self, random_chain, rng):
        detector = MaximumLikelihoodDetector()
        trajectories = random_chain.sample_trajectories(4, 8, rng)
        outcome = detector.detect(random_chain, trajectories, rng)
        assert np.allclose(
            outcome.scores, trajectory_log_likelihoods(random_chain, trajectories)
        )

    def test_tie_breaking_is_uniform(self, two_state_chain):
        detector = MaximumLikelihoodDetector()
        identical = np.zeros((2, 5), dtype=np.int64)
        picks = [
            detector.detect(two_state_chain, identical, np.random.default_rng(s)).chosen_index
            for s in range(200)
        ]
        assert 0.3 < np.mean(picks) < 0.7

    def test_candidates_contains_chosen(self, random_chain, rng):
        detector = MaximumLikelihoodDetector()
        trajectories = random_chain.sample_trajectories(6, 10, rng)
        outcome = detector.detect(random_chain, trajectories, rng)
        assert outcome.chosen_index in outcome.candidate_indices

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            MaximumLikelihoodDetector(tolerance=-1.0)


class TestRandomGuessDetector:
    def test_uniform_over_trajectories(self, random_chain):
        detector = RandomGuessDetector()
        trajectories = np.zeros((4, 5), dtype=np.int64)
        picks = [
            detector.detect(random_chain, trajectories, np.random.default_rng(s)).chosen_index
            for s in range(400)
        ]
        counts = np.bincount(picks, minlength=4) / len(picks)
        assert np.allclose(counts, 0.25, atol=0.08)

    def test_rejects_empty(self, random_chain, rng):
        with pytest.raises(ValueError):
            RandomGuessDetector().detect(random_chain, np.empty((0, 3), dtype=np.int64), rng)


class TestStrategyAwareDetector:
    def test_unmasks_ml_chaff(self, random_chain, rng):
        """Knowing the ML strategy, the detector filters the ML chaff and
        then always finds the user (Section VI-A2)."""
        ml_strategy = get_strategy("ML")
        detector = StrategyAwareDetector(ml_strategy)
        hits = 0
        for seed in range(20):
            local_rng = np.random.default_rng(seed)
            user = random_chain.sample_trajectory(15, local_rng)
            chaff = ml_strategy.generate(random_chain, user, 1, local_rng)
            observed = np.vstack([user, chaff])
            outcome = detector.detect(random_chain, observed, local_rng)
            hits += outcome.chosen_index == 0
        assert hits == 20

    def test_unmasks_oo_chaff(self, random_chain):
        oo_strategy = get_strategy("OO")
        detector = StrategyAwareDetector(oo_strategy)
        hits = 0
        for seed in range(10):
            local_rng = np.random.default_rng(seed)
            user = random_chain.sample_trajectory(12, local_rng)
            chaff = oo_strategy.generate(random_chain, user, 1, local_rng)
            observed = np.vstack([user, chaff])
            outcome = detector.detect(random_chain, observed, local_rng)
            hits += outcome.chosen_index == 0
        assert hits >= 9  # the "user looks like a chaff of the chaff" corner case is rare

    def test_falls_back_to_ml_for_randomised_strategy(self, random_chain, rng):
        im = get_strategy("IM")
        aware = StrategyAwareDetector(im)
        plain = MaximumLikelihoodDetector()
        user = random_chain.sample_trajectory(15, rng)
        chaffs = im.generate(random_chain, user, 3, rng)
        observed = np.vstack([user, chaffs])
        aware_outcome = aware.detect(random_chain, observed, np.random.default_rng(0))
        plain_outcome = plain.detect(random_chain, observed, np.random.default_rng(0))
        assert aware_outcome.chosen_index == plain_outcome.chosen_index

    def test_all_flagged_falls_back_to_guess(self, skewed_chain, rng):
        """If every observed trajectory looks like a chaff, guess uniformly."""
        ml_strategy = get_strategy("ML")
        detector = StrategyAwareDetector(ml_strategy)
        ml_trajectory = ml_strategy.most_likely(skewed_chain, 8)
        observed = np.vstack([ml_trajectory, ml_trajectory])
        outcome = detector.detect(skewed_chain, observed, rng)
        assert outcome.chosen_index in (0, 1)
        assert np.all(np.isnan(outcome.scores))

    def test_rml_defeats_aware_detector_more_than_ml(self, random_chain):
        """The robust RML strategy should evade the ML-aware detector far
        more often than plain ML does."""
        ml_strategy = get_strategy("ML")
        rml_strategy = get_strategy("RML")
        detector = StrategyAwareDetector(ml_strategy)
        ml_hits = rml_hits = 0
        n_trials = 15
        for seed in range(n_trials):
            local_rng = np.random.default_rng(seed)
            user = random_chain.sample_trajectory(20, local_rng)
            for strategy, counter in ((ml_strategy, "ml"), (rml_strategy, "rml")):
                chaffs = strategy.generate(random_chain, user, 3, local_rng)
                observed = np.vstack([user, chaffs])
                outcome = detector.detect(random_chain, observed, local_rng)
                if counter == "ml":
                    ml_hits += outcome.chosen_index == 0
                else:
                    rml_hits += outcome.chosen_index == 0
        assert ml_hits >= n_trials - 1
        assert rml_hits < ml_hits

    def test_rejects_empty_observations(self, random_chain, rng):
        detector = StrategyAwareDetector(get_strategy("ML"))
        with pytest.raises(ValueError):
            detector.detect(random_chain, np.empty((0, 3), dtype=np.int64), rng)


class TestPrivacyGame:
    def test_episode_shapes(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=4
        )
        episode = game.run_episode(rng, horizon=25)
        assert episode.user_trajectory.shape == (25,)
        assert episode.chaff_trajectories.shape == (3, 25)
        assert episode.observed_trajectories.shape == (4, 25)
        assert episode.tracked_per_slot.shape == (25,)
        assert 0.0 <= episode.tracking_accuracy <= 1.0

    def test_requires_exactly_one_of_horizon_and_trajectory(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        with pytest.raises(ValueError):
            game.run_episode(rng)
        with pytest.raises(ValueError):
            game.run_episode(rng, horizon=5, user_trajectory=np.zeros(5, dtype=np.int64))

    def test_no_chaff_game(self, random_chain, rng):
        game = PrivacyGame(random_chain, None, MaximumLikelihoodDetector(), n_services=1)
        episode = game.run_episode(rng, horizon=10)
        assert episode.chaff_trajectories.shape == (0, 10)
        assert episode.detected_user
        assert episode.tracking_accuracy == 1.0

    def test_strategy_requires_two_services(self, random_chain):
        with pytest.raises(ValueError):
            PrivacyGame(
                random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=1
            )

    def test_external_user_trajectory_used(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        user = random_chain.sample_trajectory(15, rng)
        episode = game.run_episode(rng, user_trajectory=user)
        assert np.array_equal(episode.user_trajectory, user)

    def test_background_trajectories_included(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        background = random_chain.sample_trajectories(5, 10, rng)
        episode = game.run_episode(
            rng, horizon=10, background_trajectories=background
        )
        assert episode.observed_trajectories.shape == (7, 10)

    def test_background_shape_mismatch(self, random_chain, rng):
        game = PrivacyGame(
            random_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        background = random_chain.sample_trajectories(2, 9, rng)
        with pytest.raises(ValueError):
            game.run_episode(rng, horizon=10, background_trajectories=background)

    def test_oo_defeats_ml_detector(self, random_chain):
        """Under OO the basic eavesdropper should essentially never track a
        high-entropy user."""
        game = PrivacyGame(
            random_chain, get_strategy("OO"), MaximumLikelihoodDetector(), n_services=2
        )
        episodes = [
            game.run_episode(np.random.default_rng(seed), horizon=30)
            for seed in range(20)
        ]
        stats = aggregate_episodes(episodes)
        assert stats.tracking_accuracy < 0.05

    def test_tracking_counts_colocated_wrong_guess(self, two_state_chain, rng):
        """Tracking accuracy is about location, not identity: picking a chaff
        that sits on the user's cell still counts as tracked."""
        game = PrivacyGame(
            two_state_chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
        )
        episode = game.run_episode(rng, horizon=50)
        if not episode.detected_user:
            overlap = np.mean(
                episode.observed_trajectories[episode.detection.chosen_index]
                == episode.user_trajectory
            )
            assert np.isclose(episode.tracking_accuracy, overlap)
