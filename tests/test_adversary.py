"""Tests for the adversary subsystem (knowledge x coverage eavesdroppers).

Covers the coverage models (seeded masks, nested ladders, coalitions),
the knowledge models (oracle / learned / stale semantics, warm-started
online fitting), the adversary detector's contracts — oracle knowledge
with full coverage bit-identical to the existing ML fleet path in both
engines, vectorised == loop-reference scoring for every knowledge x
coverage combination, censored-plane scoring — the adversary Monte-Carlo
(order-dependent learning, worker-count invariant report simulation),
the registered ``adversary`` experiment + CLI, and the two satellite
upgrades: the vectorised strategy-aware detector and the stack-aware
online trackers.

The worker count for sharded-equivalence tests is taken from
``REPRO_TEST_WORKERS`` (default 2) so CI can pin the process-pool path.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.adversary import (
    AdversaryDetector,
    CoalitionCoverage,
    FullCoverage,
    LearnedKnowledge,
    OracleKnowledge,
    SiteCoverage,
    StaleKnowledge,
    coalition_coverage,
    make_knowledge,
    run_adversary_monte_carlo,
    simulate_fleet_reports,
)
from repro.core.eavesdropper.advanced import StrategyAwareDetector
from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.eavesdropper.online import (
    BayesianPosteriorTracker,
    PrefixMLTracker,
    prefix_log_likelihood_scores,
)
from repro.core.strategies import get_strategy
from repro.experiments.adversary import run_adversary_experiment
from repro.experiments.registry import run_experiment
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.observer import EavesdropperObserver, censor_observations
from repro.mec.simulator import MECSimulation, MECSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import ResultCache
from repro.sim.config import AdversaryExperimentConfig
from repro.sim.seeding import spawn_generators
from repro.world.generators import dynamic_timeline

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

KNOWLEDGE_LEVELS = ("oracle", "learned", "stale")


@pytest.fixture(scope="module")
def chains():
    return paper_synthetic_models(10, seed=2017)


@pytest.fixture(scope="module")
def chain(chains):
    return chains["non-skewed"]


def _fleet(chain, *, n_users=6, horizon=25, timeline=None, capacity=6):
    topology = MECTopology.from_grid(GridTopology(2, 5), capacity=capacity)
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=n_users, horizon=horizon, n_chaffs=1
        ),
        timeline=timeline,
    )


def _dynamic_fleet(chains, *, churn=0.0, seed=11, horizon=30, n_users=6):
    timeline = dynamic_timeline(
        horizon=horizon,
        n_cells=10,
        n_users=n_users,
        seed=seed,
        regime_chains=(chains["temporally-skewed"],),
        regime_period=8,
        churn_rate=churn,
    )
    return _fleet(
        chains["non-skewed"], n_users=n_users, horizon=horizon, timeline=timeline
    )


def _coverages():
    return (
        FullCoverage(),
        SiteCoverage(0.4, 7),
        coalition_coverage(3, 0.2, 5),
    )


class TestCoverageModels:
    def test_full_coverage_sees_everything(self):
        coverage = FullCoverage()
        assert coverage.is_full(10)
        traj = np.array([[0, 3, 9], [2, -1, 5]])
        mask = coverage.visible_mask(traj, 10)
        assert mask.tolist() == [[True, True, True], [True, False, True]]

    def test_site_coverage_is_seeded_and_deterministic(self):
        a = SiteCoverage(0.4, 7).compromised_cells(20)
        b = SiteCoverage(0.4, 7).compromised_cells(20)
        c = SiteCoverage(0.4, 8).compromised_cells(20)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.size == 8
        assert np.array_equal(a, np.sort(a))

    def test_site_coverage_fractions_are_nested(self):
        small = set(SiteCoverage(0.2, 3).compromised_cells(25).tolist())
        large = set(SiteCoverage(0.6, 3).compromised_cells(25).tolist())
        assert small < large

    def test_site_coverage_at_least_one_cell(self):
        assert SiteCoverage(0.01, 0).compromised_cells(10).size == 1
        with pytest.raises(ValueError, match="fraction"):
            SiteCoverage(0.0)
        with pytest.raises(ValueError, match="fraction"):
            SiteCoverage(1.5)

    def test_censor_marks_invisible_slots(self):
        coverage = SiteCoverage(0.3, 1)
        cells = coverage.compromised_cells(10)
        traj = np.arange(10)[None, :]
        censored = coverage.censor(traj, 10)
        for cell in range(10):
            expected = cell if cell in cells else -1
            assert censored[0, cell] == expected

    def test_coalition_is_the_union(self):
        members = [SiteCoverage(0.2, 1), SiteCoverage(0.2, 2)]
        union = CoalitionCoverage(members).compromised_cells(25)
        merged = np.unique(
            np.concatenate([m.compromised_cells(25) for m in members])
        )
        assert np.array_equal(union, merged)

    def test_coalitions_are_nested_in_size(self):
        two = set(coalition_coverage(2, 0.2, 9).compromised_cells(25).tolist())
        three = set(coalition_coverage(3, 0.2, 9).compromised_cells(25).tolist())
        assert two <= three

    def test_single_member_coalition_is_site_coverage(self):
        assert isinstance(coalition_coverage(1, 0.3, 4), SiteCoverage)
        with pytest.raises(ValueError):
            coalition_coverage(0, 0.3, 4)
        with pytest.raises(ValueError):
            CoalitionCoverage([])

    def test_site_coverage_pickles_identically(self):
        coverage = SiteCoverage(0.4, 7)
        original = coverage.compromised_cells(20)
        clone = pickle.loads(pickle.dumps(coverage))
        assert np.array_equal(clone.compromised_cells(20), original)


class TestKnowledgeModels:
    def test_oracle_passes_the_truth_through(self, chain):
        stack = np.repeat(chain.transition_matrix[None], 4, axis=0)
        model, model_stack = OracleKnowledge().scoring_model(chain, stack)
        assert model is chain
        assert model_stack is stack

    def test_stale_drops_the_regime_schedule(self, chain):
        stack = np.repeat(chain.transition_matrix[None], 4, axis=0)
        model, model_stack = StaleKnowledge().scoring_model(chain, stack)
        assert model is chain
        assert model_stack is None

    def test_learned_starts_uniform(self, chain):
        model, stack = LearnedKnowledge().scoring_model(chain, None)
        assert stack is None
        assert np.allclose(model.transition_matrix, 1.0 / chain.n_states)

    def test_learned_counts_only_visible_transitions(self):
        knowledge = LearnedKnowledge()
        plane = np.array([[0, 1, -1, 1, 2], [2, 2, 2, -1, -1]])
        knowledge.observe(plane, 3)
        counts = knowledge.transition_counts
        assert counts[0, 1] == 1  # 0 -> 1
        assert counts[1, 2] == 1  # 1 -> 2
        assert counts[2, 2] == 2  # 2 -> 2 twice
        assert counts.sum() == 4  # nothing across the -1 gaps

    def test_warm_start_accumulates_and_cold_start_resets(self):
        plane = np.array([[0, 1, 0, 1]])
        warm = LearnedKnowledge(warm_start=True)
        cold = LearnedKnowledge(warm_start=False)
        for _ in range(3):
            warm.observe(plane, 2)
            cold.observe(plane, 2)
        assert warm.n_observed_transitions == 9
        assert cold.n_observed_transitions == 3
        warm.reset()
        assert warm.n_observed_transitions == 0

    def test_learned_model_approaches_the_true_chain(self, chain):
        rng = np.random.default_rng(0)
        knowledge = LearnedKnowledge()
        trajectories = chain.sample_trajectories(200, 50, rng)
        knowledge.observe(trajectories[:5], chain.n_states)
        early, _ = knowledge.scoring_model(chain, None)
        early_error = np.abs(
            early.transition_matrix - chain.transition_matrix
        ).max()
        knowledge.observe(trajectories[5:], chain.n_states)
        late, _ = knowledge.scoring_model(chain, None)
        late_error = np.abs(late.transition_matrix - chain.transition_matrix).max()
        assert late_error < early_error
        assert late_error < 0.1

    def test_knowledge_levels_stay_in_sync_with_the_config(self):
        # sim/config cannot import the adversary package (cycle), so the
        # accepted-levels tuples are duplicated; pin them identical and
        # constructible.
        import repro.adversary as adversary_pkg
        from repro.sim.config import _KNOWLEDGE_LEVELS

        assert adversary_pkg.KNOWLEDGE_LEVELS == _KNOWLEDGE_LEVELS
        for level in _KNOWLEDGE_LEVELS:
            assert make_knowledge(level).name == level

    def test_make_knowledge(self):
        assert isinstance(make_knowledge("oracle"), OracleKnowledge)
        assert isinstance(make_knowledge("stale"), StaleKnowledge)
        learned = make_knowledge("learned", smoothing=0.5, warm_start=False)
        assert isinstance(learned, LearnedKnowledge)
        assert learned.smoothing == 0.5 and not learned.warm_start
        with pytest.raises(ValueError, match="unknown knowledge level"):
            make_knowledge("psychic")


class TestOracleFullBitIdentity:
    """Oracle knowledge + full coverage == the existing ML fleet path."""

    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_static_world(self, chain, engine):
        simulation = _fleet(chain)
        report = simulation.run(0, engine=engine)
        ml = report.evaluate(chain, MaximumLikelihoodDetector())
        adv = report.evaluate(chain, AdversaryDetector())
        assert np.array_equal(ml.chosen_rows, adv.chosen_rows)
        assert np.array_equal(ml.tracking_per_user, adv.tracking_per_user)
        assert np.array_equal(ml.detected_per_user, adv.detected_per_user)

    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_dynamic_churned_world(self, chains, engine):
        simulation = _dynamic_fleet(chains, churn=0.4)
        report = simulation.run(3, engine=engine)
        assert report.windows is not None  # the masked evaluation path
        ml = report.evaluate(chains["non-skewed"], MaximumLikelihoodDetector())
        adv = report.evaluate(chains["non-skewed"], AdversaryDetector())
        assert np.array_equal(ml.chosen_rows, adv.chosen_rows)
        assert np.array_equal(ml.tracking_per_user, adv.tracking_per_user)

    def test_golden_seed_digest(self, chain):
        # Pin the oracle/full decisions for one seed so regressions in
        # either the fleet path or the adversary delegation are loud.
        report = _fleet(chain).run(2017)
        adv = report.evaluate(chain, AdversaryDetector())
        ml = report.evaluate(chain, MaximumLikelihoodDetector())
        assert adv.chosen_rows.tolist() == ml.chosen_rows.tolist()

    def test_single_user_game_detect(self, chain):
        observed = chain.sample_trajectories(4, 20, np.random.default_rng(5))
        ml = MaximumLikelihoodDetector().detect(
            chain, observed, np.random.default_rng(9)
        )
        adv = AdversaryDetector().detect(chain, observed, np.random.default_rng(9))
        assert ml.chosen_index == adv.chosen_index
        assert np.allclose(ml.scores, adv.scores)


class TestVectorisedVsLoopReference:
    """The vectorised kernels == the naive reference, every combination."""

    @pytest.mark.parametrize("level", KNOWLEDGE_LEVELS)
    def test_crowd_decisions_match(self, chains, level):
        report = _dynamic_fleet(chains, churn=0.3).run(1)
        for coverage in _coverages():
            fast = AdversaryDetector(make_knowledge(level), coverage)
            slow = AdversaryDetector(
                make_knowledge(level), coverage, loop_reference=True
            )
            a = report.evaluate(chains["non-skewed"], fast)
            b = report.evaluate(chains["non-skewed"], slow)
            assert np.array_equal(a.chosen_rows, b.chosen_rows), coverage.name
            assert np.array_equal(a.tracking_per_user, b.tracking_per_user)

    @pytest.mark.parametrize("level", KNOWLEDGE_LEVELS)
    def test_detect_batch_matches_scalar_detect(self, chain, level):
        rng = np.random.default_rng(3)
        observed = chain.sample_trajectories(24, 15, rng).reshape(6, 4, 15)
        for coverage in _coverages():
            batch_adv = AdversaryDetector(make_knowledge(level), coverage)
            scalar_adv = AdversaryDetector(make_knowledge(level), coverage)
            # Same seed + key: the two lists are identical streams, so the
            # batched and scalar paths see the same tie-break randomness.
            rngs_a = spawn_generators(100, 6, key="batch-vs-scalar")
            rngs_b = spawn_generators(100, 6, key="batch-vs-scalar")
            batched = batch_adv.detect_batch(chain, observed, rngs_a)
            for run in range(6):
                outcome = scalar_adv.detect(chain, observed[run], rngs_b[run])
                assert outcome.chosen_index == batched.chosen_indices[run]
                assert np.allclose(
                    outcome.scores, batched.scores[run], equal_nan=True
                )

    def test_detect_batch_stack_dispatches_per_run(self, chains):
        # A batch where some runs are fully visible and others censored
        # must score each run exactly as the scalar path would.
        chain = chains["non-skewed"]
        cells = SiteCoverage(0.4, 7).compromised_cells(10)
        inside = np.full((3, 12), cells[0], dtype=np.int64)
        outside_cell = next(c for c in range(10) if c not in cells)
        mixed = inside.copy()
        mixed[1, 3:6] = outside_cell
        observed = np.stack([inside, mixed], axis=0)
        adversary = AdversaryDetector(OracleKnowledge(), SiteCoverage(0.4, 7))
        rngs = [np.random.default_rng(k) for k in range(2)]
        batched = adversary.detect_batch(chain, observed, rngs)
        for run in range(2):
            outcome = adversary.detect(
                chain, observed[run], np.random.default_rng(run)
            )
            assert np.allclose(outcome.scores, batched.scores[run])


class TestCensoredScoring:
    def test_blind_adversary_guesses_uniformly(self, chain):
        # Coverage that sees nothing -> all scores -inf -> uniform guess.
        observed = np.full((4, 10), 0, dtype=np.int64)
        coverage = SiteCoverage(0.1, 0)
        cells = coverage.compromised_cells(chain.n_states)
        blind_cell = next(c for c in range(chain.n_states) if c not in cells)
        observed[:] = blind_cell
        adversary = AdversaryDetector(OracleKnowledge(), coverage)
        outcome = adversary.detect(chain, observed, np.random.default_rng(0))
        assert np.all(np.isneginf(outcome.scores))
        assert outcome.candidate_indices.tolist() == [0, 1, 2, 3]

    def test_partial_coverage_scores_only_visible_slots(self, chain):
        coverage = SiteCoverage(0.3, 2)
        cells = coverage.compromised_cells(chain.n_states)
        visible = int(cells[0])
        hidden = next(c for c in range(chain.n_states) if c not in cells)
        row = np.array([visible, visible, hidden, visible], dtype=np.int64)
        adversary = AdversaryDetector(OracleKnowledge(), coverage)
        outcome = adversary.detect(
            chain, np.stack([row, row]), np.random.default_rng(0)
        )
        # Hand-computed per-observed-slot rate: stationary term + one
        # contiguous transition, over three visible slots.
        expected = (
            chain.log_stationary[visible]
            + chain.log_transition_matrix[visible, visible]
        ) / 3
        assert np.allclose(outcome.scores, expected)

    def test_more_coverage_never_hurts_on_average(self, chain):
        # A statistical tendency, not a theorem: at a handful of runs a
        # lucky partial-coverage guess can beat full coverage, so this
        # uses a run count and seed where the average is stable (checked
        # monotone at 6, 12 and 20 runs for this seed).
        simulation = _fleet(chain, n_users=8)
        reports = simulate_fleet_reports(simulation, n_runs=20, seed=0)
        rates = []
        for fraction in (0.2, 1.0):
            coverage = (
                FullCoverage() if fraction >= 1.0 else SiteCoverage(fraction, 3)
            )
            stats = run_adversary_monte_carlo(
                simulation,
                AdversaryDetector(OracleKnowledge(), coverage),
                n_runs=20,
                seed=0,
                reports=reports,
            )
            rates.append(stats.mean_detection)
        assert rates[1] >= rates[0]

    def test_learning_adversary_observes_crowd_once(self, chain):
        simulation = _fleet(chain)
        report = simulation.run(0)
        adversary = AdversaryDetector(LearnedKnowledge(), FullCoverage())
        report.evaluate(chain, adversary)
        plane = report.observations.trajectories
        expected = plane.shape[0] * (plane.shape[1] - 1)
        assert adversary.knowledge.n_observed_transitions == expected


class TestAdversaryMonteCarlo:
    def test_report_simulation_is_worker_invariant(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=12)
        serial = simulate_fleet_reports(simulation, n_runs=5, seed=7, workers=1)
        sharded = simulate_fleet_reports(
            simulation, n_runs=5, seed=7, workers=WORKERS
        )
        for a, b in zip(serial, sharded, strict=True):
            assert np.array_equal(a.user_trajectories, b.user_trajectories)
            assert np.array_equal(
                a.observations.trajectories, b.observations.trajectories
            )
            assert a.per_user_cost.tolist() == b.per_user_cost.tolist()

    def test_monte_carlo_worker_invariance_with_learning(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=12)

        def stats(workers):
            return run_adversary_monte_carlo(
                simulation,
                AdversaryDetector(LearnedKnowledge(), SiteCoverage(0.5, 3)),
                n_runs=5,
                seed=7,
                workers=workers,
            )

        serial, sharded = stats(1), stats(WORKERS)
        assert np.array_equal(serial.detection_runs, sharded.detection_runs)
        assert np.array_equal(serial.tracking_runs, sharded.tracking_runs)
        assert np.array_equal(serial.cost_runs, sharded.cost_runs)

    def test_learning_is_order_dependent_and_cumulative(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=12)
        adversary = AdversaryDetector(LearnedKnowledge(), FullCoverage())
        run_adversary_monte_carlo(simulation, adversary, n_runs=4, seed=7)
        n_services = simulation.config.n_services
        per_run = n_services * (simulation.config.horizon - 1)
        assert adversary.knowledge.n_observed_transitions == 4 * per_run

    def test_fleet_monte_carlo_rejects_sharded_learning_detector(self, chain):
        # run_fleet_monte_carlo evaluates inside the shard workers, so a
        # learning adversary would learn per shard and the numbers would
        # depend on the worker count; it must refuse instead.
        from repro.mec.fleet import run_fleet_monte_carlo

        simulation = _fleet(chain, n_users=4, horizon=12)
        with pytest.raises(ValueError, match="stateful"):
            run_fleet_monte_carlo(
                simulation,
                n_runs=4,
                seed=1,
                detector=AdversaryDetector(LearnedKnowledge()),
                workers=2,
            )
        # Serial execution evaluates in run order and stays allowed.
        statistics = run_fleet_monte_carlo(
            simulation,
            n_runs=2,
            seed=1,
            detector=AdversaryDetector(LearnedKnowledge()),
            workers=1,
        )
        assert statistics.n_runs == 2

    def test_report_count_mismatch_rejected(self, chain):
        simulation = _fleet(chain, n_users=4, horizon=12)
        reports = simulate_fleet_reports(simulation, n_runs=2, seed=7)
        with pytest.raises(ValueError, match="expected 3 reports"):
            run_adversary_monte_carlo(
                simulation,
                AdversaryDetector(),
                n_runs=3,
                seed=7,
                reports=reports,
            )


class TestAdversaryLadderSemantics:
    def test_stale_is_oracle_in_a_static_world(self, chain):
        report = _fleet(chain).run(4)
        oracle = report.evaluate(chain, AdversaryDetector(OracleKnowledge()))
        stale = report.evaluate(chain, AdversaryDetector(StaleKnowledge()))
        assert np.array_equal(oracle.chosen_rows, stale.chosen_rows)

    def test_stale_differs_under_regime_switches(self, chains):
        report = _dynamic_fleet(chains).run(3)
        assert report.transition_stack is not None
        chain = chains["non-skewed"]
        oracle = report.evaluate(chain, AdversaryDetector(OracleKnowledge()))
        stale = report.evaluate(chain, AdversaryDetector(StaleKnowledge()))
        # Same tie-break streams, different scoring model: the decisions
        # differ for this seed because the regime schedule is withheld.
        assert not np.array_equal(oracle.chosen_rows, stale.chosen_rows)

    def test_warm_started_learner_beats_cold_start(self, chains):
        # After many episodes the warm-started model scores future planes
        # strictly better (closer to the truth) than an amnesiac one.
        chain = chains["non-skewed"]
        simulation = _fleet(chain, n_users=8)
        reports = simulate_fleet_reports(simulation, n_runs=10, seed=9)
        warm = LearnedKnowledge(warm_start=True)
        for report in reports:
            warm.observe(report.observations.trajectories, chain.n_states)
        warm_chain, _ = warm.scoring_model(chain, None)
        cold = LearnedKnowledge(warm_start=False)
        cold.observe(reports[-1].observations.trajectories, chain.n_states)
        cold_chain, _ = cold.scoring_model(chain, None)
        warm_error = np.abs(
            warm_chain.transition_matrix - chain.transition_matrix
        ).max()
        cold_error = np.abs(
            cold_chain.transition_matrix - chain.transition_matrix
        ).max()
        assert warm_error < cold_error


class TestAdversaryExperiment:
    def _config(self, **overrides) -> AdversaryExperimentConfig:
        base = dict(
            n_users=8,
            n_cells=9,
            site_capacity=4,
            horizon=16,
            n_runs=3,
            coverage_fractions=(0.3, 1.0),
            coalition_sizes=(1, 2),
        )
        base.update(overrides)
        return AdversaryExperimentConfig(**base)

    def test_experiment_shape(self):
        result = run_adversary_experiment(self._config())
        assert result.experiment_id == "adversary"
        assert set(result.groups) == {
            "coverage-fraction (single view)",
            "coalition-size (fraction = 0.2 per member)",
        }
        coverage_labels = [
            s.label for s in result.groups["coverage-fraction (single view)"]
        ]
        for level in ("oracle", "learned", "stale"):
            assert f"detection [{level}]" in coverage_labels
            assert f"tracking [{level}]" in coverage_labels
        assert "defender_cost_per_user" in result.scalars
        assert "knowledge_gap_learned" in result.scalars

    def test_workers_do_not_change_the_numbers(self):
        serial = run_adversary_experiment(self._config())
        parallel = run_adversary_experiment(self._config(workers=WORKERS))
        assert serial.to_dict()["groups"] == parallel.to_dict()["groups"]
        assert serial.to_dict()["scalars"] == parallel.to_dict()["scalars"]

    def test_engines_do_not_change_the_numbers(self):
        batch = run_adversary_experiment(self._config())
        loop = run_adversary_experiment(self._config(engine="loop"))
        assert batch.to_dict()["groups"] == loop.to_dict()["groups"]

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = self._config()
        first = run_experiment("adversary", config, cache=cache)
        assert cache.hits == 0
        second = run_experiment("adversary", config, cache=cache)
        assert cache.hits == 1
        assert first.to_dict() == second.to_dict()

    def test_config_round_trip(self):
        config = self._config()
        assert AdversaryExperimentConfig.from_dict(config.to_dict()) == config

    def test_config_validation(self):
        with pytest.raises(ValueError, match="knowledge level"):
            self._config(knowledge_levels=("oracle", "psychic"))
        with pytest.raises(ValueError, match="coverage fractions"):
            self._config(coverage_fractions=(0.0,))
        with pytest.raises(ValueError, match="coalition sizes"):
            self._config(coalition_sizes=(0,))
        with pytest.raises(ValueError, match="service slots"):
            AdversaryExperimentConfig(n_users=50, n_cells=9, site_capacity=4)

    def test_scaled_clamps_the_regime_period(self):
        config = AdversaryExperimentConfig().scaled(horizon=8, n_runs=2)
        assert config.regime_period == 4
        assert config.n_runs == 2

    def test_oracle_full_point_matches_the_ml_fleet_path(self):
        # The experiment's (oracle, full-coverage) point must equal a
        # plain ML evaluation of the same reports.
        from repro.experiments.adversary import _build_simulation
        from repro.sim.seeding import spawn_sequences

        config = self._config(
            knowledge_levels=("oracle",), coverage_fractions=(1.0,)
        )
        result = run_adversary_experiment(config)
        world_seed, run_seed, _ = spawn_sequences(config.seed, 3, key="adversary")
        simulation = _build_simulation(config, world_seed)
        reports = simulate_fleet_reports(
            simulation, n_runs=config.n_runs, seed=run_seed
        )
        detections = [
            report.evaluate(
                simulation.chain, MaximumLikelihoodDetector()
            ).mean_detection
            for report in reports
        ]
        expected = float(np.mean(detections))
        series = result.groups["coverage-fraction (single view)"][0]
        assert series.label == "detection [oracle]"
        assert series.values[-1] == pytest.approx(expected, abs=0)


class TestAdversaryCLI:
    def test_run_adversary_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "run",
                "adversary",
                "--users",
                "6",
                "--cells",
                "9",
                "--capacity",
                "4",
                "--runs",
                "2",
                "--horizon",
                "12",
                "--knowledge",
                "oracle,stale",
                "--coverage",
                "0.3,1.0",
                "--coalition-sizes",
                "1,2",
                "--no-cache",
                "--output",
                str(tmp_path / "adversary.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[adversary]" in out
        assert "detection [oracle]" in out
        assert "detection [learned]" not in out
        assert (tmp_path / "adversary.json").exists()

    def test_adversary_listed(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "adversary" in capsys.readouterr().out.split()


class TestObserverCensoring:
    def _matrix(self, chain):
        topology = MECTopology.ring(10, capacity=4)
        simulation = MECSimulation(
            topology,
            chain,
            strategy=get_strategy("IM"),
            config=MECSimulationConfig(horizon=12, n_chaffs=2),
        )
        report = simulation.run(np.random.default_rng(0))
        return report.observations

    def test_censor_observations(self, chain):
        matrix = self._matrix(chain)
        coverage = SiteCoverage(0.4, 7)
        censored = censor_observations(matrix, coverage, 10)
        mask = coverage.visible_mask(matrix.trajectories, 10)
        assert np.array_equal(censored.trajectories == -1, ~mask)
        assert np.array_equal(censored.service_ids, matrix.service_ids)
        assert censored.user_row == matrix.user_row

    def test_full_coverage_censors_nothing(self, chain):
        matrix = self._matrix(chain)
        censored = censor_observations(matrix, FullCoverage(), 10)
        assert np.array_equal(censored.trajectories, matrix.trajectories)

    def test_observer_unchanged_by_default(self, chain):
        observer = EavesdropperObserver(shuffle=False)
        assert observer.shuffle is False


class TestStrategyAwareBatch:
    """Satellite: the Section VI-A eavesdropper under the batch engine."""

    def _batch(self, chain, strategy_name, runs=5, n=3, horizon=12):
        rng = np.random.default_rng(1)
        users = chain.sample_trajectories(runs, horizon, rng)
        strategy = get_strategy(strategy_name)
        observed = np.empty((runs, n, horizon), dtype=np.int64)
        chaff_rngs = spawn_generators(50, runs, key="strategy-batch")
        for run in range(runs):
            observed[run, 0] = users[run]
            observed[run, 1:] = strategy.generate(
                chain, users[run], n - 1, chaff_rngs[run]
            )
        return observed

    @pytest.mark.parametrize("strategy_name", ["ML", "IM"])
    def test_detect_batch_matches_scalar(self, chain, strategy_name):
        observed = self._batch(chain, strategy_name)
        detector = StrategyAwareDetector(get_strategy(strategy_name))
        rngs_a = spawn_generators(200, 5, key="aware-batch-vs-scalar")
        rngs_b = spawn_generators(200, 5, key="aware-batch-vs-scalar")
        batched = detector.detect_batch(chain, observed, rngs_a)
        for run in range(5):
            outcome = detector.detect(chain, observed[run], rngs_b[run])
            assert outcome.chosen_index == batched.chosen_indices[run]
            assert np.allclose(
                outcome.scores, batched.scores[run], equal_nan=True
            )
            assert np.array_equal(
                outcome.candidate_indices, batched.candidate_indices[run]
            )

    def test_all_flagged_runs_guess_identically(self, chain):
        # Two copies of the ML strategy's (user-independent) deterministic
        # chaff: each is Gamma of the other, so every trajectory is
        # flagged and both paths must fall back to the same uniform guess.
        strategy = get_strategy("ML")
        user = chain.sample_trajectory(10, np.random.default_rng(2))
        gamma = strategy.deterministic_map(chain, user)
        observed = np.stack([gamma, gamma])[None].repeat(3, axis=0)
        detector = StrategyAwareDetector(strategy)
        rngs_a = spawn_generators(300, 3, key="all-flagged")
        rngs_b = spawn_generators(300, 3, key="all-flagged")
        batched = detector.detect_batch(chain, observed, rngs_a)
        flagged_any = np.isnan(batched.scores).any()
        for run in range(3):
            outcome = detector.detect(chain, observed[run], rngs_b[run])
            assert outcome.chosen_index == batched.chosen_indices[run]
        assert flagged_any

    def test_transition_stack_scoring(self, chains):
        # The ML stage must score under the time-varying chain; chaff
        # unmasking still uses the deterministic map of the base chain.
        chain = chains["non-skewed"]
        regime = chains["temporally-skewed"]
        horizon = 10
        stack = np.repeat(regime.transition_matrix[None], horizon - 1, axis=0)
        observed = chain.sample_trajectories(
            3, horizon, np.random.default_rng(4)
        )[None]
        detector = StrategyAwareDetector(get_strategy("IM"))
        batched = detector.detect_batch(
            chain, observed, [np.random.default_rng(0)], transition_stack=stack
        )
        expected = chain.log_likelihoods(observed[0], transition_stack=stack)
        assert np.allclose(batched.scores[0], expected)

    def test_no_longer_raises_under_dynamic_worlds(self, chains):
        chain = chains["non-skewed"]
        horizon = 8
        stack = np.repeat(
            chains["temporally-skewed"].transition_matrix[None],
            horizon - 1,
            axis=0,
        )
        observed = chain.sample_trajectories(
            2, horizon, np.random.default_rng(6)
        )[None]
        detector = StrategyAwareDetector(get_strategy("IM"))
        # Used to raise NotImplementedError through the base detect_batch.
        outcome = detector.detect_batch(
            chain, observed, [np.random.default_rng(0)], transition_stack=stack
        )
        assert outcome.chosen_indices.shape == (1,)


class TestStackAwareTrackers:
    """Satellite: online trackers scoring under regime switches."""

    def _stack(self, chains, horizon):
        return np.repeat(
            chains["temporally-skewed"].transition_matrix[None],
            horizon - 1,
            axis=0,
        )

    def test_prefix_scores_under_a_stack(self, chains):
        chain = chains["non-skewed"]
        horizon = 9
        stack = self._stack(chains, horizon)
        observed = chain.sample_trajectories(3, horizon, np.random.default_rng(8))
        scores = prefix_log_likelihood_scores(chain, observed, stack)
        # Final prefix == full-trajectory log-likelihood under the stack.
        full = chain.log_likelihoods(observed, transition_stack=stack)
        assert np.allclose(scores[:, -1], full)
        # Static call unchanged.
        static = prefix_log_likelihood_scores(chain, observed)
        assert np.allclose(static[:, -1], chain.log_likelihoods(observed))

    def test_prefix_scores_stack_shape_validated(self, chains):
        chain = chains["non-skewed"]
        observed = chain.sample_trajectories(2, 6, np.random.default_rng(0))
        with pytest.raises(ValueError, match="transition_stack"):
            prefix_log_likelihood_scores(chain, observed, np.eye(10)[None])

    @pytest.mark.parametrize(
        "tracker_cls", [PrefixMLTracker, BayesianPosteriorTracker]
    )
    def test_track_batch_matches_track_under_a_stack(self, chains, tracker_cls):
        chain = chains["non-skewed"]
        horizon = 10
        stack = self._stack(chains, horizon)
        rng = np.random.default_rng(11)
        observed = chain.sample_trajectories(8, horizon, rng).reshape(2, 4, horizon)
        users = observed[:, 0, :]
        tracker = tracker_cls()
        batched = tracker.track_batch(
            chain,
            observed,
            users,
            spawn_generators(40, 2, key="track-batch"),
            transition_stack=stack,
        )
        scalar_rngs = spawn_generators(40, 2, key="track-batch")
        for run in range(2):
            single = tracker.track(
                chain,
                observed[run],
                users[run],
                scalar_rngs[run],
                transition_stack=stack,
            )
            assert np.array_equal(
                single.estimated_cells, batched[run].estimated_cells
            )
            assert np.allclose(single.posteriors, batched[run].posteriors)

    def test_stack_changes_the_tracking_decisions(self, chains):
        # Scoring under the true regime chain must be able to change the
        # per-slot decisions relative to the (wrong) static model.
        chain = chains["non-skewed"]
        horizon = 30
        stack = self._stack(chains, horizon)
        regime = chains["temporally-skewed"]
        rng = np.random.default_rng(13)
        observed = np.stack(
            [
                regime.sample_trajectory(horizon, rng)
                for _ in range(4)
            ]
        )
        tracker = PrefixMLTracker()
        with_stack = tracker.track(
            chain,
            observed,
            observed[0],
            np.random.default_rng(1),
            transition_stack=stack,
        )
        without = tracker.track(
            chain, observed, observed[0], np.random.default_rng(1)
        )
        assert not np.allclose(with_stack.posteriors, without.posteriors)
