"""Benchmarks of the multi-user fleet layer.

The headline number is the vectorised slot loop against the naive
per-user/per-service Python walk at paper scale (M = 50 users, T = 100
slots on a capacity-constrained 5x5 grid) — the two engines are
bit-identical, so the ratio is pure execution speed.  The suite also
tracks slot-loop throughput as the population grows and the cache-hit
latency of the registered ``fleet`` experiment.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models


@pytest.fixture(scope="module")
def fleet_chain():
    return paper_synthetic_models(25, seed=2017)["non-skewed"]


def _fleet_simulation(chain, n_users: int, horizon: int = 100) -> FleetSimulation:
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=8)
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(n_users=n_users, horizon=horizon, n_chaffs=1),
    )


@pytest.mark.parametrize("engine", ["batch", "loop"])
def test_bench_fleet_paper_scale(benchmark, fleet_chain, engine):
    """One fleet run at paper scale (M = 50, T = 100), both engines.

    Run with both engines so the vectorised-vs-naive speedup is visible
    in one benchmark table (the loop engine takes on the order of a
    second per round, so a single round keeps the smoke fast).
    """
    simulation = _fleet_simulation(fleet_chain, n_users=50)
    report = benchmark.pedantic(
        simulation.run, args=(0,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    assert report.n_users == 50
    assert report.horizon == 100


@pytest.mark.parametrize("n_users", [10, 25, 50])
def test_bench_fleet_throughput_vs_population(benchmark, fleet_chain, n_users):
    """Vectorised slot-loop throughput as the population grows."""
    simulation = _fleet_simulation(fleet_chain, n_users=n_users)
    report = benchmark.pedantic(
        simulation.run, args=(0,), rounds=1, iterations=1
    )
    assert report.n_users == n_users


def test_fleet_vectorized_beats_naive_loop(fleet_chain, bench_record):
    """The acceptance bar: batch >= 5x faster than the naive loop at M = 50.

    Both engines produce bit-identical reports (pinned by
    ``tests/test_fleet.py``), so this is a pure wall-clock comparison.
    The margin is large in practice (the loop walks 100 services through
    Python objects every slot); 5x keeps the assert robust on noisy CI.
    """
    simulation = _fleet_simulation(fleet_chain, n_users=50)
    simulation.run(0)  # warm-up: imports, hop matrices, allocator paths

    start = time.perf_counter()
    batch = simulation.run(0, engine="batch")
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loop = simulation.run(0, engine="loop")
    loop_seconds = time.perf_counter() - start

    assert np.array_equal(
        batch.observations.trajectories, loop.observations.trajectories
    )
    speedup = loop_seconds / batch_seconds
    bench_record("fleet")["slot_loop"] = {
        "batch_seconds": round(batch_seconds, 4),
        "loop_seconds": round(loop_seconds, 4),
        "speedup": round(speedup, 1),
    }
    print(
        f"\nfleet slot-loop M=50 T=100: batch {batch_seconds * 1e3:.1f} ms, "
        f"loop {loop_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_bench_fleet_experiment_cache_hit(benchmark, tmp_path):
    """A fleet cache hit must return the stored result in milliseconds."""
    from repro.experiments.registry import run_experiment
    from repro.sim.cache import ResultCache
    from repro.sim.config import FleetExperimentConfig

    config = FleetExperimentConfig(
        n_users=10,
        n_cells=10,
        site_capacity=4,
        horizon=20,
        n_runs=2,
        population_sweep=(5, 10),
        capacity_sweep=(2, 4),
    )
    cache = ResultCache(tmp_path)
    run_experiment("fleet", config, cache=cache)  # warm the cache

    def hit():
        return run_experiment("fleet", config, cache=cache)

    result = benchmark(hit)
    assert result.experiment_id == "fleet"
    assert cache.hits >= 1
