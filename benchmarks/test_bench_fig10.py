"""Benchmark regenerating Fig. 10: advanced eavesdropper on the taxi traces."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig10 import run_fig10

from conftest import print_series_table


def test_bench_fig10(benchmark, trace_config):
    """Top-K users, two chaffs each, against the strategy-aware eavesdropper."""
    result = benchmark.pedantic(
        run_fig10, args=(trace_config,), kwargs={"n_chaffs": 2}, rounds=1, iterations=1
    )
    print_series_table(result, max_rows=40)

    top_k = trace_config.top_k_users

    def mean_over_users(label: str) -> float:
        return float(
            np.mean([result.scalars[f"user{rank}/{label}"] for rank in range(1, top_k + 1)])
        )

    # Paper: the robust RML and ROO strategies substantially reduce the
    # tracking accuracy relative to their deterministic counterparts, which
    # are ineffective against a strategy-aware eavesdropper.
    assert mean_over_users("RML") <= mean_over_users("ML") + 0.05
    assert mean_over_users("ROO") <= mean_over_users("OO") + 0.05

    for value in result.scalars.values():
        assert 0.0 <= value <= 1.0

    benchmark.extra_info["per_user_bars"] = {
        key: round(value, 3) for key, value in sorted(result.scalars.items())
    }
