"""Benchmark regenerating Fig. 5: tracking accuracy of the basic eavesdropper."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5 import run_fig5

from conftest import print_series_table


def test_bench_fig5(benchmark, synthetic_config):
    """Per-slot tracking accuracy for IM/ML/OO/MO/CML across the four models."""
    result = benchmark.pedantic(
        run_fig5, args=(synthetic_config,), rounds=1, iterations=1
    )
    print_series_table(result, max_rows=40)

    # Paper finding (i): OO and MO drive the accuracy to ~0 over time while
    # IM and ML stay non-zero (shown here on the non-skewed model).
    group = "non-skewed"
    oo_late = np.mean(result.series(group, "OO (N = 2)").values[-10:])
    mo_late = np.mean(result.series(group, "MO (N = 2)").values[-10:])
    im_late = np.mean(result.series(group, "IM (N = 2)").values[-10:])
    ml_mean = result.series(group, "ML (N = 2)").mean_value()
    assert oo_late < 0.05
    assert mo_late < 0.05
    assert im_late > 0.3
    assert ml_mean > 0.02

    # Paper finding (ii): more skewed mobility -> higher tracking accuracy.
    im_plain = result.series("non-skewed", "IM (N = 2)").mean_value()
    im_skewed = result.series("spatially&temporally-skewed", "IM (N = 2)").mean_value()
    assert im_skewed > im_plain

    # Paper finding (iii): IM benefits from more chaffs, deterministic
    # strategies do not (their accuracy is unchanged by construction).
    for group in result.groups:
        assert (
            result.series(group, "IM (N = 10)").mean_value()
            < result.series(group, "IM (N = 2)").mean_value()
        )

    benchmark.extra_info["tracking_accuracy"] = {
        key: round(value, 3) for key, value in sorted(result.scalars.items())
    }
