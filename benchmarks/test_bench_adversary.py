"""Benchmarks of the adversary subsystem.

The acceptance bar: the vectorised masked crowd scoring must keep a
>= 5x edge over the naive per-decision loop reference at fleet scale
(M = 50 users, T = 100 slots, partial site coverage).  The suite also
tracks the learned-model fit throughput (censored-plane counting +
chain refits, the per-episode cost of a learning adversary) and the
cache-hit latency of the registered ``adversary`` experiment.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.adversary import (
    AdversaryDetector,
    LearnedKnowledge,
    OracleKnowledge,
    SiteCoverage,
)
from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.sim.cache import ResultCache
from repro.sim.config import AdversaryExperimentConfig


@pytest.fixture(scope="module")
def fleet_report():
    """One paper-scale fleet report (M = 50, T = 100) to score against."""
    chain = paper_synthetic_models(25, seed=2017)["non-skewed"]
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=8)
    simulation = FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(n_users=50, horizon=100, n_chaffs=1),
    )
    return chain, simulation.run(0)


def test_masked_crowd_batch_beats_naive_loop(fleet_report):
    """The acceptance bar: vectorised masked scoring >= 5x the loop at M=50.

    Both paths are bit-identical (pinned by ``tests/test_adversary.py``),
    so the ratio is pure execution speed of the masked kernels.
    """
    chain, report = fleet_report
    coverage = SiteCoverage(0.5, 7)
    fast = AdversaryDetector(OracleKnowledge(), coverage)
    slow = AdversaryDetector(OracleKnowledge(), coverage, loop_reference=True)
    report.evaluate(chain, fast)  # warm-up: imports, coverage cache

    start = time.perf_counter()
    vectorised = report.evaluate(chain, fast)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    looped = report.evaluate(chain, slow)
    slow_seconds = time.perf_counter() - start

    assert np.array_equal(vectorised.chosen_rows, looped.chosen_rows)
    speedup = slow_seconds / fast_seconds
    print(
        f"\nmasked crowd M=50 T=100 (50% coverage): "
        f"batch {fast_seconds * 1e3:.2f} ms, loop {slow_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_bench_masked_crowd_scoring(benchmark, fleet_report):
    """Vectorised masked crowd evaluation at fleet scale."""
    chain, report = fleet_report
    adversary = AdversaryDetector(OracleKnowledge(), SiteCoverage(0.5, 7))
    evaluation = benchmark(report.evaluate, chain, adversary)
    assert evaluation.chosen_rows.shape == (50,)


def test_bench_learned_model_fit_throughput(benchmark, fleet_report):
    """Learned-knowledge episode cost: censored counting + chain refit.

    One round = observe a full (N = 100, T = 100) plane and refit the
    scoring chain — the extra work a learning adversary pays per episode
    over the oracle.
    """
    chain, report = fleet_report
    plane = report.observations.trajectories
    knowledge = LearnedKnowledge()

    def one_episode():
        knowledge.observe(plane, chain.n_states)
        return knowledge.scoring_model(chain, None)

    model, stack = benchmark(one_episode)
    assert stack is None
    assert model.n_states == chain.n_states


def test_bench_adversary_experiment_cache_hit(benchmark, tmp_path_factory):
    """Cache-hit latency of the registered ``adversary`` experiment."""
    from repro.experiments.registry import run_experiment

    cache = ResultCache(tmp_path_factory.mktemp("adversary-cache"))
    config = AdversaryExperimentConfig(
        n_users=8,
        n_cells=9,
        site_capacity=4,
        horizon=16,
        n_runs=2,
        coverage_fractions=(0.3, 1.0),
        coalition_sizes=(1, 2),
    )
    run_experiment("adversary", config, cache=cache)  # populate
    result = benchmark(run_experiment, "adversary", config, cache=cache)
    assert result.experiment_id == "adversary"
    assert cache.hits >= 1
