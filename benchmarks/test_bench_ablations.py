"""Benchmarks for the ablation / extension experiments."""

from __future__ import annotations

from repro.experiments.ablations import (
    run_chaff_budget_sweep,
    run_cost_privacy_tradeoff,
    run_migration_policy_comparison,
)

from conftest import print_series_table


def test_bench_chaff_budget_sweep(benchmark, synthetic_config):
    """IM accuracy vs number of chaffs, simulated against Eq. (11)."""
    config = synthetic_config.scaled(n_runs=min(synthetic_config.n_runs, 100))
    result = benchmark.pedantic(
        run_chaff_budget_sweep,
        args=(config,),
        kwargs={"budgets": (2, 4, 6, 10)},
        rounds=1,
        iterations=1,
    )
    print_series_table(result, max_rows=30)
    for label in result.groups:
        simulated = result.series(label, "simulated").values
        analytic = result.series(label, "eq11").values
        # ~3 standard errors at the benchmark's 100-run budget; the gap
        # shrinks well below 0.05 at the paper's 1000 runs.
        assert all(abs(s - a) < 0.15 for s, a in zip(simulated, analytic, strict=True))
        assert simulated[0] >= simulated[-1] - 0.05  # more chaffs never hurt
    benchmark.extra_info["limits"] = {
        key: round(value, 3) for key, value in result.scalars.items()
    }


def test_bench_cost_privacy_tradeoff(benchmark, synthetic_config):
    """Tracking accuracy vs total MEC cost as the chaff budget grows."""
    result = benchmark.pedantic(
        run_cost_privacy_tradeoff,
        args=(synthetic_config,),
        kwargs={"chaff_counts": (0, 1, 2, 4), "n_runs": 10},
        rounds=1,
        iterations=1,
    )
    print_series_table(result)
    label = synthetic_config.mobility_models[0]
    costs = result.series(label, "total-cost").values
    accuracy = result.series(label, "tracking-accuracy").values
    assert costs == tuple(sorted(costs))  # cost grows with the chaff budget
    assert accuracy[-1] <= accuracy[0]  # privacy improves (or holds)
    benchmark.extra_info["privacy_gain_per_cost"] = round(
        result.scalars["privacy_gain_per_cost"], 5
    )


def test_bench_migration_policies(benchmark, synthetic_config):
    """Cost / co-location comparison of migration policies."""
    result = benchmark.pedantic(
        run_migration_policy_comparison,
        args=(synthetic_config,),
        kwargs={"n_runs": 10},
        rounds=1,
        iterations=1,
    )
    print_series_table(result)
    assert result.scalars["always-follow/colocation"] == 1.0
    assert result.scalars["never-migrate/colocation"] < 1.0
    benchmark.extra_info["policies"] = {
        key: round(value, 3) for key, value in result.scalars.items()
    }
