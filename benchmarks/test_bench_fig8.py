"""Benchmark regenerating Fig. 8: taxi-trace cell layout and steady state."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig8 import run_fig8

from conftest import print_series_table


def test_bench_fig8(benchmark, trace_config):
    """Voronoi cell layout + empirical steady-state distribution of the fleet."""
    result = benchmark.pedantic(
        run_fig8, args=(trace_config,), rounds=1, iterations=1
    )
    print_series_table(result)

    # The empirical mobility model must be strongly spatially skewed
    # (Fig. 8(b)): a handful of cells carry most of the probability mass.
    empirical = np.asarray(result.series("steady-state", "empirical-visits").values)
    n_cells = int(result.scalars["n_cells"])
    assert empirical.max() > 3.0 / n_cells
    top_10 = np.sort(empirical)[::-1][: max(1, n_cells // 10)].sum()
    assert top_10 > 0.3  # top 10% of cells hold >30% of the mass

    # The fitted model agrees with the raw visit histogram.
    fitted = np.asarray(result.series("steady-state", "fitted-model").values)
    assert np.corrcoef(empirical, fitted)[0, 1] > 0.7

    benchmark.extra_info["n_cells"] = n_cells
    benchmark.extra_info["n_nodes"] = int(result.scalars["n_nodes"])
    benchmark.extra_info["max_cell_probability"] = round(float(empirical.max()), 4)
