"""Benchmark regenerating Fig. 6: CDF of the log-likelihood difference c_t."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig6 import run_fig6

from conftest import print_series_table


def test_bench_fig6(benchmark, synthetic_config):
    """Empirical CDF of c_t under CML and MO for the four mobility models."""
    result = benchmark.pedantic(
        run_fig6, args=(synthetic_config,), rounds=1, iterations=1
    )
    print_series_table(result, max_rows=30)

    # The decay condition E[c_t] < 0 holds for all four models under CML
    # (Fig. 6 shows the mass of c_t is essentially below zero), which is
    # what makes the OO/CML accuracy decay in Fig. 5.
    for label in result.groups:
        assert result.scalars[f"{label}/CML/mean_ct"] < 0.05, label

    # CDFs are valid distribution functions.
    for series_list in result.groups.values():
        for series in series_list:
            values = np.asarray(series.values)
            assert np.all(np.diff(values) >= -1e-12)
            assert 0.0 <= values[0] and values[-1] <= 1.0 + 1e-12

    benchmark.extra_info["mean_ct"] = {
        key: round(value, 3) for key, value in sorted(result.scalars.items())
    }
