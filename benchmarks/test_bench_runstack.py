"""Benchmarks of the run-stacked fleet Monte-Carlo and the score cache.

The headline measurement runs the paper-scale fleet Monte-Carlo
(R = 100 episodes, M = 10 users, T = 200 slots on a 5x5 grid with ample
capacity) twice — once per episode, once with every episode of the
shard folded into a single pass of the slot kernel — and asserts the
stacked path is at least 5x faster *and* bit-identical, per run, to the
per-episode path.  Ample capacity matters: under contention the stacked
placement falls back to the serial greedy walk for the contending runs,
which is still correct but erodes the amortisation the benchmark pins.

Around the headline: a stack/engine/worker identity sweep at reduced
scale, the adversary coverage sweep with the score-component cache (hit
ratio asserted and recorded), and the IPC payload of a Monte-Carlo
shard task now that ``parallel_map`` ships the simulation through the
shared channel instead of pickling it into every task.

Every measured number lands in ``BENCH_runstack.json`` (written by
``conftest.pytest_sessionfinish``) so CI can archive and diff it.
"""

from __future__ import annotations

import pickle
import time
import tracemalloc

import numpy as np
import pytest

from repro.adversary import (
    AdversaryDetector,
    FullCoverage,
    ScoreComponentCache,
    SiteCoverage,
    make_knowledge,
)
from repro.adversary.monte_carlo import (
    run_adversary_monte_carlo,
    simulate_fleet_reports,
)
from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.mec.fleet import (
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models

#: The locked headline shape: paper-scale R, ample capacity (see module
#: docstring), a horizon long enough for the slot kernel to dominate.
N_RUNS = 100
N_USERS = 10
HORIZON = 200
CAPACITY = 30


@pytest.fixture(scope="module")
def chain25():
    return paper_synthetic_models(25, seed=2017)["non-skewed"]


def _simulation(
    chain, n_users: int = N_USERS, horizon: int = HORIZON
) -> FleetSimulation:
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=CAPACITY)
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=n_users, horizon=horizon, n_chaffs=1
        ),
    )


def _best_of(fn, trials: int = 3):
    """(best wall-clock seconds, last result) over ``trials`` calls."""
    best = float("inf")
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_statistics_identical(expected, got) -> None:
    for name in (
        "tracking_runs",
        "detection_runs",
        "cost_runs",
        "migrations_runs",
        "rejected_runs",
        "spilled_runs",
        "evicted_runs",
        "stranded_runs",
    ):
        assert np.array_equal(getattr(expected, name), getattr(got, name)), name


def test_bench_runstack_speedup(benchmark, chain25, runstack_record):
    """Stacked Monte-Carlo is >= 5x the per-episode path, bit-identically.

    Both paths run the same R = 100 episodes from the same seed; the
    stacked one advances one (S*N)-wide slot kernel and scores one
    (S*M, N, T) detector batch instead of R of each.  Best-of-3 timing
    keeps scheduling noise out of the ratio.
    """
    detector = MaximumLikelihoodDetector()

    def per_episode():
        return run_fleet_monte_carlo(
            _simulation(chain25),
            n_runs=N_RUNS,
            seed=2017,
            detector=detector,
            run_stack=1,
        )

    def stacked():
        return run_fleet_monte_carlo(
            _simulation(chain25),
            n_runs=N_RUNS,
            seed=2017,
            detector=detector,
            run_stack=N_RUNS,
        )

    stacked()  # warm-up: first call pays the allocator and import costs
    stacked_seconds, stacked_stats = _best_of(stacked)
    episode_seconds, episode_stats = _best_of(per_episode)
    _assert_statistics_identical(episode_stats, stacked_stats)

    speedup = episode_seconds / stacked_seconds
    assert speedup >= 5.0, (
        f"stacked path is only {speedup:.2f}x the per-episode path "
        f"({stacked_seconds:.2f}s vs {episode_seconds:.2f}s)"
    )

    tracemalloc.start()
    try:
        benchmark.pedantic(stacked, rounds=1, iterations=1)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    numbers = {
        "runs": N_RUNS,
        "users": N_USERS,
        "horizon": HORIZON,
        "per_episode_seconds": round(episode_seconds, 3),
        "stacked_seconds": round(stacked_seconds, 3),
        "speedup": round(speedup, 2),
        "stacked_peak_heap_mb": round(peak / 1e6, 1),
    }
    benchmark.extra_info["runstack"] = numbers
    runstack_record["speedup"] = numbers
    print(
        f"\nrun-stacked: {episode_seconds:.2f}s per-episode vs "
        f"{stacked_seconds:.2f}s stacked = {speedup:.2f}x "
        f"(peak heap {peak / 1e6:.1f} MB)"
    )


@pytest.mark.parametrize("run_stack", [1, 3, 25])
@pytest.mark.parametrize("engine", ["batch", "stream"])
@pytest.mark.parametrize("workers", [1, 2])
def test_bench_runstack_identity_sweep(chain25, run_stack, engine, workers):
    """Every stack/engine/worker combo reproduces run_stack=1 bit-for-bit.

    Reduced scale (R = 25, T = 60) so the full grid stays fast; the
    contract is the same one the headline benchmark and the tier-1 suite
    pin at their own scales.
    """
    reference = run_fleet_monte_carlo(
        _simulation(chain25, horizon=60),
        n_runs=25,
        seed=7,
        detector=MaximumLikelihoodDetector(),
        workers=1,
        run_stack=1,
    )
    combo = run_fleet_monte_carlo(
        _simulation(chain25, horizon=60),
        n_runs=25,
        seed=7,
        detector=MaximumLikelihoodDetector(),
        workers=workers,
        engine=engine,
        chunk_slots=17,
        regions=2,
        run_stack=run_stack,
    )
    _assert_statistics_identical(reference, combo)


def test_bench_score_cache_coverage_sweep(benchmark, chain25, runstack_record):
    """The coverage sweep reuses cached score components, bit-identically.

    One report set, two knowledge levels x four coverage views: every
    point after the first re-gathers from the cached stationary and
    step tables instead of rebuilding them, so the sweep's hit ratio
    must be substantial — and the scores must not move by a bit.
    """
    simulation = _simulation(chain25, horizon=100)
    reports = simulate_fleet_reports(simulation, n_runs=10, seed=5)
    coverage_seed = np.random.SeedSequence(11)
    grid = [
        FullCoverage(),
        SiteCoverage(0.8, coverage_seed),
        SiteCoverage(0.5, coverage_seed),
        SiteCoverage(0.2, coverage_seed),
    ]

    def sweep(cache):
        points = []
        for level in ("oracle", "stale"):
            for coverage in grid:
                adversary = AdversaryDetector(
                    make_knowledge(level), coverage, score_cache=cache
                )
                statistics = run_adversary_monte_carlo(
                    simulation,
                    adversary,
                    n_runs=len(reports),
                    seed=0,
                    reports=reports,
                )
                points.append(
                    (statistics.detection_runs, statistics.tracking_runs)
                )
        return points

    plain = sweep(None)
    cache = ScoreComponentCache()
    start = time.perf_counter()
    cached = benchmark.pedantic(sweep, args=(cache,), rounds=1, iterations=1)
    cached_seconds = time.perf_counter() - start
    for (d_a, t_a), (d_b, t_b) in zip(plain, cached, strict=True):
        assert np.array_equal(d_a, d_b)
        assert np.array_equal(t_a, t_b)
    stats = cache.stats()
    assert stats["hits"] > 0
    assert stats["hit_ratio"] >= 0.5, stats
    numbers = {
        "hit_ratio": round(stats["hit_ratio"], 3),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "sweep_seconds": round(cached_seconds, 3),
    }
    benchmark.extra_info["score_cache"] = numbers
    runstack_record["score_cache"] = numbers
    print(f"\nscore cache: {stats}")


def test_bench_shard_task_payload(chain25, runstack_record):
    """Shard tasks no longer pickle the simulation; the shared channel does.

    The old task tuples carried the full FleetSimulation (chain, hop
    matrix, strategy, cost model) into every worker task; the new ones
    carry only the detector, seed and execution knobs, and the
    simulation ships once per worker.  Pin the payload reduction.
    """
    simulation = _simulation(chain25)
    detector = MaximumLikelihoodDetector()
    seed = np.random.SeedSequence(2017)
    slim_task = (detector, seed, 0, 25, "batch", 64, 1, 25)
    old_task = (simulation,) + slim_task
    slim_bytes = len(pickle.dumps(slim_task))
    old_bytes = len(pickle.dumps(old_task))
    assert slim_bytes * 10 <= old_bytes, (slim_bytes, old_bytes)
    numbers = {
        "task_bytes": slim_bytes,
        "task_bytes_with_simulation": old_bytes,
        "reduction": round(old_bytes / slim_bytes, 1),
    }
    runstack_record["ipc_payload"] = numbers
    print(f"\nshard task payload: {numbers}")
