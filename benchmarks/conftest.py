"""Shared configuration for the benchmark harness.

Every paper table/figure has a benchmark that regenerates its data series.
The benchmarks run the same experiment code as the full-scale CLI but at a
reduced Monte-Carlo budget so the whole harness finishes in minutes; the
``--runs-scale`` option restores the paper-scale budget when desired.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import SyntheticExperimentConfig, TraceExperimentConfig

#: Filled by the run-stacked benchmarks, flushed to ``BENCH_runstack.json``
#: at session end — the machine-readable record CI archives (speedup over
#: the per-episode path, peak heap, score-cache hit ratio, IPC payloads).
_RUNSTACK_RECORD: dict[str, object] = {}


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full Monte-Carlo budget",
    )


@pytest.fixture(scope="session")
def runstack_record() -> dict[str, object]:
    """The mutable record the run-stacked benchmarks write their numbers to."""
    return _RUNSTACK_RECORD


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if _RUNSTACK_RECORD:
        path = Path(__file__).resolve().parent.parent / "BENCH_runstack.json"
        path.write_text(
            json.dumps(_RUNSTACK_RECORD, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture(scope="session")
def paper_scale(request: pytest.FixtureRequest) -> bool:
    """Whether to run at the paper's full scale (1000 runs, 174 nodes...)."""
    return bool(request.config.getoption("--paper-scale"))


@pytest.fixture(scope="session")
def synthetic_config(paper_scale: bool) -> SyntheticExperimentConfig:
    """Synthetic-experiment config: paper scale or benchmark scale."""
    if paper_scale:
        return SyntheticExperimentConfig()
    return SyntheticExperimentConfig(n_runs=60, horizon=100)


@pytest.fixture(scope="session")
def trace_config(paper_scale: bool) -> TraceExperimentConfig:
    """Trace-experiment config: paper scale or benchmark scale."""
    if paper_scale:
        return TraceExperimentConfig()
    return TraceExperimentConfig(n_nodes=100, n_towers=150, horizon=60)


def print_series_table(result, max_rows: int = 12) -> None:
    """Print the series of an ExperimentResult as compact rows.

    This is the "same rows/series the paper reports" output of the
    benchmark harness; pytest shows it with ``-s``.
    """
    print()
    for line in result.summary_lines()[:max_rows]:
        print(line)
