"""Shared configuration for the benchmark harness.

Every paper table/figure has a benchmark that regenerates its data series.
The benchmarks run the same experiment code as the full-scale CLI but at a
reduced Monte-Carlo budget so the whole harness finishes in minutes; the
``--paper-scale`` option restores the paper-scale budget when desired.

Measured numbers flow through one channel: a suite's tests write plain
mappings into ``bench_record("<suite>")`` and ``pytest_sessionfinish``
flushes each suite to ``BENCH_<suite>.json`` in the telemetry metrics
schema (``repro-telemetry/1`` — integers become counters, floats become
gauges, nested mappings flatten with ``/``), so CI archives the CLI's
``--metrics-out`` files and the benchmark records in one format.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

import pytest

from repro.sim.config import SyntheticExperimentConfig, TraceExperimentConfig
from repro.telemetry import Recorder, default_clock, write_metrics

#: Per-suite benchmark records; each non-empty suite flushes to
#: ``BENCH_<suite>.json`` at session end.
_SUITE_RECORDS: dict[str, dict[str, object]] = {}


def _suite_record(suite: str) -> dict[str, object]:
    return _SUITE_RECORDS.setdefault(suite, {})


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full Monte-Carlo budget",
    )


@pytest.fixture(scope="session")
def bench_record():
    """Factory: ``bench_record("core")["viterbi"] = {...}`` records a number.

    Scalars and (nested) mappings both land on the telemetry metrics
    schema when the suite's ``BENCH_<suite>.json`` is written.
    """
    return _suite_record


@pytest.fixture(scope="session")
def runstack_record() -> dict[str, object]:
    """The mutable record the run-stacked benchmarks write their numbers to."""
    return _suite_record("runstack")


def _record_value(recorder: Recorder, name: str, value: object) -> None:
    if isinstance(value, Mapping):
        recorder.record_stats(name, value)
    elif isinstance(value, bool):
        recorder.gauge(name, float(value))
    elif isinstance(value, int):
        recorder.counter(name, value)
    elif isinstance(value, float):
        recorder.gauge(name, value)


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    root = Path(__file__).resolve().parent.parent
    for suite in sorted(_SUITE_RECORDS):
        record = _SUITE_RECORDS[suite]
        if not record:
            continue
        recorder = Recorder(clock=default_clock)
        for name in sorted(record):
            _record_value(recorder, name, record[name])
        write_metrics(recorder, root / f"BENCH_{suite}.json")


@pytest.fixture(scope="session")
def paper_scale(request: pytest.FixtureRequest) -> bool:
    """Whether to run at the paper's full scale (1000 runs, 174 nodes...)."""
    return bool(request.config.getoption("--paper-scale"))


@pytest.fixture(scope="session")
def synthetic_config(paper_scale: bool) -> SyntheticExperimentConfig:
    """Synthetic-experiment config: paper scale or benchmark scale."""
    if paper_scale:
        return SyntheticExperimentConfig()
    return SyntheticExperimentConfig(n_runs=60, horizon=100)


@pytest.fixture(scope="session")
def trace_config(paper_scale: bool) -> TraceExperimentConfig:
    """Trace-experiment config: paper scale or benchmark scale."""
    if paper_scale:
        return TraceExperimentConfig()
    return TraceExperimentConfig(n_nodes=100, n_towers=150, horizon=60)


def print_series_table(result, max_rows: int = 12) -> None:
    """Print the series of an ExperimentResult as compact rows.

    This is the "same rows/series the paper reports" output of the
    benchmark harness; pytest shows it with ``-s``.
    """
    print()
    for line in result.summary_lines()[:max_rows]:
        print(line)
