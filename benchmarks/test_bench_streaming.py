"""Benchmarks of the streaming fleet engine: memory flatness, throughput.

The streaming engine's contract is *bounded memory in the horizon*: it
holds one ``(N, chunk_slots)`` plane plus O(M)-sized carry state, so the
Python-heap peak of an episode must not grow with ``T``.  The headline
measurement runs a city-scale fleet (M = 10^4 users, N = 2x10^4
services) at T = 64, 512 and 1000 and asserts the tracemalloc peak stays
within ~1.2x of the single-chunk footprint — while the monolithic batch
engine's peak at the same scale grows linearly in ``T`` (measured here
at T = 512 for the contrast).  tracemalloc does not count the episode
store's disk-backed memmap pages; that is the point — they are the part
of the episode that no longer lives on the heap.

The second measurement is throughput parity at M = 500 on a contended
deployment: the slot kernel dominates there, so streaming's spill
overhead must stay within noise of the batch engine.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.streaming import StreamingFleetEngine
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models


@pytest.fixture(scope="module")
def stream_chain():
    return paper_synthetic_models(25, seed=2017)["non-skewed"]


def _simulation(chain, n_users: int, horizon: int, capacity: int) -> FleetSimulation:
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=capacity)
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=n_users, horizon=horizon, n_chaffs=1
        ),
    )


def _streaming_peak(chain, n_users: int, horizon: int, capacity: int) -> int:
    """Python-heap peak (bytes) of one full streamed episode."""
    engine = StreamingFleetEngine(
        _simulation(chain, n_users, horizon, capacity), chunk_slots=64
    )
    tracemalloc.start()
    try:
        report = engine.run(0)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    report.close()
    return peak


def test_bench_streaming_memory_flat_in_horizon(benchmark, stream_chain, bench_record):
    """Peak heap of a streamed M = 10^4 episode is independent of T.

    T = 64 is a single chunk — the floor of what any streamed episode
    can hold.  T = 512 and T = 1000 must stay within ~1.2x of it: the
    chunk buffers are T-independent and the block sampler caps its
    working set, so nothing on the heap scales with the horizon.  The
    batch engine at the same scale materialises the full planes and
    per-slot ledgers, growing linearly in T.
    """
    n_users, capacity = 10_000, 3200
    peak_64 = _streaming_peak(stream_chain, n_users, 64, capacity)
    peak_512 = _streaming_peak(stream_chain, n_users, 512, capacity)
    peak_1000 = benchmark.pedantic(
        _streaming_peak,
        args=(stream_chain, n_users, 1000, capacity),
        rounds=1,
        iterations=1,
    )
    assert peak_512 <= 1.25 * peak_64
    assert peak_1000 <= 1.25 * peak_64

    # The monolithic contrast: same fleet, full planes on the heap.
    tracemalloc.start()
    try:
        _simulation(stream_chain, n_users, 512, capacity).run(0, engine="batch")
        _, batch_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak_512 <= batch_peak / 5
    peak_mb = {
        "stream_t64": round(peak_64 / 1e6, 1),
        "stream_t512": round(peak_512 / 1e6, 1),
        "stream_t1000": round(peak_1000 / 1e6, 1),
        "batch_t512": round(batch_peak / 1e6, 1),
    }
    benchmark.extra_info["peak_mb"] = peak_mb
    bench_record("streaming")["peak_mb"] = peak_mb
    print(
        f"\nstream peaks MB: T=64 {peak_64 / 1e6:.1f}, "
        f"T=512 {peak_512 / 1e6:.1f}, T=1000 {peak_1000 / 1e6:.1f}; "
        f"batch T=512 {batch_peak / 1e6:.1f}"
    )


def test_bench_streaming_throughput_m500(benchmark, stream_chain, bench_record):
    """Streaming stays at batch throughput on a contended M = 500 fleet.

    Capacity 40 x 25 cells exactly fits the N = 1000 services, so the
    placement walk dominates every slot — the regime where the engines
    do identical work and spilling chunks must cost nothing measurable.
    """
    n_users, horizon, capacity = 500, 128, 40

    def batch_run():
        return _simulation(stream_chain, n_users, horizon, capacity).run(
            0, engine="batch"
        )

    def stream_run():
        report = StreamingFleetEngine(
            _simulation(stream_chain, n_users, horizon, capacity),
            chunk_slots=64,
        ).run(0)
        report.close()

    start = time.perf_counter()
    batch_run()
    batch_seconds = time.perf_counter() - start
    start = time.perf_counter()
    benchmark.pedantic(stream_run, rounds=1, iterations=1)
    stream_seconds = time.perf_counter() - start
    # Parity within scheduling noise; streaming is regularly faster once
    # the batch engine's full-plane materialisation enters the picture.
    assert stream_seconds <= 1.5 * batch_seconds
    seconds = {
        "batch": round(batch_seconds, 3),
        "stream": round(stream_seconds, 3),
        "stream_over_batch": round(stream_seconds / batch_seconds, 2),
    }
    benchmark.extra_info["seconds"] = seconds
    bench_record("streaming")["throughput_m500"] = seconds
