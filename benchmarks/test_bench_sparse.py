"""Dense-vs-sparse crossover benchmarks for the Markov kernels.

The sparse backend exists for city-scale state spaces: on a grid of
``L`` cells the chain has ~5 nonzeros per row, so CSR kernels cost
``O(T nnz)`` where dense costs ``O(T L^2)``.  These benchmarks time the
four hot kernels — batch sampling, trajectory scoring, the Viterbi solve
and the stationary solve — at ``L = 10, 10^2, 10^3, 10^4``.  Dense
numbers stop at ``10^3``: a dense ``10^4 x 10^4`` transition matrix is
800 MB before a single kernel runs, which is exactly the point.

``test_sparse_crossover_at_thousand_cells`` asserts the headline claim
(sparse at least 5x faster end to end at ``L = 10^3``), so a kernel
regression that erases the crossover fails CI rather than only shifting
a chart.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.trellis import most_likely_trajectory
from repro.mobility import (
    GridTopology,
    SparseMarkovChain,
    grid_random_walk,
    stationary_distribution,
)

#: (rows, cols) grid factorisations of the swept state-space sizes.
GRID_SIZES = {10: (2, 5), 100: (10, 10), 1_000: (25, 40), 10_000: (100, 100)}
#: Largest L at which the dense baseline is still benchmarked.
DENSE_LIMIT = 1_000

_RUNS = 32
_HORIZON = 64


def _grid_pair(n_cells: int):
    """The grid walk at ``n_cells`` as ``(dense | None, sparse)`` chains."""
    topology = GridTopology(*GRID_SIZES[n_cells])
    sparse = grid_random_walk(topology, backend="sparse")
    dense = grid_random_walk(topology) if n_cells <= DENSE_LIMIT else None
    return dense, sparse


@pytest.fixture(scope="module", params=sorted(GRID_SIZES), ids=lambda n: f"L={n}")
def grid_pair(request):
    return request.param, *_grid_pair(request.param)


def _sample(chain):
    return chain.sample_trajectories(_RUNS, _HORIZON, np.random.default_rng(0))


def _score(chain, batch):
    return chain.log_likelihoods(batch)


def _viterbi(chain):
    # Memoised trellis structure is part of what is being measured: drop it.
    chain.__dict__.pop("_trellis_predecessors", None)
    return most_likely_trajectory(chain, _HORIZON)


def test_bench_sampling_dense(benchmark, grid_pair):
    n_cells, dense, _ = grid_pair
    if dense is None:
        pytest.skip(f"dense baseline not built above L = {DENSE_LIMIT}")
    assert benchmark(_sample, dense).shape == (_RUNS, _HORIZON)


def test_bench_sampling_sparse(benchmark, grid_pair):
    _, _, sparse = grid_pair
    assert benchmark(_sample, sparse).shape == (_RUNS, _HORIZON)


def test_bench_scoring_dense(benchmark, grid_pair):
    n_cells, dense, _ = grid_pair
    if dense is None:
        pytest.skip(f"dense baseline not built above L = {DENSE_LIMIT}")
    batch = _sample(dense)
    assert benchmark(_score, dense, batch).shape == (_RUNS,)


def test_bench_scoring_sparse(benchmark, grid_pair):
    _, _, sparse = grid_pair
    batch = _sample(sparse)
    assert benchmark(_score, sparse, batch).shape == (_RUNS,)


def test_bench_viterbi_dense(benchmark, grid_pair):
    n_cells, dense, _ = grid_pair
    if dense is None:
        pytest.skip(f"dense baseline not built above L = {DENSE_LIMIT}")
    assert benchmark(_viterbi, dense).shape == (_HORIZON,)


def test_bench_viterbi_sparse(benchmark, grid_pair):
    _, _, sparse = grid_pair
    assert benchmark(_viterbi, sparse).shape == (_HORIZON,)


def test_bench_stationary_dense(benchmark, grid_pair):
    n_cells, dense, _ = grid_pair
    if dense is None:
        pytest.skip(f"dense baseline not built above L = {DENSE_LIMIT}")
    pi = benchmark(stationary_distribution, dense.transition_matrix)
    assert pi.shape == (n_cells,)


def test_bench_stationary_sparse(benchmark, grid_pair):
    n_cells, _, sparse = grid_pair
    pi = benchmark(
        stationary_distribution, sparse.transition_matrix, method="power"
    )
    assert pi.shape == (n_cells,)


def _kernel_sweep_seconds(chain) -> float:
    """One pass over the three simulation kernels, wall-clock seconds."""
    start = time.perf_counter()
    batch = _sample(chain)
    _score(chain, batch)
    _viterbi(chain)
    return time.perf_counter() - start


def test_sparse_crossover_at_thousand_cells():
    """The headline guarantee: sparse wins >= 5x at L = 10^3.

    Measured over the simulation kernels (sampling + scoring + Viterbi)
    with a warm-up pass each, best of three, so one scheduler hiccup
    cannot fail the assertion.
    """
    dense, sparse = _grid_pair(1_000)
    _kernel_sweep_seconds(dense)  # warm-up: caches, allocator
    _kernel_sweep_seconds(sparse)
    dense_s = min(_kernel_sweep_seconds(dense) for _ in range(3))
    sparse_s = min(_kernel_sweep_seconds(sparse) for _ in range(3))
    assert sparse_s * 5.0 <= dense_s, (
        f"sparse kernels took {sparse_s:.4f}s vs dense {dense_s:.4f}s at "
        f"L=1000 (speed-up {dense_s / sparse_s:.1f}x < 5x)"
    )


def test_city_scale_runs_without_dense_arrays():
    """L = 10^4 end to end: construct, sample, score, solve — all sparse."""
    _, sparse = _grid_pair(10_000)
    assert isinstance(sparse, SparseMarkovChain)
    batch = _sample(sparse)
    scores = _score(sparse, batch)
    assert np.all(np.isfinite(scores))
    path = most_likely_trajectory(sparse, 20, top_k=4)
    assert path.shape == (20,)
    with pytest.raises(ValueError):
        _ = sparse.log_transition_matrix  # never densify 800 MB silently
