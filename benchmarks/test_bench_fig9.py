"""Benchmark regenerating Fig. 9: basic eavesdropper on the taxi traces."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig9 import run_fig9

from conftest import print_series_table


def test_bench_fig9(benchmark, trace_config):
    """Per-user accuracy without chaffs and top-K users with a single chaff."""
    result = benchmark.pedantic(run_fig9, args=(trace_config,), rounds=1, iterations=1)
    print_series_table(result, max_rows=40)

    # Panel (a): some users are tracked far above the 1/N baseline.
    baseline = result.scalars["baseline_1_over_N"]
    assert result.scalars["max_unprotected_accuracy"] > 10 * baseline
    assert result.scalars["n_users_above_10x_baseline"] >= 1

    # Panel (b): IM cannot help the top users, while ML / OO reduce their
    # tracking accuracy (never increase it).
    top_k = trace_config.top_k_users
    ml_or_oo_helped = 0
    for rank in range(1, top_k + 1):
        no_chaff = result.scalars[f"user{rank}/no chaff"]
        assert result.scalars[f"user{rank}/IM"] >= no_chaff - 0.1
        assert result.scalars[f"user{rank}/ML"] <= no_chaff + 1e-9
        assert result.scalars[f"user{rank}/OO"] <= no_chaff + 1e-9
        if (
            result.scalars[f"user{rank}/ML"] < no_chaff - 0.05
            or result.scalars[f"user{rank}/OO"] < no_chaff - 0.05
        ):
            ml_or_oo_helped += 1
    assert ml_or_oo_helped >= 1

    benchmark.extra_info["per_user_bars"] = {
        key: round(value, 3)
        for key, value in sorted(result.scalars.items())
        if key.startswith("user")
    }
