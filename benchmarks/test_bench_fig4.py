"""Benchmark regenerating Fig. 4 and the temporal-skewness (KL) table."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig4 import run_fig4

from conftest import print_series_table


def test_bench_fig4(benchmark, synthetic_config):
    """Steady-state distributions + KL skewness of the four mobility models."""
    result = benchmark.pedantic(
        run_fig4, args=(synthetic_config,), rounds=3, iterations=1
    )
    print_series_table(result)
    # Paper: models (c) and (d) have KL distances ~8.2 / ~8.5, an order of
    # magnitude above models (a) and (b) (~0.3-0.45).
    assert 6.0 < result.scalars["kl/temporally-skewed"] < 10.0
    assert 6.0 < result.scalars["kl/spatially&temporally-skewed"] < 10.0
    assert result.scalars["kl/non-skewed"] < 1.0
    assert result.scalars["kl/spatially-skewed"] < 1.0
    for label in result.groups:
        assert np.isclose(sum(result.series(label, "steady-state").values), 1.0)
    benchmark.extra_info["kl_distances"] = {
        label: round(result.scalars[f"kl/{label}"], 2) for label in result.groups
    }
