"""Benchmark regenerating Fig. 7: the advanced (strategy-aware) eavesdropper."""

from __future__ import annotations

from repro.experiments.fig7 import run_fig7

from conftest import print_series_table


def test_bench_fig7(benchmark, synthetic_config):
    """IM vs the randomised robust strategies (RML/ROO/RMO) with N = 10."""
    config = synthetic_config.scaled(
        n_runs=min(synthetic_config.n_runs, 200), horizon=synthetic_config.horizon
    )
    result = benchmark.pedantic(
        run_fig7, args=(config,), kwargs={"n_services": 10}, rounds=1, iterations=1
    )
    print_series_table(result, max_rows=30)

    # Paper: the robust strategies prevent the chaffs from being recognised
    # and mimic their deterministic counterparts' performance; in particular
    # ROO/RML protect a non-skewed user at least as well as IM does.
    group = "non-skewed"
    im = result.scalars[f"{group}/IM/tracking"]
    assert result.scalars[f"{group}/ROO/tracking"] <= im + 0.05
    assert result.scalars[f"{group}/RML/tracking"] <= im + 0.15

    # All reported values are probabilities.
    for value in result.scalars.values():
        assert 0.0 <= value <= 1.0

    benchmark.extra_info["tracking_accuracy"] = {
        key: round(value, 3) for key, value in sorted(result.scalars.items())
    }
