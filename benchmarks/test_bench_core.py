"""Micro-benchmarks of the core algorithms.

These measure the algorithmic building blocks the paper analyses:
the ML-trajectory Viterbi solve (O(T L^2)), the OO dynamic program
(O(i* T L^2)), the myopic online controller and the ML detector.  They are
regular pytest-benchmark timings (multiple rounds) rather than one-shot
experiment regenerations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy, solve_optimal_offline
from repro.core.trellis import most_likely_trajectory
from repro.mobility.models import paper_synthetic_models, random_mobility_model
from repro.sim.monte_carlo import MonteCarloRunner


@pytest.fixture(scope="module")
def chain_small():
    return paper_synthetic_models(10)["non-skewed"]


@pytest.fixture(scope="module")
def chain_large():
    return random_mobility_model(100, rng=np.random.default_rng(0))


def _mean_seconds(benchmark) -> float | None:
    """Mean wall-clock seconds of a completed benchmark, if it timed."""
    stats = getattr(benchmark, "stats", None)
    return float(stats.stats.mean) if stats is not None else None


def test_bench_viterbi_small(benchmark, chain_small, bench_record):
    """Most likely trajectory, L = 10, T = 100."""
    trajectory = benchmark(most_likely_trajectory, chain_small, 100)
    assert trajectory.shape == (100,)
    mean = _mean_seconds(benchmark)
    if mean is not None:
        bench_record("core")["viterbi_small"] = {"mean_s": mean}


def test_bench_viterbi_large(benchmark, chain_large, bench_record):
    """Most likely trajectory, L = 100, T = 100."""
    trajectory = benchmark(most_likely_trajectory, chain_large, 100)
    assert trajectory.shape == (100,)
    mean = _mean_seconds(benchmark)
    if mean is not None:
        bench_record("core")["viterbi_large"] = {"mean_s": mean}


def test_bench_optimal_offline_small(benchmark, chain_small):
    """OO dynamic program, L = 10, T = 100."""
    rng = np.random.default_rng(1)
    user = chain_small.sample_trajectory(100, rng)
    result = benchmark(solve_optimal_offline, chain_small, user)
    assert result.chaff_cost <= result.user_cost + 1e-6


def test_bench_optimal_offline_large(benchmark, chain_large):
    """OO dynamic program, L = 100, T = 100 (trace-driven scale)."""
    rng = np.random.default_rng(2)
    user = chain_large.sample_trajectory(100, rng)
    result = benchmark(solve_optimal_offline, chain_large, user)
    assert result.chaff_cost <= result.user_cost + 1e-6


def test_bench_myopic_online(benchmark, chain_small):
    """Myopic online controller over T = 100 slots."""
    rng = np.random.default_rng(3)
    user = chain_small.sample_trajectory(100, rng)
    strategy = get_strategy("MO")

    def run():
        return strategy.generate(chain_small, user, 1, np.random.default_rng(0))

    chaffs = benchmark(run)
    assert chaffs.shape == (1, 100)


def test_bench_ml_detector_many_trajectories(benchmark, chain_large):
    """ML detection over 200 trajectories of length 100 (fleet scale)."""
    rng = np.random.default_rng(4)
    trajectories = chain_large.sample_trajectories(200, 100, rng)
    detector = MaximumLikelihoodDetector()

    def run():
        return detector.detect(chain_large, trajectories, np.random.default_rng(0))

    outcome = benchmark(run)
    assert 0 <= outcome.chosen_index < 200


def test_bench_trajectory_sampling(benchmark, chain_small):
    """Sampling a 1000-slot trajectory from the mobility model."""
    rng = np.random.default_rng(5)
    trajectory = benchmark(chain_small.sample_trajectory, 1000, rng)
    assert trajectory.shape == (1000,)


def _paper_scale_monte_carlo(chain, engine: str, workers: int = 1):
    """One full paper-scale point: IM (N = 2), 1000 runs, T = 100."""
    game = PrivacyGame(
        chain, get_strategy("IM"), MaximumLikelihoodDetector(), n_services=2
    )
    runner = MonteCarloRunner(n_runs=1000, seed=0, engine=engine, workers=workers)
    return runner.run(game, horizon=100)


@pytest.mark.parametrize("engine", ["batch", "loop"])
def test_bench_monte_carlo_paper_scale(benchmark, chain_small, engine, bench_record):
    """Full Monte-Carlo point at paper scale (R = 1000, T = 100, L = 10).

    Run with both engines so the batch-vs-loop speedup is visible in one
    benchmark table; a single round each keeps the suite fast (the looped
    engine takes on the order of a second per round).
    """
    stats = benchmark.pedantic(
        _paper_scale_monte_carlo, args=(chain_small, engine), rounds=1, iterations=1
    )
    assert stats.n_episodes == 1000
    assert stats.horizon == 100
    mean = _mean_seconds(benchmark)
    if mean is not None:
        bench_record("core")[f"monte_carlo_{engine}"] = {"mean_s": mean}


def _paper_scale_sweep(chain, workers: int):
    """One full model group of Fig. 5 (all six series) at paper scale."""
    from repro.sim.runner import sweep_strategies

    specs = {
        "IM (N = 2)": ("IM", 2),
        "ML (N = 2)": ("ML", 2),
        "OO (N = 2)": ("OO", 2),
        "MO (N = 2)": ("MO", 2),
        "CML (N = 2)": ("CML", 2),
        "IM (N = 10)": ("IM", 10),
    }
    return sweep_strategies(
        chain,
        MaximumLikelihoodDetector(),
        specs,
        horizon=100,
        n_runs=1000,
        seed=0,
        workers=workers,
    )


@pytest.mark.parametrize("workers", [1, 4])
def test_bench_sweep_serial_vs_parallel(benchmark, chain_small, workers):
    """Serial vs process-pool execution of a paper-scale figure sweep.

    The parallel layer is bit-identical to serial (pinned by
    ``tests/test_parallel_engine.py``), so this benchmark isolates the
    wall-clock effect of mapping the six independent series over a pool.
    The speedup tracks the machine's core count; on a single-core runner
    the pooled timing only shows the (small) process overhead.
    """
    sweep = benchmark.pedantic(
        _paper_scale_sweep, args=(chain_small, workers), rounds=1, iterations=1
    )
    assert all(stats.n_episodes == 1000 for stats in sweep.statistics.values())


def test_bench_experiment_cache_hit(benchmark, chain_small, tmp_path):
    """A cache hit must return an ExperimentResult in milliseconds."""
    from repro.experiments.registry import run_experiment
    from repro.sim.cache import ResultCache
    from repro.sim.config import SyntheticExperimentConfig

    config = SyntheticExperimentConfig(n_runs=60, horizon=60)
    cache = ResultCache(tmp_path)
    run_experiment("fig5", config, cache=cache)  # warm the cache

    def hit():
        return run_experiment("fig5", config, cache=cache)

    result = benchmark(hit)
    assert result.experiment_id == "fig5"
    assert cache.hits >= 1
