"""Benchmarks of the dynamic-world fleet layer.

The acceptance bar: the masked batch kernel must keep its >= 5x edge over
the naive loop reference at paper scale (M = 50, T = 100) *with an active
timeline* — regime switches, failures and churn all biting.  The suite
also tracks the cache-hit latency of the registered ``dynamic``
experiment.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.world import dynamic_timeline


@pytest.fixture(scope="module")
def dynamic_simulation():
    chains = paper_synthetic_models(25, seed=2017)
    timeline = dynamic_timeline(
        horizon=100,
        n_cells=25,
        n_users=50,
        seed=2017,
        regime_chains=(chains["temporally-skewed"],),
        regime_period=25,
        failure_rate=0.05,
        churn_rate=0.2,
    )
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=8)
    return FleetSimulation(
        topology,
        chains["non-skewed"],
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(n_users=50, horizon=100, n_chaffs=1),
        timeline=timeline,
    )


@pytest.mark.parametrize("engine", ["batch", "loop"])
def test_bench_dynamic_fleet_paper_scale(benchmark, dynamic_simulation, engine):
    """One dynamic-world fleet run at paper scale, both engines."""
    report = benchmark.pedantic(
        dynamic_simulation.run,
        args=(0,),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    assert report.n_users == 50
    assert report.windows is not None  # churn really happened


def test_dynamic_masked_batch_beats_naive_loop(dynamic_simulation):
    """The acceptance bar: masked batch >= 5x the loop with a live world.

    Both engines stay bit-identical under any timeline (pinned by
    ``tests/test_dynamic_world.py``), so the ratio is pure execution
    speed of the masked kernels.
    """
    simulation = dynamic_simulation
    simulation.run(0)  # warm-up: imports, hop matrices, schedule caches

    start = time.perf_counter()
    batch = simulation.run(0, engine="batch")
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loop = simulation.run(0, engine="loop")
    loop_seconds = time.perf_counter() - start

    assert np.array_equal(
        batch.observations.trajectories, loop.observations.trajectories
    )
    speedup = loop_seconds / batch_seconds
    print(
        f"\ndynamic fleet M=50 T=100 (regimes+failures+churn): "
        f"batch {batch_seconds * 1e3:.1f} ms, loop {loop_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_bench_dynamic_experiment_cache_hit(benchmark, tmp_path):
    """A dynamic cache hit must return the stored result in milliseconds."""
    from repro.experiments.registry import run_experiment
    from repro.sim.cache import ResultCache
    from repro.sim.config import DynamicExperimentConfig

    config = DynamicExperimentConfig(
        n_users=6,
        n_cells=9,
        site_capacity=3,
        horizon=16,
        n_runs=2,
        regime_period=5,
        failure_sweep=(0.0, 0.3),
        churn_sweep=(0.0, 0.5),
    )
    cache = ResultCache(tmp_path)
    run_experiment("dynamic", config, cache=cache)  # warm the cache

    def hit():
        return run_experiment("dynamic", config, cache=cache)

    result = benchmark(hit)
    assert result.experiment_id == "dynamic"
    assert cache.hits >= 1
