#!/usr/bin/env python3
"""Synthetic evaluation campaign: regenerate Figs. 4-7 in one run.

Runs the four synthetic experiments at a configurable Monte-Carlo budget
and writes each result as JSON next to this script, so the series can be
plotted or diffed against the paper.

Run with::

    python examples/synthetic_campaign.py --runs 200 --output-dir results/
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import SyntheticExperimentConfig
from repro.experiments import run_fig4, run_fig5, run_fig6, run_fig7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=200, help="Monte-Carlo runs")
    parser.add_argument("--horizon", type=int, default=100, help="slots per run")
    parser.add_argument("--cells", type=int, default=10, help="number of cells L")
    parser.add_argument(
        "--output-dir", type=Path, default=Path("results"), help="where to write JSON"
    )
    args = parser.parse_args()

    config = SyntheticExperimentConfig(
        n_cells=args.cells, horizon=args.horizon, n_runs=args.runs
    )
    args.output_dir.mkdir(parents=True, exist_ok=True)

    experiments = {
        "fig4": run_fig4,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "fig7": run_fig7,
    }
    for name, runner in experiments.items():
        print(f"=== {name} ===")
        result = runner(config)
        for line in result.summary_lines()[:20]:
            print(line)
        path = result.save(args.output_dir / f"{name}.json")
        print(f"-> saved to {path}\n")

    # Print the paper's temporal-skewness table explicitly.
    fig4 = run_fig4(config)
    print("Temporal skewness (mean KL distance between transition rows):")
    for label in config.mobility_models:
        print(f"  {label:<32} {fig4.scalars[f'kl/{label}']:.2f}")


if __name__ == "__main__":
    main()
