#!/usr/bin/env python3
"""Quickstart: protect a mobile user with a single chaff service.

This example walks through the paper's core loop end to end:

1. build a Markov mobility model for the user;
2. pick a chaff control strategy (here: the optimal offline strategy, OO);
3. let the eavesdropper run maximum-likelihood detection on the observed
   service trajectories;
4. measure the eavesdropper's tracking accuracy with and without the chaff.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MaximumLikelihoodDetector,
    MonteCarloRunner,
    PrivacyGame,
    get_strategy,
    paper_synthetic_models,
)


def main() -> None:
    # The user's mobility: the paper's "non-skewed" synthetic model over
    # L = 10 MEC cells (a random ergodic Markov chain).
    chain = paper_synthetic_models(n_cells=10, seed=2017)["non-skewed"]
    horizon = 100
    n_runs = 200
    detector = MaximumLikelihoodDetector()

    print("User mobility model")
    print(f"  cells:            {chain.n_states}")
    print(f"  entropy rate:     {chain.entropy_rate():.3f} nats/slot")
    print(f"  sum pi^2:         {chain.stationary_collision_probability():.3f}")
    print()

    # Baseline: no chaff.  The eavesdropper sees a single trajectory and is
    # always right — this is the worst case the paper starts from.
    baseline_game = PrivacyGame(chain, None, detector, n_services=1)
    baseline = MonteCarloRunner(n_runs=20, seed=0).run(baseline_game, horizon=horizon)
    print(f"Tracking accuracy without chaffs: {baseline.tracking_accuracy:.3f}")

    # One chaff per strategy.
    for name in ("IM", "ML", "CML", "MO", "OO"):
        game = PrivacyGame(chain, get_strategy(name), detector, n_services=2)
        stats = MonteCarloRunner(n_runs=n_runs, seed=1).run(game, horizon=horizon)
        late = stats.per_slot_accuracy[-10:].mean()
        print(
            f"Strategy {name:>3}: time-average accuracy = "
            f"{stats.tracking_accuracy:.3f},  accuracy in final slots = {late:.3f}"
        )

    print()
    print(
        "OO and MO drive the eavesdropper's accuracy toward zero over time, "
        "while IM and ML leave it bounded away from zero — the headline "
        "result of the paper."
    )


if __name__ == "__main__":
    main()
