#!/usr/bin/env python3
"""Cost-privacy trade-off: how much privacy does a chaff budget buy?

The paper's discussion section defers a detailed study of the cost of
running chaff services.  This example performs that study on the full MEC
simulator: for increasing chaff budgets and for two strategies (IM and the
robust ROO), it reports the eavesdropper's tracking accuracy together with
the total cost charged to the user (migration + communication + chaff
running costs).

Run with::

    python examples/cost_privacy_tradeoff.py --runs 30
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MaximumLikelihoodDetector, get_strategy, paper_synthetic_models
from repro.mec import CostModel, MECSimulation, MECSimulationConfig, MECTopology
from repro.sim.seeding import spawn_generators


def evaluate(chain, topology, strategy_name, n_chaffs, horizon, n_runs, seed):
    """Mean (tracking accuracy, total cost) over Monte-Carlo runs."""
    strategy = get_strategy(strategy_name) if n_chaffs > 0 else None
    simulation = MECSimulation(
        topology,
        chain,
        strategy=strategy,
        cost_model=CostModel(chaff_running_cost=0.5),
        config=MECSimulationConfig(horizon=horizon, n_chaffs=n_chaffs),
    )
    detector = MaximumLikelihoodDetector()
    accuracies, costs = [], []
    for rng in spawn_generators(seed, n_runs, key="cost-privacy"):
        report = simulation.run(rng)
        outcome = report.evaluate(chain, detector, rng)
        accuracies.append(outcome["tracking_accuracy"])
        costs.append(outcome["total_cost"])
    return float(np.mean(accuracies)), float(np.mean(costs))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=30)
    parser.add_argument("--horizon", type=int, default=80)
    parser.add_argument("--cells", type=int, default=10)
    args = parser.parse_args()

    chain = paper_synthetic_models(args.cells, seed=2017)["non-skewed"]
    topology = MECTopology.ring(args.cells)
    budgets = [0, 1, 2, 4, 8]

    print(f"{'chaffs':>7} | {'IM accuracy':>12} {'IM cost':>9} | {'ROO accuracy':>13} {'ROO cost':>9}")
    print("-" * 60)
    baseline_cost = None
    for n_chaffs in budgets:
        im_accuracy, im_cost = evaluate(
            chain, topology, "IM", n_chaffs, args.horizon, args.runs, seed=10
        )
        roo_accuracy, roo_cost = evaluate(
            chain, topology, "ROO", n_chaffs, args.horizon, args.runs, seed=10
        )
        if baseline_cost is None:
            baseline_cost = im_cost
        print(
            f"{n_chaffs:>7} | {im_accuracy:12.3f} {im_cost:9.1f} | "
            f"{roo_accuracy:13.3f} {roo_cost:9.1f}"
        )

    print()
    print(
        "A single likelihood-aware chaff (ROO) buys near-total protection for "
        "one chaff's worth of cost, while the impersonating strategy needs a "
        "much larger budget to approach its non-zero floor (Eq. 11)."
    )


if __name__ == "__main__":
    main()
