#!/usr/bin/env python3
"""Telemetry demo: phase spans, counters and exported run metrics.

The telemetry layer (`repro.telemetry`) observes a run without touching
it: a :class:`Recorder` collects nested phase spans (sample, placement,
detect, spill), unified counters (placement outcomes, Monte-Carlo
episodes, cache behaviour) and gauges, and the instrumented run stays
bit-identical to an uninstrumented one.  This demo runs the fleet
Monte-Carlo with a live recorder, prints the end-of-run phase summary
and writes both export shapes:

* ``telemetry_metrics.json`` — the flat ``repro-telemetry/1`` record;
* ``telemetry_trace.json`` — Chrome trace-event JSON; open it in
  https://ui.perfetto.dev (or ``about:tracing``) to see the per-phase
  timeline with each shard worker on its own lane.

Run with::

    python examples/telemetry_demo.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.mec.fleet import (
    FleetSimulation,
    FleetSimulationConfig,
    run_fleet_monte_carlo,
)
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.telemetry import (
    Recorder,
    default_clock,
    phase_summary_table,
    write_metrics,
    write_trace,
)


def main() -> None:
    chain = paper_synthetic_models(n_cells=25, seed=2017)["non-skewed"]
    simulation = FleetSimulation(
        MECTopology.from_grid(GridTopology(5, 5), capacity=6),
        chain,
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(n_users=12, horizon=80, n_chaffs=1),
    )

    # The clock is injected here, at the composition root: the pure
    # layers only ever see the recorder, never a wall-clock function
    # (rule RPL008 keeps it that way).
    recorder = Recorder(clock=default_clock)
    statistics = run_fleet_monte_carlo(
        simulation,
        n_runs=20,
        seed=7,
        detector=MaximumLikelihoodDetector(),
        workers=2,
        recorder=recorder,
    )

    print("Fleet Monte-Carlo (M = 12 users, T = 80 slots, R = 20 runs)")
    print(f"  mean detection accuracy: {statistics.mean_detection:.3f}")
    print(f"  mean per-user cost:      {statistics.mean_cost_per_user:.2f}")
    print()

    print("Phase summary (spans merged from both shard workers):")
    for line in phase_summary_table(recorder):
        print(f"  {line}")
    print()

    print("Counters:")
    for name in sorted(recorder.counters):
        print(f"  {name:<24} {recorder.counters[name]:g}")
    print()

    out = Path(__file__).resolve().parent
    metrics = write_metrics(recorder, out / "telemetry_metrics.json")
    trace = write_trace(recorder, out / "telemetry_trace.json")
    print(f"metrics written to {metrics}")
    print(f"trace written to   {trace} (open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
