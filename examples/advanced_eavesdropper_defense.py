#!/usr/bin/env python3
"""Defending against an eavesdropper who knows the chaff strategy.

Section VI of the paper shows that the deterministic strategies (ML, OO,
MO) collapse once the eavesdropper knows which strategy is in use: he can
recompute the chaff trajectory and discard it.  The randomised robust
variants (RML, ROO, RMO) fix this.  This example measures both effects:

* detection/tracking accuracy of the *basic* ML eavesdropper,
* detection/tracking accuracy of the *strategy-aware* eavesdropper,

for every strategy, on the same mobility model.

Run with::

    python examples/advanced_eavesdropper_defense.py
"""

from __future__ import annotations

from repro import MaximumLikelihoodDetector, PrivacyGame, StrategyAwareDetector
from repro import get_strategy, paper_synthetic_models
from repro.sim.monte_carlo import MonteCarloRunner

#: employed strategy -> the deterministic map the advanced eavesdropper tests.
ASSUMED = {
    "IM": "IM",
    "ML": "ML",
    "OO": "OO",
    "MO": "MO",
    "RML": "ML",
    "ROO": "OO",
    "RMO": "MO",
}


def main() -> None:
    chain = paper_synthetic_models(10, seed=2017)["non-skewed"]
    horizon, n_runs, n_services = 100, 150, 4

    print(f"{'strategy':>9} | {'basic eavesdropper':>24} | {'advanced eavesdropper':>24}")
    print(f"{'':>9} | {'tracking':>11} {'detection':>11} | {'tracking':>11} {'detection':>11}")
    print("-" * 78)
    for employed, assumed in ASSUMED.items():
        strategy = get_strategy(employed)
        basic_game = PrivacyGame(
            chain, strategy, MaximumLikelihoodDetector(), n_services=n_services
        )
        aware_game = PrivacyGame(
            chain,
            strategy,
            StrategyAwareDetector(get_strategy(assumed)),
            n_services=n_services,
        )
        basic = MonteCarloRunner(n_runs=n_runs, seed=1).run(basic_game, horizon=horizon)
        aware = MonteCarloRunner(n_runs=n_runs, seed=1).run(aware_game, horizon=horizon)
        print(
            f"{employed:>9} | {basic.tracking_accuracy:11.3f} "
            f"{basic.detection_accuracy:11.3f} | {aware.tracking_accuracy:11.3f} "
            f"{aware.detection_accuracy:11.3f}"
        )

    print()
    print(
        "The deterministic strategies (ML, OO, MO) are excellent against the "
        "basic eavesdropper but are fully unmasked by the strategy-aware one; "
        "the randomised variants (RML, ROO, RMO) keep their protection, and "
        "IM is unaffected because it was already statistically indistinguishable."
    )


if __name__ == "__main__":
    main()
