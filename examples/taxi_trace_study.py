#!/usr/bin/env python3
"""Trace-driven study: who is trackable in a taxi fleet, and does a chaff help?

Reproduces the paper's Section VII-B pipeline on the synthetic taxi fleet:

1. generate raw GPS traces with irregular updates and silent gaps;
2. filter inactive nodes, resample to one-minute slots, quantise positions
   into Voronoi cells around cell towers;
3. fit the population mobility model the eavesdropper uses;
4. rank users by how accurately the ML eavesdropper tracks them;
5. protect the most trackable users with a single chaff under each
   strategy and report the change in tracking accuracy (Fig. 9).

Run with::

    python examples/taxi_trace_study.py --nodes 120 --towers 200
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MaximumLikelihoodDetector, TraceExperimentConfig, get_strategy
from repro.experiments.trace_common import (
    build_taxi_dataset,
    per_user_tracking_accuracy,
    protected_user_accuracy,
    top_k_tracked_users,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=174, help="taxi fleet size")
    parser.add_argument("--towers", type=int, default=300, help="tower count target")
    parser.add_argument("--horizon", type=int, default=100, help="one-minute slots")
    parser.add_argument("--top-k", type=int, default=5, help="users to protect")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    config = TraceExperimentConfig(
        n_nodes=args.nodes,
        n_towers=args.towers,
        horizon=args.horizon,
        top_k_users=args.top_k,
        seed=args.seed,
    )
    print("Building the taxi dataset (traces -> cells -> mobility model)...")
    dataset = build_taxi_dataset(config)
    print(f"  nodes kept after filtering: {dataset.n_nodes}")
    print(f"  Voronoi cells:              {dataset.n_cells}")
    print(f"  slots:                      {dataset.horizon}")
    print(
        "  most popular cell holds "
        f"{dataset.empirical_stationary().max():.1%} of all visits"
    )
    print()

    accuracies = per_user_tracking_accuracy(dataset, seed=config.seed)
    baseline = 1.0 / dataset.n_nodes
    above = int(np.sum(accuracies > 10 * baseline))
    print(f"Per-user tracking accuracy without chaffs (baseline 1/N = {baseline:.3%}):")
    print(f"  max accuracy:               {accuracies.max():.1%}")
    print(f"  users above 10x baseline:   {above} of {dataset.n_nodes}")
    print()

    detector = MaximumLikelihoodDetector()
    top_users = top_k_tracked_users(dataset, args.top_k, seed=config.seed)
    strategies = ["IM", "MO", "ML", "OO"]
    header = "user       no-chaff  " + "  ".join(f"{name:>6}" for name in strategies)
    print("Protecting the most trackable users with a single chaff:")
    print(header)
    for rank, user_row in enumerate(top_users, start=1):
        no_chaff = protected_user_accuracy(
            dataset, user_row, None, detector, seed=config.seed + rank
        )
        row = [f"user{rank:<6} {no_chaff:8.1%}"]
        for name in strategies:
            accuracy = protected_user_accuracy(
                dataset,
                user_row,
                get_strategy(name),
                detector,
                n_chaffs=1,
                seed=config.seed + rank,
            )
            row.append(f"{accuracy:6.1%}")
        print("  ".join(row))

    print()
    print(
        "As in Fig. 9(b), an impersonating chaff (IM) barely helps the most "
        "predictable users, while the likelihood-aware strategies (ML, OO) "
        "pull the eavesdropper away from them."
    )


if __name__ == "__main__":
    main()
