#!/usr/bin/env python3
"""Dynamic worlds demo: a fleet on a live MEC deployment.

Builds a :class:`~repro.world.timeline.Timeline` three ways — by hand
(explicit events), from the scenario generators, and compares a frozen
world against a stormy one: mobility regimes rotating every 25 slots,
edge sites failing and recovering as a Poisson process, and a fifth of
the users arriving/departing mid-episode.  The fleet's batch and loop
engines produce bit-identical results under any timeline; the demo runs
the batch engine and reports how the live world moves privacy (per-user
detection against the crowd) and cost.

Run with::

    python examples/dynamic_world_demo.py
"""

from __future__ import annotations

from repro.core.eavesdropper.detector import MaximumLikelihoodDetector
from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig, run_fleet_monte_carlo
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.world import (
    CapacityChange,
    SiteDown,
    SiteUp,
    Timeline,
    UserArrival,
    UserDeparture,
    dynamic_timeline,
)


def hand_written_timeline() -> Timeline:
    """A small, explicit script of world events."""
    return Timeline(
        events=(
            SiteDown(slot=20, cell=12),      # the central site fails...
            SiteUp(slot=35, cell=12),        # ...and recovers 15 slots later
            CapacityChange(slot=50, cell=0, capacity=2),  # re-provisioned down
            UserArrival(slot=10, user=9),    # a late session
            UserDeparture(slot=70, user=0),  # an early leaver
        )
    )


def main() -> None:
    n_cells, n_users, horizon = 25, 10, 100
    chains = paper_synthetic_models(n_cells, seed=2017)
    chain = chains["non-skewed"]
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=4)
    config = FleetSimulationConfig(n_users=n_users, horizon=horizon, n_chaffs=1)
    detector = MaximumLikelihoodDetector()

    # --- 1. A hand-written timeline ------------------------------------
    timeline = hand_written_timeline()
    simulation = FleetSimulation(
        topology, chain, strategy=get_strategy("IM"), config=config,
        timeline=timeline,
    )
    report = simulation.run(seed=7)
    stats = report.placement.as_dict()
    print("hand-written timeline:")
    print(f"  events: {len(timeline.events)}, placement stats: {stats}")
    print(f"  user 9 window: {report.windows[report.observations.real_rows[9]]}")

    # --- 2. Generated scenario: regimes + failures + churn --------------
    stormy = dynamic_timeline(
        horizon=horizon,
        n_cells=n_cells,
        n_users=n_users,
        seed=2017,
        regime_chains=(chains["temporally-skewed"],),
        regime_period=25,
        failure_rate=0.05,
        churn_rate=0.2,
    )
    print(f"\ngenerated timeline: {len(stormy.events)} events")

    # --- 3. Frozen vs. live world, Monte-Carlo -------------------------
    frozen = FleetSimulation(
        topology, chain, strategy=get_strategy("IM"), config=config,
    )
    live = FleetSimulation(
        topology, chain, strategy=get_strategy("IM"), config=config,
        timeline=stormy,
    )
    for label, simulation in (("frozen world", frozen), ("live world", live)):
        statistics = run_fleet_monte_carlo(
            simulation, n_runs=10, seed=2017, detector=detector
        )
        print(
            f"{label:>12}: detection {statistics.mean_detection:.3f}, "
            f"tracking {statistics.mean_tracking:.3f}, "
            f"cost/user {statistics.mean_cost_per_user:.1f}, "
            f"evictions/run {statistics.mean_evicted:.1f}"
        )


if __name__ == "__main__":
    main()
