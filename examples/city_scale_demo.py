#!/usr/bin/env python3
"""City-scale chains: the sparse backend on a 100x100 grid (L = 10,000).

The paper evaluates over ``L = 10`` cells; a metropolitan MEC deployment
has thousands.  A dense ``L x L`` transition matrix at ``L = 10^4`` is
800 MB before any kernel runs — the CSR backend never builds it.  This
demo runs the full pipeline at city scale:

1. build a 100x100 grid random walk directly in CSR coordinates;
2. solve the stationary distribution with the iterative (power) solver;
3. sample a Monte-Carlo batch of user trajectories;
4. score trajectories (CSR log-probability gathers);
5. run the sparsity-aware Viterbi for the most likely trajectory,
   exact and with top-k successor pruning;
6. play a privacy-game episode with a myopic chaff against the ML
   eavesdropper.

Run with::

    python examples/city_scale_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.eavesdropper import MaximumLikelihoodDetector
from repro.core.game import PrivacyGame
from repro.core.strategies import get_strategy
from repro.core.trellis import most_likely_trajectory
from repro.mobility import GridTopology, chain_density, grid_random_walk


def timed(label: str, fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    print(f"  {label:<42s} {time.perf_counter() - start:8.3f} s")
    return result


def main() -> None:
    topology = GridTopology(100, 100)
    print(f"City-scale grid: {topology.rows} x {topology.cols} = "
          f"{topology.n_cells:,} cells")
    print()

    # 1 + 2. CSR construction + iterative stationary solve.  The dense
    # equivalent would materialise an 800 MB matrix; the sparse chain
    # holds ~5 nonzeros per row.
    print("Build (CSR construction + power-iteration stationary solve)")
    chain = timed("grid_random_walk(backend='sparse')", grid_random_walk,
                  topology, backend="sparse")
    nnz = chain.transition_matrix.nnz
    print(f"  nonzeros: {nnz:,} ({chain_density(chain):.2%} of L^2)")
    print(f"  stationary mass range: [{chain.stationary.min():.2e}, "
          f"{chain.stationary.max():.2e}]")
    print()

    # 3 + 4. Monte-Carlo sampling and scoring — the per-slot simulation
    # kernels the experiments spend their time in.
    print("Simulate (R = 100 runs, T = 100 slots)")
    rng = np.random.default_rng(2017)
    batch = timed("sample_trajectories(100, 100)",
                  chain.sample_trajectories, 100, 100, rng)
    scores = timed("log_likelihoods(batch)", chain.log_likelihoods, batch)
    print(f"  mean log-likelihood: {scores.mean():.1f}")
    print()

    # 5. Sparsity-aware Viterbi.  Exact uses every nonzero predecessor
    # edge; top-k pruning keeps the k most probable successors per cell
    # and trades a provably-feasible (slightly less likely) path for
    # another large constant factor.
    print("Most likely trajectory (T = 50)")
    exact = timed("most_likely_trajectory (exact)",
                  most_likely_trajectory, chain, 50)
    pruned = timed("most_likely_trajectory (top_k=3)",
                   most_likely_trajectory, chain, 50, top_k=3)
    print(f"  exact  log-likelihood: {chain.log_likelihood(exact):.2f}")
    print(f"  pruned log-likelihood: {chain.log_likelihood(pruned):.2f}")
    print()

    # 6. The paper's privacy game, unchanged, on the city-scale chain:
    # the strategies and detectors only touch the backend-agnostic API.
    print("Privacy game (MO chaff vs ML eavesdropper, T = 100)")
    game = PrivacyGame(chain, get_strategy("MO"), MaximumLikelihoodDetector())
    episode = timed("run_episode(horizon=100)", game.run_episode,
                    np.random.default_rng(7), horizon=100)
    print(f"  tracking accuracy this episode: "
          f"{episode.tracking_accuracy:.3f}")
    print(f"  eavesdropper picked the user:   {episode.detected_user}")


if __name__ == "__main__":
    main()
