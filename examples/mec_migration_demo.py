#!/usr/bin/env python3
"""MEC simulator demo: services, migrations, costs and the observation plane.

Shows the substrate the paper's threat model lives in.  A user moves over a
ring of MEC cells; his delay-sensitive service follows him (always-follow
migration); a chaff orchestrator steers one chaff service per the OO
strategy; a cyber eavesdropper observes every service's cell occupancy and
runs ML detection.  The run also accounts for migration, communication and
chaff costs, and compares migration policies on the cost/QoS axis.

Run with::

    python examples/mec_migration_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import MaximumLikelihoodDetector, get_strategy, paper_synthetic_models
from repro.mec import (
    AlwaysFollowPolicy,
    CostModel,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    MECSimulation,
    MECSimulationConfig,
    MECTopology,
    NeverMigratePolicy,
)
from repro.sim.seeding import spawn_generators


def main() -> None:
    n_cells = 10
    chain = paper_synthetic_models(n_cells, seed=2017)["temporally-skewed"]
    topology = MECTopology.ring(n_cells)
    rng = np.random.default_rng(7)

    # --- One protected run: always-follow service + one OO chaff ----------
    simulation = MECSimulation(
        topology,
        chain,
        strategy=get_strategy("OO"),
        policy=AlwaysFollowPolicy(),
        config=MECSimulationConfig(horizon=60, n_chaffs=1),
    )
    report = simulation.run(rng)
    outcome = report.evaluate(chain, MaximumLikelihoodDetector(), rng)

    print("Protected run (always-follow service, 1 OO chaff, 60 slots)")
    print(f"  migrations performed:      {report.ledger.migrations}")
    print(f"  migration cost:            {report.ledger.migration_total:.1f}")
    print(f"  communication cost:        {report.ledger.communication_total:.1f}")
    print(f"  chaff running cost:        {report.ledger.chaff_total:.1f}")
    print(f"  total cost:                {report.total_cost:.1f}")
    print(f"  eavesdropper tracking:     {outcome['tracking_accuracy']:.2f}")
    print(f"  eavesdropper detection:    {outcome['detection_accuracy']:.0f}")
    print(f"  migration events observed: {len(report.events)}")
    print()

    # --- Migration policy comparison (no chaffs) ---------------------------
    cost_model = CostModel(migration_cost_fixed=2.0, migration_cost_per_hop=2.0)
    policies = {
        "always-follow": AlwaysFollowPolicy(),
        "never-migrate": NeverMigratePolicy(),
        "threshold-2": DistanceThresholdPolicy(threshold=2),
        "mdp-optimal": MDPMigrationPolicy(topology, chain, cost_model),
    }
    print("Migration policy comparison (20 runs each, no chaffs)")
    print(f"{'policy':>15} {'total cost':>12} {'co-location':>12}")
    for name, policy in policies.items():
        simulation = MECSimulation(
            topology,
            chain,
            policy=policy,
            cost_model=cost_model,
            config=MECSimulationConfig(horizon=60, n_chaffs=0),
        )
        costs, colocations = [], []
        for run_rng in spawn_generators(100, 20, key="migration-demo"):
            run_report = simulation.run(run_rng)
            costs.append(run_report.total_cost)
            service = np.asarray(run_report.real_service.location_history)
            colocations.append(float(np.mean(service == run_report.user_trajectory)))
        print(f"{name:>15} {np.mean(costs):12.1f} {np.mean(colocations):12.2f}")

    print()
    print(
        "Always-follow keeps the service co-located (required for delay-"
        "sensitive services, and the worst case for privacy); the MDP policy "
        "trades a little co-location for lower total cost — the trade-off the "
        "paper's related work optimises."
    )


if __name__ == "__main__":
    main()
