#!/usr/bin/env python3
"""Adversary ladder demo: oracle vs learned vs stale eavesdroppers.

The paper's eavesdropper knows the true mobility model and watches every
edge site.  This demo climbs down that ladder: one fleet Monte-Carlo on
a regime-switching MEC is replayed against adversaries that differ only
in what they *know* (oracle / learned-online / regime-blind stale) and
in what they *see* (full coverage vs a compromised fraction of the
sites, single view or coalition), and reports the detection and tracking
rates of each rung — how much an attacker must know and see before
privacy collapses.

Run with::

    python examples/adversary_ladder_demo.py
"""

from __future__ import annotations

from repro.adversary import (
    AdversaryDetector,
    FullCoverage,
    SiteCoverage,
    coalition_coverage,
    make_knowledge,
    run_adversary_monte_carlo,
    simulate_fleet_reports,
)
from repro.core.strategies import get_strategy
from repro.mec.fleet import FleetSimulation, FleetSimulationConfig
from repro.mec.observer import censor_observations
from repro.mec.simulator import MECSimulation, MECSimulationConfig
from repro.mec.topology import MECTopology
from repro.mobility.grid import GridTopology
from repro.mobility.models import paper_synthetic_models
from repro.world import dynamic_timeline

N_USERS = 20
HORIZON = 60
N_RUNS = 8
N_CELLS = 25
SEED = 2017


def build_simulation() -> FleetSimulation:
    """A fleet on a regime-switching world (so stale knowledge hurts)."""
    chains = paper_synthetic_models(N_CELLS, seed=SEED)
    timeline = dynamic_timeline(
        horizon=HORIZON,
        n_cells=N_CELLS,
        n_users=N_USERS,
        seed=SEED,
        regime_chains=(chains["temporally-skewed"],),
        regime_period=15,
    )
    topology = MECTopology.from_grid(GridTopology(5, 5), capacity=8)
    return FleetSimulation(
        topology,
        chains["non-skewed"],
        strategy=get_strategy("IM"),
        config=FleetSimulationConfig(
            n_users=N_USERS, horizon=HORIZON, n_chaffs=1
        ),
        timeline=timeline,
    )


def single_user_censoring_demo() -> None:
    """Coverage censoring on the single-user pipeline.

    A partial adversary of the classic one-user game: the observation
    matrix is censored to the compromised sites before detection, and
    the adversary detector scores the remaining glimpses.
    """
    import numpy as np

    chain = paper_synthetic_models(N_CELLS, seed=SEED)["non-skewed"]
    simulation = MECSimulation(
        MECTopology.from_grid(GridTopology(5, 5), capacity=8),
        chain,
        strategy=get_strategy("IM"),
        config=MECSimulationConfig(horizon=HORIZON, n_chaffs=2),
    )
    report = simulation.run(np.random.default_rng(SEED))
    coverage = SiteCoverage(0.3, SEED)
    censored = censor_observations(report.observations, coverage, N_CELLS)
    hidden = float((censored.trajectories == -1).mean())
    adversary = AdversaryDetector(make_knowledge("oracle"), coverage)
    outcome = adversary.detect(
        chain, report.observations.trajectories, np.random.default_rng(0)
    )
    print(
        f"single-user game, 30% site coverage: {hidden:.0%} of the plane "
        f"censored, detector {'found' if outcome.chosen_index == report.observations.user_row else 'missed'} "
        "the user\n"
    )


def main() -> None:
    single_user_censoring_demo()
    simulation = build_simulation()
    # The defender's world never depends on the adversary: simulate the
    # episodes once, replay them against every rung of the ladder.
    reports = simulate_fleet_reports(simulation, n_runs=N_RUNS, seed=SEED)

    coverages = {
        "full coverage": FullCoverage(),
        "30% of sites": SiteCoverage(0.3, SEED),
        "3 x 20% coalition": coalition_coverage(3, 0.2, SEED),
    }
    print(
        f"adversary ladder: M={N_USERS} users, T={HORIZON} slots, "
        f"{N_RUNS} episodes, regime switches every 15 slots\n"
    )
    print(f"{'knowledge':<10} {'coverage':<18} {'detection':>10} {'tracking':>10}")
    for level in ("oracle", "stale", "learned"):
        for coverage_name, coverage in coverages.items():
            # A fresh adversary per rung; the learned one warm-starts its
            # empirical chain across the N_RUNS episodes.
            adversary = AdversaryDetector(make_knowledge(level), coverage)
            statistics = run_adversary_monte_carlo(
                simulation,
                adversary,
                n_runs=N_RUNS,
                seed=SEED,
                reports=reports,
            )
            print(
                f"{level:<10} {coverage_name:<18} "
                f"{statistics.mean_detection:>10.3f} "
                f"{statistics.mean_tracking:>10.3f}"
            )
    print(
        "\nreading the table: the oracle/full row is the paper's "
        "eavesdropper; every other row weakens its knowledge or its "
        "coverage, and detection decays accordingly."
    )


if __name__ == "__main__":
    main()
