"""Legacy-path shim: all project metadata lives in ``pyproject.toml``.

Kept only so ``pip install -e .`` still works on machines without the
``wheel`` package (offline editable installs fall back to
``setup.py develop``, and setuptools >= 61 reads the pyproject metadata).
"""

from setuptools import setup

setup()
