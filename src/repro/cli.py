"""Command-line interface for the reproduction.

Usage examples::

    repro-mec list
    repro-mec run fig4
    repro-mec run fig5 --runs 200 --horizon 100 --output results/fig5.json
    repro-mec run fig5 --workers 0          # all cores, bit-identical result
    repro-mec run fig9 --nodes 60 --towers 80
    repro-mec run fig5 --no-cache           # force a fresh simulation
    repro-mec fleet --users 50 --capacity 8 --workers 0

``run`` prints a human-readable summary of the experiment result and can
optionally persist the full result as JSON.  Results are cached on disk
(keyed by experiment id, config and package version) so repeat runs
return immediately; ``--no-cache`` disables the cache and ``--cache-dir``
relocates it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments.registry import available_experiments, run_experiment
from .sim.cache import ResultCache, default_cache_dir
from .sim.config import (
    FleetExperimentConfig,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)

__all__ = ["build_parser", "main"]

_SYNTHETIC_EXPERIMENTS = {
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation-chaff-budget",
    "ablation-cost-privacy",
    "ablation-migration-policies",
}
_TRACE_EXPERIMENTS = {"fig8", "fig9", "fig10"}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mec`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-mec",
        description="Reproduce the experiments of 'Location Privacy in Mobile Edge Clouds'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    run_parser.add_argument("--runs", type=int, default=None, help="Monte-Carlo runs")
    run_parser.add_argument("--horizon", type=int, default=None, help="slots per run")
    run_parser.add_argument("--cells", type=int, default=None, help="number of cells L")
    run_parser.add_argument("--nodes", type=int, default=None, help="taxi fleet size")
    run_parser.add_argument("--towers", type=int, default=None, help="tower count")
    run_parser.add_argument("--seed", type=int, default=2017, help="master seed")
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help="Monte-Carlo execution engine (identical results, batch is faster)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent points and run shards "
        "(1 = serial, 0 = all cores; identical results)",
    )
    run_parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    run_parser.add_argument(
        "--output", type=str, default=None, help="write the result JSON to this path"
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="run the multi-user capacity-aware fleet experiment",
    )
    fleet_parser.add_argument(
        "--users", type=int, default=50, help="fleet population M"
    )
    fleet_parser.add_argument(
        "--capacity", type=int, default=8, help="service slots per edge site"
    )
    fleet_parser.add_argument(
        "--cells", type=int, default=25, help="number of cells (grid deployment)"
    )
    fleet_parser.add_argument(
        "--chaffs", type=int, default=1, help="chaffs per user"
    )
    fleet_parser.add_argument(
        "--strategy", type=str, default="IM", help="chaff strategy name"
    )
    fleet_parser.add_argument(
        "--runs", type=int, default=20, help="Monte-Carlo fleet runs per point"
    )
    fleet_parser.add_argument(
        "--horizon", type=int, default=100, help="slots per run"
    )
    fleet_parser.add_argument("--seed", type=int, default=2017, help="master seed")
    fleet_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help="fleet execution engine (identical results, batch is faster)",
    )
    fleet_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep points and run shards "
        "(1 = serial, 0 = all cores; identical results)",
    )
    fleet_parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    fleet_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    fleet_parser.add_argument(
        "--output", type=str, default=None, help="write the result JSON to this path"
    )
    return parser


def _build_config(args: argparse.Namespace, experiment_id: str):
    """Construct the appropriate config object for the chosen experiment."""
    engine = getattr(args, "engine", "batch")
    workers = getattr(args, "workers", 1)
    if experiment_id == "fleet":
        # Single construction site for both entry points: the ``fleet``
        # subcommand supplies the fleet-specific flags, the generic
        # ``run fleet`` path falls back to their defaults.
        return FleetExperimentConfig(
            n_users=getattr(args, "users", 50),
            n_cells=args.cells if args.cells is not None else 25,
            site_capacity=getattr(args, "capacity", 8),
            horizon=args.horizon if args.horizon is not None else 100,
            n_runs=args.runs if args.runs is not None else 20,
            n_chaffs=getattr(args, "chaffs", 1),
            strategy=getattr(args, "strategy", "IM"),
            seed=args.seed,
            engine=engine,
            workers=workers,
        )
    if experiment_id in _TRACE_EXPERIMENTS:
        config = TraceExperimentConfig(seed=args.seed, engine=engine, workers=workers)
        return config.scaled(
            n_nodes=args.nodes, n_towers=args.towers, horizon=args.horizon
        )
    config = SyntheticExperimentConfig(
        seed=args.seed,
        n_cells=args.cells if args.cells is not None else 10,
        n_runs=args.runs if args.runs is not None else 1000,
        horizon=args.horizon if args.horizon is not None else 100,
        engine=engine,
        workers=workers,
    )
    return config


def _build_cache(args: argparse.Namespace) -> ResultCache | None:
    """The result cache for this invocation, or ``None`` with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", None))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    experiment_id = "fleet" if args.command == "fleet" else args.experiment
    config = _build_config(args, experiment_id)
    cache = _build_cache(args)
    result = run_experiment(experiment_id, config, cache=cache)
    if cache is not None and cache.hits:
        print(f"(cached result from {cache.cache_dir})")
    for line in result.summary_lines():
        print(line)
    if args.output:
        path = result.save(args.output)
        print(f"result written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
