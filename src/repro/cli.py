"""Command-line interface for the reproduction.

Usage examples::

    repro-mec list
    repro-mec run fig4
    repro-mec run fig5 --runs 200 --horizon 100 --output results/fig5.json
    repro-mec run fig5 --workers 0          # all cores, bit-identical result
    repro-mec run fig9 --nodes 60 --towers 80
    repro-mec run fig5 --no-cache           # force a fresh simulation
    repro-mec fleet --users 50 --capacity 8 --workers 0
    repro-mec fleet --telemetry                     # end-of-run phase summary
    repro-mec run fleet --metrics-out metrics.json --trace-out trace.json

``run`` prints a human-readable summary of the experiment result and can
optionally persist the full result as JSON.  Results are cached on disk
(keyed by experiment id, config and package version) so repeat runs
return immediately; ``--no-cache`` disables the cache and ``--cache-dir``
relocates it.  ``--telemetry`` / ``--metrics-out`` / ``--trace-out``
observe a run without changing it: phase spans and unified counters are
printed as a summary table and exported as ``repro-telemetry/1`` metrics
JSON and Chrome trace-event JSON (Perfetto loadable).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments.registry import available_experiments, run_experiment
from .sim.cache import ResultCache, default_cache_dir
from .sim.config import (
    AdversaryExperimentConfig,
    DynamicExperimentConfig,
    FleetExperimentConfig,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from .telemetry import (
    Recorder,
    default_clock,
    phase_summary_table,
    write_metrics,
    write_trace,
)

__all__ = ["build_parser", "main"]

_SYNTHETIC_EXPERIMENTS = {
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation-chaff-budget",
    "ablation-cost-privacy",
    "ablation-migration-policies",
}
_TRACE_EXPERIMENTS = {"fig8", "fig9", "fig10"}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mec`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-mec",
        description="Reproduce the experiments of 'Location Privacy in Mobile Edge Clouds'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    run_parser.add_argument("--runs", type=int, default=None, help="Monte-Carlo runs")
    run_parser.add_argument("--horizon", type=int, default=None, help="slots per run")
    run_parser.add_argument("--cells", type=int, default=None, help="number of cells L")
    run_parser.add_argument("--nodes", type=int, default=None, help="taxi fleet size")
    run_parser.add_argument("--towers", type=int, default=None, help="tower count")
    run_parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="fleet population M (fleet/dynamic experiments)",
    )
    run_parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="service slots per edge site (fleet/dynamic experiments)",
    )
    run_parser.add_argument("--seed", type=int, default=2017, help="master seed")
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help="Monte-Carlo execution engine (identical results, batch is faster)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for independent points and run shards "
        "(1 = serial, 0 = all cores; identical results)",
    )
    run_parser.add_argument(
        "--backend",
        choices=("dense", "sparse", "auto"),
        default="dense",
        help="Markov-chain storage backend (synthetic/fleet experiments; "
        "bit-identical results, sparse wins at large L)",
    )
    run_parser.add_argument(
        "--run-stack",
        type=int,
        default=None,
        help="Monte-Carlo episodes folded into one slot-kernel pass "
        "(fleet/adversary experiments; identical results)",
    )
    run_parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    run_parser.add_argument(
        "--output", type=str, default=None, help="write the result JSON to this path"
    )
    _add_telemetry_flags(run_parser)
    run_parser.add_argument(
        "--knowledge",
        type=str,
        default=None,
        help="comma-separated adversary knowledge levels "
        "(oracle,learned,stale; adversary experiment)",
    )
    run_parser.add_argument(
        "--coverage",
        type=str,
        default=None,
        help="comma-separated compromised-site fractions in (0, 1] "
        "(adversary experiment)",
    )
    run_parser.add_argument(
        "--coalition-sizes",
        type=str,
        default=None,
        help="comma-separated coalition member counts (adversary experiment)",
    )
    _add_dynamic_world_flags(run_parser)

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="run the multi-user capacity-aware fleet experiment",
    )
    fleet_parser.add_argument(
        "--users", type=int, default=50, help="fleet population M"
    )
    fleet_parser.add_argument(
        "--capacity", type=int, default=8, help="service slots per edge site"
    )
    fleet_parser.add_argument(
        "--cells", type=int, default=25, help="number of cells (grid deployment)"
    )
    fleet_parser.add_argument(
        "--chaffs", type=int, default=1, help="chaffs per user"
    )
    fleet_parser.add_argument(
        "--strategy", type=str, default="IM", help="chaff strategy name"
    )
    fleet_parser.add_argument(
        "--runs", type=int, default=20, help="Monte-Carlo fleet runs per point"
    )
    fleet_parser.add_argument(
        "--horizon", type=int, default=100, help="slots per run"
    )
    fleet_parser.add_argument("--seed", type=int, default=2017, help="master seed")
    fleet_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help="fleet execution engine (identical results, batch is faster)",
    )
    fleet_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep points and run shards "
        "(1 = serial, 0 = all cores; identical results)",
    )
    fleet_parser.add_argument(
        "--backend",
        choices=("dense", "sparse", "auto"),
        default="dense",
        help="Markov-chain storage backend (bit-identical results, sparse "
        "wins at large L)",
    )
    fleet_parser.add_argument(
        "--stream",
        action="store_true",
        help="run episodes through the streaming engine (bounded memory, "
        "bit-identical results)",
    )
    fleet_parser.add_argument(
        "--chunk-slots",
        type=int,
        default=64,
        help="slots per streaming chunk (with --stream; identical results)",
    )
    fleet_parser.add_argument(
        "--regions",
        type=int,
        default=1,
        help="topology regions for sharded placement (with --stream; "
        "identical results)",
    )
    fleet_parser.add_argument(
        "--run-stack",
        type=int,
        default=None,
        help="Monte-Carlo episodes folded into one slot-kernel pass "
        "(identical results)",
    )
    fleet_parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    fleet_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    fleet_parser.add_argument(
        "--output", type=str, default=None, help="write the result JSON to this path"
    )
    _add_telemetry_flags(fleet_parser)
    _add_dynamic_world_flags(fleet_parser)
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by the ``run`` and ``fleet`` subcommands.

    All three are execution-only: recording never changes the numbers,
    the RNG streams or the result-cache key.
    """
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record phase spans and counters; print a phase summary "
        "(identical results)",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the run's metrics (repro-telemetry/1 JSON) to this "
        "path (implies --telemetry)",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="write a Chrome trace-event JSON (Perfetto/about:tracing) "
        "to this path (implies --telemetry)",
    )


def _add_dynamic_world_flags(parser: argparse.ArgumentParser) -> None:
    """Dynamic-world flags shared by the ``run`` and ``fleet`` subcommands.

    Passing *any* of these on the ``fleet`` subcommand switches the run
    to the ``dynamic`` experiment with exactly the requested dynamics
    (unset rates stay 0, an unset period disables regime switching); on
    ``run dynamic`` they override the experiment's defaults.
    """
    parser.add_argument(
        "--failure-rate",
        type=float,
        default=None,
        help="expected site failures per slot (dynamic world)",
    )
    parser.add_argument(
        "--churn-rate",
        type=float,
        default=None,
        help="fraction of transient users in [0, 1] (dynamic world)",
    )
    parser.add_argument(
        "--regime-period",
        type=int,
        default=None,
        help="slots between mobility-regime switches (dynamic world)",
    )


def _wants_dynamic_world(args: argparse.Namespace) -> bool:
    """Whether the ``fleet`` subcommand asked for a dynamic world."""
    return any(
        getattr(args, name, None) is not None
        for name in ("failure_rate", "churn_rate", "regime_period")
    )


def _flag(args: argparse.Namespace, name: str, default):
    """A CLI flag value, falling back to ``default`` when absent or unset."""
    value = getattr(args, name, None)
    return value if value is not None else default


def _csv(value: "str | None", cast):
    """A comma-separated CLI value as a tuple, or ``None`` when unset."""
    if value is None:
        return None
    return tuple(cast(item) for item in value.split(",") if item)


def _build_config(args: argparse.Namespace, experiment_id: str):
    """Construct the appropriate config object for the chosen experiment."""
    engine = getattr(args, "engine", "batch")
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "backend", "dense")
    if experiment_id == "adversary":
        defaults = AdversaryExperimentConfig()
        knowledge = _csv(getattr(args, "knowledge", None), str)
        fractions = _csv(getattr(args, "coverage", None), float)
        sizes = _csv(getattr(args, "coalition_sizes", None), int)
        return AdversaryExperimentConfig(
            n_users=_flag(args, "users", defaults.n_users),
            n_cells=_flag(args, "cells", defaults.n_cells),
            site_capacity=_flag(args, "capacity", defaults.site_capacity),
            horizon=_flag(args, "horizon", defaults.horizon),
            n_runs=_flag(args, "runs", defaults.n_runs),
            n_chaffs=_flag(args, "chaffs", defaults.n_chaffs),
            strategy=_flag(args, "strategy", defaults.strategy),
            regime_period=_flag(args, "regime_period", defaults.regime_period),
            knowledge_levels=knowledge or defaults.knowledge_levels,
            coverage_fractions=fractions or defaults.coverage_fractions,
            coalition_sizes=sizes or defaults.coalition_sizes,
            seed=args.seed,
            engine=engine,
            workers=workers,
            run_stack=_flag(args, "run_stack", defaults.run_stack),
        )
    if experiment_id == "dynamic":
        defaults = DynamicExperimentConfig()
        # ``run dynamic`` inherits the experiment's defaults for any flag
        # the user leaves unset; the ``fleet`` subcommand switched here
        # *because* dynamic flags were given, so it enables exactly the
        # dynamics asked for and nothing else (unset rates stay 0, an
        # unset period disables regime switching).
        from_fleet = args.command == "fleet"
        regime_period = _flag(
            args, "regime_period", None if from_fleet else defaults.regime_period
        )
        return DynamicExperimentConfig(
            n_users=_flag(args, "users", defaults.n_users),
            n_cells=_flag(args, "cells", defaults.n_cells),
            site_capacity=_flag(args, "capacity", defaults.site_capacity),
            horizon=_flag(args, "horizon", defaults.horizon),
            n_runs=_flag(args, "runs", defaults.n_runs),
            n_chaffs=_flag(args, "chaffs", defaults.n_chaffs),
            strategy=_flag(args, "strategy", defaults.strategy),
            regime_model=None if regime_period is None else defaults.regime_model,
            regime_period=regime_period,
            failure_rate=_flag(
                args, "failure_rate", 0.0 if from_fleet else defaults.failure_rate
            ),
            churn_rate=_flag(
                args, "churn_rate", 0.0 if from_fleet else defaults.churn_rate
            ),
            seed=args.seed,
            engine=engine,
            workers=workers,
        )
    if experiment_id == "fleet":
        # Single construction site for both entry points: the ``fleet``
        # subcommand supplies the fleet-specific flags, the generic
        # ``run fleet`` path falls back to their defaults.
        return FleetExperimentConfig(
            n_users=_flag(args, "users", 50),
            n_cells=_flag(args, "cells", 25),
            site_capacity=_flag(args, "capacity", 8),
            horizon=_flag(args, "horizon", 100),
            n_runs=_flag(args, "runs", 20),
            n_chaffs=_flag(args, "chaffs", 1),
            strategy=_flag(args, "strategy", "IM"),
            seed=args.seed,
            engine=engine,
            workers=workers,
            backend=backend,
            stream=_flag(args, "stream", False),
            chunk_slots=_flag(args, "chunk_slots", 64),
            regions=_flag(args, "regions", 1),
            run_stack=_flag(args, "run_stack", 1),
        )
    if experiment_id in _TRACE_EXPERIMENTS:
        config = TraceExperimentConfig(seed=args.seed, engine=engine, workers=workers)
        return config.scaled(
            n_nodes=args.nodes, n_towers=args.towers, horizon=args.horizon
        )
    config = SyntheticExperimentConfig(
        seed=args.seed,
        n_cells=args.cells if args.cells is not None else 10,
        n_runs=args.runs if args.runs is not None else 1000,
        horizon=args.horizon if args.horizon is not None else 100,
        engine=engine,
        workers=workers,
        backend=backend,
    )
    return config


def _build_cache(args: argparse.Namespace) -> ResultCache | None:
    """The result cache for this invocation, or ``None`` with ``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    # The CLI injects the sanctioned clock so the cache can report hit /
    # miss latency; the timing is an observation, never an input.
    return ResultCache(getattr(args, "cache_dir", None), clock=default_clock)


def _build_recorder(args: argparse.Namespace) -> "Recorder | None":
    """A live recorder when any telemetry flag was given, else ``None``."""
    wanted = getattr(args, "telemetry", False) or any(
        getattr(args, name, None) is not None
        for name in ("metrics_out", "trace_out")
    )
    return Recorder(clock=default_clock) if wanted else None


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.command == "fleet":
        # Dynamic-world flags turn the fleet run into the dynamic
        # experiment (same deployment, live world).
        experiment_id = "dynamic" if _wants_dynamic_world(args) else "fleet"
    else:
        experiment_id = args.experiment
    config = _build_config(args, experiment_id)
    cache = _build_cache(args)
    recorder = _build_recorder(args)
    result = run_experiment(experiment_id, config, cache=cache, recorder=recorder)
    if cache is not None and cache.hits:
        print(f"(cached result from {cache.cache_dir})")
    for line in result.summary_lines():
        print(line)
    if args.output:
        path = result.save(args.output)
        print(f"result written to {path}")
    if recorder is not None:
        print()
        print("telemetry phase summary:")
        for line in phase_summary_table(recorder):
            print(f"  {line}")
        if cache is not None:
            stats = cache.stats()
            print(
                "result cache: "
                f"{stats['hits']} hits ({stats['hit_time_s'] * 1e3:.2f} ms), "
                f"{stats['misses']} misses "
                f"({stats['miss_time_s'] * 1e3:.2f} ms), "
                f"{stats['orphans_removed']} orphans swept"
            )
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            print(f"metrics written to {write_metrics(recorder, metrics_out)}")
        trace_out = getattr(args, "trace_out", None)
        if trace_out:
            print(f"trace written to {write_trace(recorder, trace_out)}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
