"""Command-line interface for the reproduction.

Usage examples::

    repro-mec list
    repro-mec run fig4
    repro-mec run fig5 --runs 200 --horizon 100 --output results/fig5.json
    repro-mec run fig9 --nodes 60 --towers 80

``run`` prints a human-readable summary of the experiment result and can
optionally persist the full result as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments.registry import available_experiments, run_experiment
from .sim.config import SyntheticExperimentConfig, TraceExperimentConfig

__all__ = ["build_parser", "main"]

_SYNTHETIC_EXPERIMENTS = {
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation-chaff-budget",
    "ablation-cost-privacy",
    "ablation-migration-policies",
}
_TRACE_EXPERIMENTS = {"fig8", "fig9", "fig10"}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-mec`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-mec",
        description="Reproduce the experiments of 'Location Privacy in Mobile Edge Clouds'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    run_parser.add_argument("--runs", type=int, default=None, help="Monte-Carlo runs")
    run_parser.add_argument("--horizon", type=int, default=None, help="slots per run")
    run_parser.add_argument("--cells", type=int, default=None, help="number of cells L")
    run_parser.add_argument("--nodes", type=int, default=None, help="taxi fleet size")
    run_parser.add_argument("--towers", type=int, default=None, help="tower count")
    run_parser.add_argument("--seed", type=int, default=2017, help="master seed")
    run_parser.add_argument(
        "--engine",
        choices=("batch", "loop"),
        default="batch",
        help="Monte-Carlo execution engine (identical results, batch is faster)",
    )
    run_parser.add_argument(
        "--output", type=str, default=None, help="write the result JSON to this path"
    )
    return parser


def _build_config(args: argparse.Namespace):
    """Construct the appropriate config object for the chosen experiment."""
    engine = getattr(args, "engine", "batch")
    if args.experiment in _TRACE_EXPERIMENTS:
        config = TraceExperimentConfig(seed=args.seed, engine=engine)
        return config.scaled(
            n_nodes=args.nodes, n_towers=args.towers, horizon=args.horizon
        )
    config = SyntheticExperimentConfig(
        seed=args.seed,
        n_cells=args.cells if args.cells is not None else 10,
        n_runs=args.runs if args.runs is not None else 1000,
        horizon=args.horizon if args.horizon is not None else 100,
        engine=engine,
    )
    return config


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    config = _build_config(args)
    result = run_experiment(args.experiment, config)
    for line in result.summary_lines():
        print(line)
    if args.output:
        path = result.save(args.output)
        print(f"result written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
