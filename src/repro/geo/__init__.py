"""Geographic substrate: points, tower placement and Voronoi quantisation."""

from .points import (
    EARTH_RADIUS_M,
    BoundingBox,
    GeoPoint,
    SAN_FRANCISCO_BBOX,
    haversine_distance,
    planar_distance,
    project_to_plane,
)
from .towers import TowerPlacementConfig, deduplicate_towers, generate_towers
from .voronoi import VoronoiQuantizer

__all__ = [
    "EARTH_RADIUS_M",
    "BoundingBox",
    "GeoPoint",
    "SAN_FRANCISCO_BBOX",
    "haversine_distance",
    "planar_distance",
    "project_to_plane",
    "TowerPlacementConfig",
    "deduplicate_towers",
    "generate_towers",
    "VoronoiQuantizer",
]
