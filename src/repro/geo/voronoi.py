"""Voronoi quantisation of geographic positions into MEC cells.

Each cell tower defines a Voronoi cell; a GPS fix is mapped to the cell of
its nearest tower.  This is exactly the quantisation the paper applies to
the taxi traces ("we quantize the node locations into 959 Voronoi cells
based on cell tower locations").  The resulting integer cell indices are
the state space of the Markov mobility model and the location alphabet
observed by the cyber eavesdropper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
from scipy.spatial import Delaunay, cKDTree

from .points import GeoPoint, project_to_plane

__all__ = ["VoronoiQuantizer"]


@dataclass
class VoronoiQuantizer:
    """Maps geographic points to the index of their nearest tower.

    Parameters
    ----------
    towers:
        Tower locations; tower ``i`` defines cell ``i``.
    reference:
        Projection reference point; defaults to the centroid of the towers.
    """

    towers: Sequence[GeoPoint]
    reference: GeoPoint | None = None
    _tree: cKDTree = field(init=False, repr=False)
    _tower_xy: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        towers = list(self.towers)
        if not towers:
            raise ValueError("at least one tower is required")
        self.towers = towers
        if self.reference is None:
            self.reference = GeoPoint(
                float(np.mean([t.latitude for t in towers])),
                float(np.mean([t.longitude for t in towers])),
            )
        self._tower_xy = project_to_plane(towers, reference=self.reference)
        self._tree = cKDTree(self._tower_xy)

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of Voronoi cells (= number of towers)."""
        return len(self.towers)

    @property
    def tower_planar_coordinates(self) -> np.ndarray:
        """Planar (metre) coordinates of the towers, ``(n_cells, 2)``."""
        return self._tower_xy.copy()

    def quantize_point(self, point: GeoPoint) -> int:
        """Cell index of a single geographic point."""
        xy = project_to_plane([point], reference=self.reference)
        _, index = self._tree.query(xy[0])
        return int(index)

    def quantize_points(self, points: Iterable[GeoPoint]) -> np.ndarray:
        """Cell indices for a sequence of geographic points."""
        points = list(points)
        if not points:
            return np.empty(0, dtype=np.int64)
        xy = project_to_plane(points, reference=self.reference)
        _, indices = self._tree.query(xy)
        return np.asarray(indices, dtype=np.int64)

    def quantize_trajectory(self, points: Sequence[GeoPoint]) -> np.ndarray:
        """Cell-index trajectory of a sequence of GPS fixes (alias)."""
        return self.quantize_points(points)

    def cell_adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix between Voronoi cells.

        Two cells are adjacent when their towers share a Delaunay edge,
        which is the standard dual of Voronoi adjacency.  Degenerate
        layouts with fewer than three non-collinear towers fall back to
        a fully-connected adjacency (minus self loops).
        """
        n = self.n_cells
        adjacency = np.zeros((n, n), dtype=bool)
        if n <= 1:
            return adjacency
        if n <= 3:
            adjacency[:] = True
            np.fill_diagonal(adjacency, False)
            return adjacency
        try:
            triangulation = Delaunay(self._tower_xy)
        except Exception:  # collinear or duplicate points
            adjacency[:] = True
            np.fill_diagonal(adjacency, False)
            return adjacency
        for simplex in triangulation.simplices:
            for i in range(len(simplex)):
                for j in range(i + 1, len(simplex)):
                    a, b = int(simplex[i]), int(simplex[j])
                    adjacency[a, b] = True
                    adjacency[b, a] = True
        return adjacency

    def cell_visit_histogram(self, cell_indices: Iterable[int]) -> np.ndarray:
        """Normalised histogram of cell visits (empirical spatial density)."""
        indices = np.asarray(list(cell_indices), dtype=np.int64)
        counts = np.zeros(self.n_cells, dtype=float)
        if indices.size:
            if indices.min() < 0 or indices.max() >= self.n_cells:
                raise ValueError("cell index out of range")
            np.add.at(counts, indices, 1.0)
            counts /= counts.sum()
        return counts
