"""Geographic point primitives for the trace-driven pipeline.

The taxi traces in the paper are GPS (latitude, longitude) fixes over the
San Francisco Bay area.  We work in two coordinate systems:

* geographic (lat, lon) degrees, the raw trace format;
* a local planar projection in metres (equirectangular around a reference
  latitude), which is accurate to well under a percent over the tens of
  kilometres the traces span and is what the Voronoi quantiser uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "BoundingBox",
    "haversine_distance",
    "project_to_plane",
    "planar_distance",
    "SAN_FRANCISCO_BBOX",
]

#: Mean Earth radius in metres (IUGG value).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class GeoPoint:
    """A geographic point in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude {self.latitude} out of range")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude {self.longitude} out of range")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned geographic bounding box."""

    min_latitude: float
    max_latitude: float
    min_longitude: float
    max_longitude: float

    def __post_init__(self) -> None:
        if self.min_latitude >= self.max_latitude:
            raise ValueError("min_latitude must be below max_latitude")
        if self.min_longitude >= self.max_longitude:
            raise ValueError("min_longitude must be below max_longitude")

    @property
    def center(self) -> GeoPoint:
        """Centre of the box."""
        return GeoPoint(
            (self.min_latitude + self.max_latitude) / 2.0,
            (self.min_longitude + self.max_longitude) / 2.0,
        )

    def contains(self, point: GeoPoint) -> bool:
        """Whether the point lies inside (or on the edge of) the box."""
        return (
            self.min_latitude <= point.latitude <= self.max_latitude
            and self.min_longitude <= point.longitude <= self.max_longitude
        )

    def clamp(self, point: GeoPoint) -> GeoPoint:
        """Project a point onto the box (component-wise clamping)."""
        return GeoPoint(
            min(max(point.latitude, self.min_latitude), self.max_latitude),
            min(max(point.longitude, self.min_longitude), self.max_longitude),
        )

    def sample_uniform(self, rng: np.random.Generator) -> GeoPoint:
        """Draw a uniformly random point inside the box."""
        return GeoPoint(
            float(rng.uniform(self.min_latitude, self.max_latitude)),
            float(rng.uniform(self.min_longitude, self.max_longitude)),
        )


#: Approximate bounding box of the CRAWDAD epfl/mobility (San Francisco)
#: taxi traces, matching the extent of Fig. 8(a) in the paper.
SAN_FRANCISCO_BBOX = BoundingBox(
    min_latitude=37.55,
    max_latitude=37.95,
    min_longitude=-122.60,
    max_longitude=-122.10,
)


def haversine_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in metres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def project_to_plane(
    points: Sequence[GeoPoint] | Iterable[GeoPoint], *, reference: GeoPoint
) -> np.ndarray:
    """Project geographic points to local planar metres.

    Uses an equirectangular projection centred at ``reference``:
    ``x = R * (lon - lon0) * cos(lat0)``, ``y = R * (lat - lat0)``.

    Returns an ``(n, 2)`` array of ``(x, y)`` coordinates in metres.
    """
    lat0 = math.radians(reference.latitude)
    lon0 = math.radians(reference.longitude)
    cos_lat0 = math.cos(lat0)
    rows = []
    for point in points:
        lat = math.radians(point.latitude)
        lon = math.radians(point.longitude)
        rows.append(
            (
                EARTH_RADIUS_M * (lon - lon0) * cos_lat0,
                EARTH_RADIUS_M * (lat - lat0),
            )
        )
    return np.asarray(rows, dtype=float).reshape(-1, 2)


def planar_distance(xy_a: np.ndarray, xy_b: np.ndarray) -> float:
    """Euclidean distance between two planar points in metres."""
    a = np.asarray(xy_a, dtype=float)
    b = np.asarray(xy_b, dtype=float)
    if a.shape != (2,) or b.shape != (2,):
        raise ValueError("planar points must be length-2 vectors")
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))
