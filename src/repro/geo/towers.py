"""Synthetic cell-tower placement.

The paper obtains real tower locations from antennasearch.com, ignores
towers within 100 m of each other, and ends up with 959 Voronoi cells
over the San Francisco area.  Without network access we substitute a
*clustered* random placement: towers are densest around a small number
of urban cores (downtown-like hot spots) and sparse elsewhere, then
deduplicated at the same 100 m radius.  This reproduces the property the
evaluation depends on — a highly non-uniform cell partition with small
central cells and large peripheral ones — which is what makes the
empirical mobility model spatially skewed (Fig. 8(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .points import BoundingBox, GeoPoint, SAN_FRANCISCO_BBOX, haversine_distance

__all__ = ["TowerPlacementConfig", "generate_towers", "deduplicate_towers"]


@dataclass(frozen=True)
class TowerPlacementConfig:
    """Configuration for the clustered tower placement generator.

    Parameters
    ----------
    n_towers:
        Target number of towers before deduplication.
    n_clusters:
        Number of urban cores around which towers concentrate.
    cluster_fraction:
        Fraction of towers assigned to clusters (remainder is uniform
        background over the bounding box).
    cluster_std_degrees:
        Standard deviation (degrees) of the Gaussian spread around each
        cluster centre.
    min_separation_m:
        Towers closer than this to an earlier tower are dropped
        (the paper uses 100 m).
    """

    n_towers: int = 400
    n_clusters: int = 6
    cluster_fraction: float = 0.7
    cluster_std_degrees: float = 0.02
    min_separation_m: float = 100.0

    def __post_init__(self) -> None:
        if self.n_towers < 1:
            raise ValueError("n_towers must be positive")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if self.cluster_std_degrees <= 0:
            raise ValueError("cluster_std_degrees must be positive")
        if self.min_separation_m < 0:
            raise ValueError("min_separation_m must be non-negative")


def generate_towers(
    config: TowerPlacementConfig | None = None,
    *,
    bbox: BoundingBox = SAN_FRANCISCO_BBOX,
    rng: np.random.Generator | None = None,
) -> list[GeoPoint]:
    """Generate a clustered, deduplicated set of tower locations.

    Returns at least one tower; the actual count after deduplication may be
    below ``config.n_towers``.
    """
    config = config or TowerPlacementConfig()
    rng = rng or np.random.default_rng(2017)
    centers = [bbox.sample_uniform(rng) for _ in range(config.n_clusters)]
    towers: list[GeoPoint] = []
    n_clustered = int(round(config.n_towers * config.cluster_fraction))
    for _ in range(n_clustered):
        center = centers[int(rng.integers(0, config.n_clusters))]
        candidate = GeoPoint(
            float(
                np.clip(
                    rng.normal(center.latitude, config.cluster_std_degrees),
                    bbox.min_latitude,
                    bbox.max_latitude,
                )
            ),
            float(
                np.clip(
                    rng.normal(center.longitude, config.cluster_std_degrees),
                    bbox.min_longitude,
                    bbox.max_longitude,
                )
            ),
        )
        towers.append(candidate)
    for _ in range(config.n_towers - n_clustered):
        towers.append(bbox.sample_uniform(rng))
    deduplicated = deduplicate_towers(towers, min_separation_m=config.min_separation_m)
    if not deduplicated:  # pragma: no cover - cannot happen for n_towers >= 1
        deduplicated = [bbox.center]
    return deduplicated


def deduplicate_towers(
    towers: Sequence[GeoPoint], *, min_separation_m: float = 100.0
) -> list[GeoPoint]:
    """Drop towers within ``min_separation_m`` of an earlier (kept) tower.

    Mirrors the paper's preprocessing ("ignoring towers within 100 meters
    of others").  The greedy first-come-first-kept rule is order dependent
    but stable, which is all the pipeline needs.
    """
    if min_separation_m < 0:
        raise ValueError("min_separation_m must be non-negative")
    kept: list[GeoPoint] = []
    for tower in towers:
        too_close = any(
            haversine_distance(tower, other) < min_separation_m for other in kept
        )
        if not too_close:
            kept.append(tower)
    return kept
