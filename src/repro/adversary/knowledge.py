"""Knowledge models: what the eavesdropper knows about user mobility.

The paper's detector is an *oracle*: it scores observations under the
true mobility chain (and, in a dynamic world, the true time-varying
regime schedule).  Real adversaries sit lower on the knowledge ladder —
they must learn a model from what they observe, or they keep using a
model the world has since drifted away from.  A knowledge model answers
one question: *which chain (and which per-step schedule, if any) does
the adversary score with?*

* :class:`OracleKnowledge` — the paper's assumption: the true chain and
  the true regime schedule, bit-identical to today's detectors;
* :class:`LearnedKnowledge` — fits an empirical chain online from the
  (possibly censored) observation plane via the estimation layer;
  optionally warm-started, so the adversary's model improves episode
  over episode across a Monte-Carlo sequence;
* :class:`StaleKnowledge` — regime-blind: knows the slot-0 base chain
  exactly but never learns the world switched regimes, so it keeps
  scoring a dynamic world with the static model.
"""

from __future__ import annotations

import abc

import numpy as np

from ..mobility.estimation import (
    chain_from_transition_counts,
    count_censored_transitions,
)
from ..mobility.markov import MarkovChain

__all__ = [
    "KnowledgeModel",
    "OracleKnowledge",
    "LearnedKnowledge",
    "StaleKnowledge",
]


class KnowledgeModel(abc.ABC):
    """Base class for eavesdropper knowledge models."""

    name: str = "abstract"
    #: Whether observations change the model (and therefore whether the
    #: order of episodes matters).
    stateful: bool = False

    def observe(self, censored_plane: np.ndarray, n_cells: int) -> None:
        """Ingest one censored observation plane (no-op unless learning)."""

    def reset(self) -> None:
        """Forget everything learned (no-op for stateless models)."""

    @abc.abstractmethod
    def scoring_model(
        self,
        true_chain: MarkovChain,
        transition_stack: np.ndarray | None,
    ) -> tuple[MarkovChain, np.ndarray | None]:
        """The (chain, per-step stack) the adversary scores with.

        ``true_chain`` and ``transition_stack`` describe the world's real
        mobility; each knowledge level decides how much of that truth it
        is entitled to.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class OracleKnowledge(KnowledgeModel):
    """The paper's eavesdropper: true chain, true regime schedule."""

    name = "oracle"

    def scoring_model(
        self,
        true_chain: MarkovChain,
        transition_stack: np.ndarray | None,
    ) -> tuple[MarkovChain, np.ndarray | None]:
        return true_chain, transition_stack


class StaleKnowledge(KnowledgeModel):
    """Regime-blind: the slot-0 base chain, with the regime schedule
    withheld.  In a static world this is exactly the oracle; under regime
    switches it scores every step with a model the world left behind."""

    name = "stale"

    def scoring_model(
        self,
        true_chain: MarkovChain,
        transition_stack: np.ndarray | None,
    ) -> tuple[MarkovChain, np.ndarray | None]:
        return true_chain, None


class LearnedKnowledge(KnowledgeModel):
    """An empirical chain fitted online from the observation plane.

    The adversary accumulates transition counts from every censored plane
    it observes (transitions are counted only when both endpoints are
    visible, so coverage gaps and churned slots never pollute the fit)
    and scores with the chain fitted from those counts — additive
    smoothing keeps it ergodic even before anything was seen, in which
    case it degrades to a uniform model.  Like the paper's trace-driven
    eavesdropper (Section VII-B1) it fits one population-level chain, so
    chaff rows contribute counts too.

    Parameters
    ----------
    smoothing:
        Additive smoothing of the fitted transition matrix.
    warm_start:
        Keep the counts across :meth:`observe` calls (the adversary
        improves episode over episode in a Monte-Carlo sequence).  When
        ``False`` each plane is fitted in isolation.
    """

    name = "learned"
    stateful = True

    def __init__(self, *, smoothing: float = 1e-3, warm_start: bool = True) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = float(smoothing)
        self.warm_start = bool(warm_start)
        self._counts: np.ndarray | None = None
        self._fitted: MarkovChain | None = None

    @property
    def transition_counts(self) -> np.ndarray | None:
        """The accumulated count matrix (``None`` before any observation)."""
        return self._counts

    @property
    def n_observed_transitions(self) -> int:
        """Total transitions the model has been fitted on."""
        return 0 if self._counts is None else int(self._counts.sum())

    def observe(self, censored_plane: np.ndarray, n_cells: int) -> None:
        fresh = count_censored_transitions(censored_plane, n_cells)
        if self._counts is None or not self.warm_start:
            self._counts = fresh
        else:
            if self._counts.shape != fresh.shape:
                raise ValueError(
                    "observation plane cell count changed mid-learning: "
                    f"had {self._counts.shape[0]} cells, got {n_cells}"
                )
            self._counts = self._counts + fresh
        self._fitted = None

    def reset(self) -> None:
        self._counts = None
        self._fitted = None

    def scoring_model(
        self,
        true_chain: MarkovChain,
        transition_stack: np.ndarray | None,
    ) -> tuple[MarkovChain, np.ndarray | None]:
        if self._fitted is None:
            counts = self._counts
            if counts is None:
                counts = np.zeros(
                    (true_chain.n_states, true_chain.n_states), dtype=np.int64
                )
            self._fitted = chain_from_transition_counts(
                counts, smoothing=self.smoothing
            )
        return self._fitted, None
