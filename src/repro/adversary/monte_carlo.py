"""Monte-Carlo harness for adversaries whose state evolves across runs.

The fleet's own Monte-Carlo (:func:`repro.mec.fleet.run_fleet_monte_carlo`)
evaluates the detector inside the worker that simulated each run — fine
for stateless detectors, wrong for a *learning* adversary, whose model
after run ``r`` depends on every plane it has seen before.  This module
splits the two phases:

1. :func:`simulate_fleet_reports` — produce the ``R`` fleet reports,
   sharded over workers exactly like the fleet Monte-Carlo (children
   respawned by index), so the report sequence is bit-identical for any
   worker count;
2. :func:`run_adversary_monte_carlo` — walk the reports *in run order*
   through one adversary, letting stateful knowledge accumulate episode
   over episode, and aggregate the same statistics the fleet reports.

Because the defender's world never depends on the adversary, one
simulated report sequence can be replayed against many adversaries
(pass ``reports=``) — which is how the ``adversary`` experiment sweeps
the whole knowledge/coverage grid while paying for the simulation once.
"""

from __future__ import annotations

import numpy as np

from ..mec.fleet import FleetReport, FleetSimulation, FleetStatistics
from ..sim.parallel import get_shared, parallel_map, resolve_workers, shard_slices
from ..sim.seeding import spawn_sequences_range
from .detector import AdversaryDetector

__all__ = ["simulate_fleet_reports", "run_adversary_monte_carlo"]


def _report_shard_worker(task) -> list[FleetReport]:
    """Simulate one contiguous shard of runs (module-level for pools).

    The simulation travels through the parallel layer's shared channel
    (shipped once per worker, not pickled into every task).
    """
    seed, start, stop, engine, chunk_slots, regions, run_stack = task
    simulation: FleetSimulation = get_shared()
    children = spawn_sequences_range(seed, start, stop)
    # The per-service "loop" reference has no stacked form; run_stack is
    # execution-only, so the per-episode fallback there changes nothing.
    step = max(run_stack if engine in ("batch", "stream") else 1, 1)
    reports: list[FleetReport] = []
    for base in range(0, len(children), step):
        group = children[base : base + step]
        if len(group) == 1:
            reports.append(
                simulation.run(
                    group[0],
                    engine=engine,
                    chunk_slots=chunk_slots,
                    regions=regions,
                )
            )
        else:
            reports.extend(
                simulation.run_stacked(
                    group,
                    engine=engine,
                    chunk_slots=chunk_slots,
                    regions=regions,
                ).to_reports()
            )
    return reports


def simulate_fleet_reports(
    simulation: FleetSimulation,
    *,
    n_runs: int,
    seed: "int | np.random.SeedSequence",
    workers: int = 1,
    engine: str = "batch",
    chunk_slots: int = 64,
    regions: int = 1,
    run_stack: int = 1,
) -> list[FleetReport]:
    """The ``R`` fleet reports of a Monte-Carlo, in run order.

    Run ``k`` derives from child ``k`` of ``seed`` regardless of the
    worker count, so the list is bit-identical for any ``workers``
    (``0`` = all cores).  ``chunk_slots`` and ``regions`` reach the
    streaming engine exactly as in :meth:`FleetSimulation.run`;
    ``run_stack`` folds that many runs of each shard into one pass of
    the slot kernel (:func:`repro.mec.runstack.run_stacked`).  All three
    are execution-only: the report list is bit-identical for every
    setting.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    if run_stack < 1:
        raise ValueError("run_stack must be positive")
    workers = min(resolve_workers(workers), n_runs)
    tasks = [
        (seed, shard.start, shard.stop, engine, chunk_slots, regions, run_stack)
        for shard in shard_slices(n_runs, workers)
    ]
    shards = parallel_map(
        _report_shard_worker, tasks, workers=len(tasks), shared=simulation
    )
    return [report for shard in shards for report in shard]


def run_adversary_monte_carlo(
    simulation: FleetSimulation,
    adversary: AdversaryDetector,
    *,
    n_runs: int,
    seed: "int | np.random.SeedSequence",
    workers: int = 1,
    engine: str = "batch",
    chunk_slots: int = 64,
    regions: int = 1,
    run_stack: int = 1,
    reports: "list[FleetReport] | None" = None,
) -> FleetStatistics:
    """Score one adversary over a fleet Monte-Carlo, run by run.

    The reports are simulated first (sharded over ``workers``,
    bit-identical for any count) and then evaluated *serially in run
    order*: a learning adversary observes plane ``k`` while scoring run
    ``k`` and carries its model into run ``k + 1``, so warm-started
    knowledge genuinely improves episode over episode — and the result
    is still worker-count invariant, because only the simulation phase
    is parallel.  Pass a precomputed ``reports`` list to replay the same
    world against several adversaries.

    The adversary's knowledge state is *not* reset here; start from a
    fresh adversary (or call ``adversary.knowledge.reset()``) when runs
    must not inherit earlier episodes.
    """
    if reports is None:
        reports = simulate_fleet_reports(
            simulation,
            n_runs=n_runs,
            seed=seed,
            workers=workers,
            engine=engine,
            chunk_slots=chunk_slots,
            regions=regions,
            run_stack=run_stack,
        )
    if len(reports) != n_runs:
        raise ValueError(f"expected {n_runs} reports, got {len(reports)}")
    tracking, detection, costs = [], [], []
    migrations, rejected, spilled, evicted, stranded = [], [], [], [], []
    for report in reports:
        evaluation = report.evaluate(simulation.chain, adversary)
        tracking.append(evaluation.tracking_per_user)
        detection.append(evaluation.detected_per_user)
        costs.append(report.per_user_cost)
        migrations.append(report.total_migrations)
        rejected.append(report.placement.rejected)
        spilled.append(report.placement.spilled)
        evicted.append(report.placement.evicted)
        stranded.append(report.placement.stranded)
    return FleetStatistics(
        tracking_runs=np.stack(tracking, axis=0),
        detection_runs=np.stack(detection, axis=0),
        cost_runs=np.stack(costs, axis=0),
        migrations_runs=np.array(migrations, dtype=np.int64),
        rejected_runs=np.array(rejected, dtype=np.int64),
        spilled_runs=np.array(spilled, dtype=np.int64),
        evicted_runs=np.array(evicted, dtype=np.int64),
        stranded_runs=np.array(stranded, dtype=np.int64),
    )
