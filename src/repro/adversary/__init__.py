"""Adversary subsystem: eavesdroppers with knowledge and coverage models.

The paper's eavesdropper is an idealisation — it knows the true mobility
model exactly and observes every service at every site.  This package
models adversaries as first-class agents on a two-dimensional ladder:

* **knowledge** (:mod:`~repro.adversary.knowledge`) — ``oracle`` (the
  paper's assumption), ``learned`` (fits an empirical chain online from
  the observation plane, optionally warm-started across episodes) and
  ``stale`` (regime-blind under dynamic worlds);
* **coverage** (:mod:`~repro.adversary.coverage`) — full, a seeded
  fraction of compromised sites, or a coalition merging several partial
  views.

:class:`~repro.adversary.detector.AdversaryDetector` composes one of
each into an ordinary trajectory detector, and
:func:`~repro.adversary.monte_carlo.run_adversary_monte_carlo` runs it
across a fleet Monte-Carlo with episode-over-episode learning.  The
registered ``adversary`` experiment sweeps the ladder.
"""

from .coverage import (
    CoalitionCoverage,
    CoverageModel,
    FullCoverage,
    SiteCoverage,
    coalition_coverage,
)
from .detector import AdversaryDetector
from .knowledge import (
    KnowledgeModel,
    LearnedKnowledge,
    OracleKnowledge,
    StaleKnowledge,
)
from .monte_carlo import run_adversary_monte_carlo, simulate_fleet_reports
from .score_cache import ScoreComponentCache

__all__ = [
    "ScoreComponentCache",
    "CoalitionCoverage",
    "CoverageModel",
    "FullCoverage",
    "SiteCoverage",
    "coalition_coverage",
    "AdversaryDetector",
    "KnowledgeModel",
    "LearnedKnowledge",
    "OracleKnowledge",
    "StaleKnowledge",
    "KNOWLEDGE_LEVELS",
    "make_knowledge",
    "run_adversary_monte_carlo",
    "simulate_fleet_reports",
]

#: Knowledge levels accepted by :func:`make_knowledge`.  Must stay in
#: sync with ``_KNOWLEDGE_LEVELS`` in :mod:`repro.sim.config` (the
#: experiment config cannot import this package without a cycle; a test
#: pins the two tuples equal).
KNOWLEDGE_LEVELS = ("oracle", "learned", "stale")


def make_knowledge(
    level: str, *, smoothing: float = 1e-3, warm_start: bool = True
) -> KnowledgeModel:
    """Instantiate a knowledge model by level name."""
    if level == "oracle":
        return OracleKnowledge()
    if level == "stale":
        return StaleKnowledge()
    if level == "learned":
        return LearnedKnowledge(smoothing=smoothing, warm_start=warm_start)
    raise ValueError(
        f"unknown knowledge level {level!r}; available: {KNOWLEDGE_LEVELS}"
    )
