"""Memoised score components for the adversary knowledge x coverage grid.

The adversary experiment replays one fixed fleet Monte-Carlo against a
whole grid of adversaries.  Every grid point re-scores the *same*
observation planes: the expensive pieces of a score — the stationary
gather table and the per-step transition log-likelihood table — depend
only on the (chain, transition stack, plane) triple, never on the
coverage mask.  :class:`ScoreComponentCache` memoises exactly those
pieces, keyed by content digests, so the coverage sweep pays for each
table once and every further point is a cheap mask-and-reduce.

Bit-identity.  The tables are built over ``clip(plane, 0, None)`` of the
*uncensored* plane.  Wherever the coverage mask is ``True`` the censored
plane equals the observed plane, so the gathered entries match the
uncached kernel's float for float; wherever it is ``False`` both kernels
replace the entry with exactly ``0.0`` (or drop it behind the
``observed > 0`` guard) before any reduction.  The remaining reductions
run over arrays of identical shape and identical values, so the cached
scores are bit-identical to :meth:`AdversaryDetector._masked_scores` —
the equivalence the cache tests pin.

Digests use only the public chain surface (``log_stationary`` and
``transition_edges()``), so a learned adversary's refitted chain gets a
fresh digest — cache entries invalidate by construction when the model
changes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from ..mobility.markov import MarkovChain

__all__ = ["ScoreComponentCache", "chain_digest", "array_digest"]


def array_digest(array: np.ndarray | None) -> str:
    """Content digest of an array (``"none"`` for absent optionals)."""
    if array is None:
        return "none"
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def chain_digest(chain: MarkovChain) -> str:
    """Content digest of a chain's scoring surface.

    Built from ``log_stationary`` and the sparse ``transition_edges()``
    triple — the same public surface every scorer reads — so two chains
    with equal dynamics digest equally and a refit digests differently.
    """
    rows, cols, probs = chain.transition_edges()
    digest = hashlib.sha256()
    digest.update(np.int64(chain.n_states).tobytes())
    digest.update(np.ascontiguousarray(chain.log_stationary).tobytes())
    digest.update(np.ascontiguousarray(rows).tobytes())
    digest.update(np.ascontiguousarray(cols).tobytes())
    digest.update(np.ascontiguousarray(probs).tobytes())
    return digest.hexdigest()


class ScoreComponentCache:
    """A small LRU of score-component tables, with hit/miss counters.

    Entries are arbitrary ``(label, *digests)`` keys mapping to the
    arrays the scoring kernels gather from.  The cache never inspects
    the values — correctness lives in the keys, which digest every
    input the cached computation reads.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The cached value for ``key``, computing and storing it on miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def stats(self) -> dict[str, int | float]:
        """Counters plus the hit ratio (0.0 before any lookup)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_ratio": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
