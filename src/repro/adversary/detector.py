"""The adversary as a detector: knowledge x coverage behind Eq. (1).

:class:`AdversaryDetector` composes a
:class:`~repro.adversary.knowledge.KnowledgeModel` (which chain the
adversary scores with) and a
:class:`~repro.adversary.coverage.CoverageModel` (which slots of the
observation plane it sees) into an ordinary
:class:`~repro.core.eavesdropper.detector.TrajectoryDetector`, so it
plugs into everything the paper's ML detector plugs into — the
single-user game, both fleet engines and the Monte-Carlo harness —
through the existing ``detect`` / ``detect_batch`` / ``detect_crowd``
interfaces.

Scoring.  A fully visible observation set is scored exactly like the ML
detector of Eq. (1) (same log-likelihoods, same tolerance, same
tie-break draw), which is what makes the ``oracle`` + full-coverage
adversary bit-identical to today's fleet path.  A censored set (coverage
gaps, churned services) is scored with the windowed per-observed-slot
machinery: each row's average log-likelihood per *visible* slot, with
transition terms only across contiguously visible steps — the
generalisation of the fleet's churned-plane scorer to arbitrary masks,
and identical to it on contiguous activity windows.

Every scoring path exists twice: vectorised (default) and a naive
per-row / per-decision Python reference (``loop_reference=True``); the
two are bit-identical, mirroring the repo's batch/loop engine contract.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.eavesdropper.detector import (
    BatchDetectionOutcome,
    DetectionOutcome,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)
from ..mobility.markov import MarkovChain
from ..numerics import safe_log
from .coverage import CoverageModel, FullCoverage
from .knowledge import KnowledgeModel, OracleKnowledge
from .score_cache import ScoreComponentCache, array_digest, chain_digest

__all__ = ["AdversaryDetector"]


class AdversaryDetector(TrajectoryDetector):
    """An eavesdropper with an explicit knowledge and coverage model.

    Parameters
    ----------
    knowledge:
        What the adversary knows about mobility (oracle / learned /
        stale).  Stateful knowledge (the learning adversary) observes
        every plane this detector scores, in call order.
    coverage:
        Which sites the adversary has compromised; slots outside the
        coverage are censored to ``-1`` before any scoring or learning.
    tolerance:
        Log-likelihood tolerance for tie breaking (applied to the
        per-observed-slot *rates* on censored planes).
    loop_reference:
        Score with the naive per-row / per-decision Python reference
        instead of the vectorised kernels.  Bit-identical; exists for
        the equivalence tests and the speedup benchmark.
    score_cache:
        Optional :class:`~repro.adversary.score_cache.ScoreComponentCache`
        memoising the per-(chain, stack, plane) gather tables a score is
        assembled from.  Share one cache across the detectors of a
        knowledge x coverage grid and every plane's tables are built
        once; scores stay bit-identical to the uncached kernels (the
        tables are coverage-independent, and the mask is applied after
        the gather exactly as the direct kernel applies it).  Ignored on
        the ``loop_reference`` path.
    """

    name = "adversary"
    #: The fleet's churned-plane evaluation hands the whole ``-1``-marked
    #: plane to detectors that declare this flag instead of refusing.
    supports_censored_planes = True

    def __init__(
        self,
        knowledge: KnowledgeModel | None = None,
        coverage: CoverageModel | None = None,
        *,
        tolerance: float = 1e-9,
        loop_reference: bool = False,
        score_cache: ScoreComponentCache | None = None,
    ) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.knowledge = knowledge if knowledge is not None else OracleKnowledge()
        self.coverage = coverage if coverage is not None else FullCoverage()
        self.tolerance = tolerance
        self.loop_reference = bool(loop_reference)
        self.score_cache = score_cache
        self.name = f"adversary[{self.knowledge.name}/{self.coverage.name}]"

    # ------------------------------------------------------------------
    # Scoring kernels
    # ------------------------------------------------------------------
    def _scores(
        self,
        chain: MarkovChain,
        stack: np.ndarray | None,
        censored: np.ndarray,
        mask: np.ndarray,
        observed: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decision scores of one ``(N, T)`` censored observation set.

        Fully visible sets get the plain Eq. (1) log-likelihoods (the
        bit-identity path with the ML detector); censored sets get the
        per-observed-slot rates.  Rows with no visible slot score
        ``-inf``, so an entirely blind adversary degrades to a uniform
        guess through the ordinary tie-break.  ``observed`` is the
        pre-coverage plane; when a :attr:`score_cache` is attached it
        keys the memoised gather tables, which are coverage-independent.
        """
        if (
            self.score_cache is not None
            and not self.loop_reference
            and observed is not None
        ):
            return self._cached_scores(chain, stack, observed, censored, mask)
        if mask.all():
            if self.loop_reference:
                return np.array(
                    [
                        trajectory_log_likelihoods(chain, censored[row : row + 1], stack)[0]
                        for row in range(censored.shape[0])
                    ],
                    dtype=float,
                )
            return trajectory_log_likelihoods(chain, censored, stack)
        if self.loop_reference:
            return np.array(
                [
                    self._masked_row_score(chain, stack, censored[row], mask[row])
                    for row in range(censored.shape[0])
                ],
                dtype=float,
            )
        return self._masked_scores(chain, stack, censored, mask)

    def _cached_scores(
        self,
        chain: MarkovChain,
        stack: np.ndarray | None,
        observed: np.ndarray,
        censored: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """:meth:`_scores` assembled from memoised gather tables.

        Bit-identical to the direct kernels: the tables are built over
        ``clip(observed, 0, None)``, and wherever the mask is ``True``
        the censored plane equals the observed plane, so every entry the
        reductions keep carries the exact float the uncached kernel
        would have gathered; masked-out entries are replaced by the same
        literal ``0.0`` (or discarded behind the same ``observed > 0``
        guard) before any sum.
        """
        cache = self.score_cache
        assert cache is not None
        c_d = chain_digest(chain)
        s_d = array_digest(stack)
        p_d = array_digest(observed)
        if mask.all():
            scores = cache.get_or_compute(
                ("ll_full", c_d, s_d, p_d),
                lambda: trajectory_log_likelihoods(chain, censored, stack),
            )
            return np.array(scores, dtype=float)
        horizon = censored.shape[-1]
        stat_table = cache.get_or_compute(
            ("stat", c_d, p_d),
            lambda: chain.log_stationary[np.clip(observed, 0, None)].astype(
                float
            ),
        )
        counts = mask.sum(axis=-1)
        first = np.argmax(mask, axis=-1)
        scores = np.take_along_axis(stat_table, first[..., None], axis=-1)[..., 0]
        if horizon > 1:

            def step_table() -> np.ndarray:
                prev = np.clip(observed[..., :-1], 0, None)
                nxt = np.clip(observed[..., 1:], 0, None)
                if stack is None:
                    return chain.log_transition_entries(prev, nxt)
                return safe_log(stack)[np.arange(horizon - 1), prev, nxt]

            steps = cache.get_or_compute(("steps", c_d, s_d, p_d), step_table)
            valid = mask[..., 1:] & mask[..., :-1]
            scores = scores + np.where(valid, steps, 0.0).sum(axis=-1)
        return np.where(counts > 0, scores / np.maximum(counts, 1), -np.inf)

    @staticmethod
    def _masked_scores(
        chain: MarkovChain,
        stack: np.ndarray | None,
        censored: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Vectorised per-observed-slot rates of a ``(..., N, T)`` tensor."""
        observed = mask.sum(axis=-1)
        horizon = censored.shape[-1]
        first = np.argmax(mask, axis=-1)
        first_cell = np.take_along_axis(censored, first[..., None], axis=-1)[..., 0]
        scores = chain.log_stationary[np.clip(first_cell, 0, None)].astype(float)
        if horizon > 1:
            prev = np.clip(censored[..., :-1], 0, None)
            nxt = np.clip(censored[..., 1:], 0, None)
            if stack is None:
                step_logs = chain.log_transition_entries(prev, nxt)
            else:
                step_logs = safe_log(stack)[np.arange(horizon - 1), prev, nxt]
            valid = mask[..., 1:] & mask[..., :-1]
            scores = scores + np.where(valid, step_logs, 0.0).sum(axis=-1)
        return np.where(observed > 0, scores / np.maximum(observed, 1), -np.inf)

    @staticmethod
    def _masked_row_score(
        chain: MarkovChain,
        stack: np.ndarray | None,
        row: np.ndarray,
        row_mask: np.ndarray,
    ) -> float:
        """Naive single-row reference of :meth:`_masked_scores`."""
        observed = row_mask.sum()
        if observed == 0:
            return -np.inf
        first = int(np.argmax(row_mask))
        score = float(chain.log_stationary[row[first]])
        if row.size > 1:
            prev = np.clip(row[:-1], 0, None)
            nxt = np.clip(row[1:], 0, None)
            if stack is None:
                step_logs = chain.log_transition_entries(prev, nxt)
            else:
                step_logs = safe_log(stack)[np.arange(row.size - 1), prev, nxt]
            valid = row_mask[1:] & row_mask[:-1]
            score = score + np.where(valid, step_logs, 0.0).sum()
        return score / observed

    def _candidates(self, scores: np.ndarray) -> np.ndarray:
        """Indices within ``tolerance`` of the best score (all indices when
        nothing was visible anywhere — a uniform guess)."""
        best = float(scores.max())
        if best == -np.inf:
            return np.arange(scores.size)
        return np.flatnonzero(scores >= best - self.tolerance)

    def _prepare(
        self, chain: MarkovChain, trajectories: np.ndarray, ndim: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != ndim or observed.size == 0:
            shape = "(N, T)" if ndim == 2 else "(R, N, T)"
            raise ValueError(f"trajectories must be a non-empty {shape} array")
        if observed.max() >= chain.n_states:
            raise ValueError("trajectories contain out-of-range cells")
        mask = self.coverage.visible_mask(observed, chain.n_states)
        censored = np.where(mask, observed, -1)
        return observed, mask, censored

    # ------------------------------------------------------------------
    # Detector interface
    # ------------------------------------------------------------------
    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> DetectionOutcome:
        observed, mask, censored = self._prepare(chain, trajectories, 2)
        self.knowledge.observe(censored, chain.n_states)
        model_chain, model_stack = self.knowledge.scoring_model(
            chain, transition_stack
        )
        scores = self._scores(model_chain, model_stack, censored, mask, observed)
        candidates = self._candidates(scores)
        chosen = int(rng.choice(candidates))
        return DetectionOutcome(
            chosen_index=chosen, scores=scores, candidate_indices=candidates
        )

    def detect_batch(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> BatchDetectionOutcome:
        """Score a whole ``(R, N, T)`` batch.

        Each run is one episode: stateful knowledge observes run ``r``'s
        plane before scoring it, exactly as a sequence of scalar
        :meth:`detect` calls would, so batched and looped execution stay
        bit-identical even while the adversary is learning.  Stateless
        knowledge is scored in one vectorised shot over the tensor.
        """
        observed, mask, censored = self._prepare(chain, trajectories, 3)
        rngs = list(rngs)
        n_runs = observed.shape[0]
        if len(rngs) != n_runs:
            raise ValueError("need exactly one generator per run")
        if self.knowledge.stateful:
            scores = np.empty(observed.shape[:2], dtype=float)
            for run in range(n_runs):
                self.knowledge.observe(censored[run], chain.n_states)
                model_chain, model_stack = self.knowledge.scoring_model(
                    chain, transition_stack
                )
                scores[run] = self._scores(
                    model_chain, model_stack, censored[run], mask[run],
                    observed[run],
                )
        else:
            model_chain, model_stack = self.knowledge.scoring_model(
                chain, transition_stack
            )
            if self.loop_reference:
                scores = np.stack(
                    [
                        self._scores(
                            model_chain, model_stack, censored[run], mask[run]
                        )
                        for run in range(n_runs)
                    ],
                    axis=0,
                )
            else:
                scores = self._batch_scores(model_chain, model_stack, censored, mask)
        chosen = np.empty(n_runs, dtype=np.int64)
        candidates_per_run: list[np.ndarray] = []
        for run in range(n_runs):
            candidates = self._candidates(scores[run])
            chosen[run] = int(rngs[run].choice(candidates))
            candidates_per_run.append(candidates)
        return BatchDetectionOutcome(
            chosen_indices=chosen,
            scores=scores,
            candidate_indices=tuple(candidates_per_run),
        )

    def _batch_scores(
        self,
        model_chain: MarkovChain,
        model_stack: np.ndarray | None,
        censored: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Vectorised scoring of an ``(R, N, T)`` tensor, dispatching each
        run to the same kernel the scalar path would pick for it."""
        full_runs = mask.reshape(mask.shape[0], -1).all(axis=1)
        scores = np.empty(censored.shape[:2], dtype=float)
        if full_runs.any():
            scores[full_runs] = trajectory_log_likelihoods(
                model_chain, censored[full_runs], model_stack
            )
        if not full_runs.all():
            rest = ~full_runs
            scores[rest] = self._masked_scores(
                model_chain, model_stack, censored[rest], mask[rest]
            )
        return scores

    def detect_crowd(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Many per-user decisions over one shared observation plane.

        The plane is one episode: the adversary observes it *once* (a
        learning adversary does not get to count the same plane per
        user) and scores it once; only the per-user tie-break draws
        differ, exactly like the ML detector's crowd path.
        """
        observed, mask, censored = self._prepare(chain, trajectories, 2)
        rngs = list(rngs)
        if not rngs:
            raise ValueError("need at least one generator")
        self.knowledge.observe(censored, chain.n_states)
        model_chain, model_stack = self.knowledge.scoring_model(
            chain, transition_stack
        )
        if self.loop_reference:
            # Naive reference: re-score the crowd for every decision (the
            # broadcast semantics of the base class), same draws.
            return np.array(
                [
                    int(
                        rng.choice(
                            self._candidates(
                                self._scores(
                                    model_chain, model_stack, censored, mask
                                )
                            )
                        )
                    )
                    for rng in rngs
                ],
                dtype=np.int64,
            )
        scores = self._scores(model_chain, model_stack, censored, mask, observed)
        candidates = self._candidates(scores)
        return np.array(
            [int(rng.choice(candidates)) for rng in rngs], dtype=np.int64
        )
