"""Coverage models: which sites the eavesdropper has compromised.

The paper's eavesdropper is omniscient — it reads the placement record of
every edge site in every slot.  A real MEC adversary controls a *subset*
of the deployment: the sites it has broken into (or the untrusted
operators it colludes with), and it observes a service only while that
service is placed on a compromised site.  A coverage model turns that
idea into a visibility mask over the observation plane:

* :class:`FullCoverage` — the paper's assumption; every slot of every
  service is visible;
* :class:`SiteCoverage` — a seeded subset of compromised sites covering
  a target fraction of the deployment.  The subset is a pure function of
  ``(seed, n_cells)``, and growing the fraction under one seed grows the
  subset monotonically (a nested coverage ladder);
* :class:`CoalitionCoverage` — several partial views merged: a service
  is visible whenever *any* coalition member sees it.

Censored slots are marked ``-1`` on the plane, the same sentinel the
dynamic-world fleet uses for a churned service's dead slots, so the
downstream scoring machinery treats "not placed anywhere visible" and
"did not exist" uniformly.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..sim.seeding import as_seed_sequence, spawn_sequences

__all__ = [
    "CoverageModel",
    "FullCoverage",
    "SiteCoverage",
    "CoalitionCoverage",
    "coalition_coverage",
]


class CoverageModel(abc.ABC):
    """Base class for eavesdropper coverage models."""

    name: str = "abstract"

    @abc.abstractmethod
    def compromised_cells(self, n_cells: int) -> np.ndarray:
        """Sorted int64 array of compromised cell indices for an
        ``n_cells``-site deployment."""

    def is_full(self, n_cells: int) -> bool:
        """Whether every site of an ``n_cells`` deployment is compromised."""
        return self.compromised_cells(n_cells).size == n_cells

    def coverage_fraction(self, n_cells: int) -> float:
        """Fraction of the deployment's sites that are compromised."""
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        return self.compromised_cells(n_cells).size / n_cells

    def visible_mask(self, trajectories: np.ndarray, n_cells: int) -> np.ndarray:
        """Boolean visibility mask of a ``(..., T)`` observed cell tensor.

        A slot is visible when the service exists there (cell ``>= 0``,
        dead slots of a churned plane stay hidden) *and* sits on a
        compromised site.
        """
        traj = np.asarray(trajectories, dtype=np.int64)
        exists = traj >= 0
        cells = self.compromised_cells(n_cells)
        if cells.size == n_cells:
            return exists
        covered = np.zeros(n_cells, dtype=bool)
        covered[cells] = True
        return exists & covered[np.clip(traj, 0, None)]

    def censor(self, trajectories: np.ndarray, n_cells: int) -> np.ndarray:
        """The censored plane: observed cells where visible, ``-1`` elsewhere."""
        traj = np.asarray(trajectories, dtype=np.int64)
        return np.where(self.visible_mask(traj, n_cells), traj, -1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class FullCoverage(CoverageModel):
    """The paper's omniscient observer: every site is compromised."""

    name = "full"

    def compromised_cells(self, n_cells: int) -> np.ndarray:
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        return np.arange(n_cells, dtype=np.int64)


class SiteCoverage(CoverageModel):
    """A seeded subset of compromised sites covering ``fraction`` of the MEC.

    Parameters
    ----------
    fraction:
        Target fraction of sites in ``(0, 1]``; the compromised count is
        ``round(fraction * n_cells)``, at least 1.
    seed:
        Integer or :class:`~numpy.random.SeedSequence` selecting *which*
        sites are compromised.  Integer seeds are mixed with the
        ``"coverage"`` key so a coverage mask never shares streams with
        the simulation it observes.  For a fixed seed the subsets are
        nested across fractions (one permutation, prefix-truncated), so a
        coverage sweep climbs one ladder instead of resampling sites.
    """

    name = "site"

    def __init__(
        self, fraction: float, seed: "int | np.random.SeedSequence" = 0
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)
        key = None if isinstance(seed, np.random.SeedSequence) else "coverage"
        self._seed = as_seed_sequence(seed, key=key)
        self._cells_cache: dict[int, np.ndarray] = {}

    def compromised_cells(self, n_cells: int) -> np.ndarray:
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        cached = self._cells_cache.get(n_cells)
        if cached is None:
            count = max(1, int(round(self.fraction * n_cells)))
            rng = np.random.default_rng(as_seed_sequence(self._seed))
            cached = np.sort(rng.permutation(n_cells)[:count]).astype(np.int64)
            self._cells_cache[n_cells] = cached
        return cached

    def __getstate__(self) -> dict:
        # The cache is derived state; drop it so pickled coverage models
        # (process-pool tasks) stay small and always recompute identically.
        state = dict(self.__dict__)
        state["_cells_cache"] = {}
        return state


class CoalitionCoverage(CoverageModel):
    """Several partial views merged into one: the union of the members'
    compromised sites (colluding operators pooling their records)."""

    name = "coalition"

    def __init__(self, members: Sequence[CoverageModel]) -> None:
        members = tuple(members)
        if not members:
            raise ValueError("a coalition needs at least one member")
        for member in members:
            if not isinstance(member, CoverageModel):
                raise TypeError("coalition members must be coverage models")
        self.members = members

    def compromised_cells(self, n_cells: int) -> np.ndarray:
        merged = np.unique(
            np.concatenate(
                [member.compromised_cells(n_cells) for member in self.members]
            )
        )
        return merged.astype(np.int64)


def coalition_coverage(
    n_members: int,
    fraction: float,
    seed: "int | np.random.SeedSequence" = 0,
) -> CoverageModel:
    """A coalition of ``n_members`` independent site-coverage views.

    Each member compromises its own seeded ``fraction`` of the sites
    (children of ``seed``, so coalitions are nested: members ``0..s-1``
    of the size-``s`` coalition are exactly the size-``s-1`` coalition
    plus one).  A single member reduces to plain :class:`SiteCoverage`.
    """
    if n_members < 1:
        raise ValueError("n_members must be positive")
    key = None if isinstance(seed, np.random.SeedSequence) else "coverage"
    children = spawn_sequences(seed, n_members, key=key)
    members = [SiteCoverage(fraction, child) for child in children]
    if n_members == 1:
        return members[0]
    return CoalitionCoverage(members)
