"""Capacity-aware service placement.

The paper's threat model lives in a *shared* MEC deployment: many users'
services co-hosted on the same edge sites (Section II).  Each
:class:`~repro.mec.topology.EdgeSite` declares a ``capacity`` — the number
of service instances it can host concurrently — and this module is the
component that actually enforces it.  Placement requests (instantiations
and migrations) are resolved against the current site loads:

* **admit** — the requested site has a free slot, the service lands there;
* **spill** — the requested site is full, the service lands on the nearest
  site (by hop distance, ties broken towards the lowest cell index) that
  still has a free slot;
* **reject** — no site can improve on where the service already is (every
  site is full, or the nearest free site is the service's own), so the
  migration request is dropped and the service stays put.

Within one slot, requests are resolved greedily in service-id order; a
slot freed by a later service is not visible to an earlier one.  That rule
makes the outcome deterministic and lets the hot path skip the per-service
resolution entirely whenever every requested site verifiably has room for
all of its arrivals (the common, uncontended case) — the vectorised fleet
slot-loop stays O(T) numpy work and only contended slots pay a Python
fallback.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .topology import MECTopology

__all__ = [
    "PlacementStats",
    "PlacementEngine",
    "RegionPartition",
    "ShardedPlacementEngine",
]


@dataclass
class PlacementStats:
    """Tally of placement decisions over one simulation run.

    ``admitted`` / ``spilled`` / ``rejected`` count voluntary requests
    (instantiations and migrations); ``evicted`` and ``stranded`` count
    the *forced* outcomes of a dynamic world — services pushed off a
    failed or shrunk site to the nearest free one, and services that had
    nowhere to go and stayed on the overloaded site.
    """

    admitted: int = 0
    spilled: int = 0
    rejected: int = 0
    evicted: int = 0
    stranded: int = 0

    @property
    def requests(self) -> int:
        """Total voluntary placement requests resolved."""
        return self.admitted + self.spilled + self.rejected

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for reports and JSON results."""
        return {
            "admitted": self.admitted,
            "spilled": self.spilled,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "stranded": self.stranded,
        }


class PlacementEngine:
    """Tracks per-site occupancy and resolves placement requests.

    The engine owns the load vector of one shared topology; every service
    of every user is instantiated and migrated through it, which is what
    turns ``EdgeSite.capacity`` from a declared attribute into an enforced
    constraint.
    """

    def __init__(self, topology: MECTopology) -> None:
        self.topology = topology
        self.capacities = topology.base_capacities()
        self.load = np.zeros(topology.n_cells, dtype=np.int64)
        self.stats = PlacementStats()
        self._hops = topology.hop_distance_matrix()

    # ------------------------------------------------------------------
    @property
    def total_capacity(self) -> int:
        """Sum of all site capacities."""
        return int(self.capacities.sum())

    def _nearest_free(self, cell: int) -> int | None:
        """Nearest site with a free slot (ties -> lowest cell index)."""
        free = np.flatnonzero(self.load < self.capacities)
        if free.size == 0:
            return None
        # ``free`` is ascending, so argmin's first-hit rule is the tiebreak.
        return int(free[np.argmin(self._hops[cell, free])])

    # ------------------------------------------------------------------
    def place_initial(self, desired_cells: np.ndarray) -> np.ndarray:
        """Admit all services at instantiation time, spilling where needed.

        Services are placed in id order at their requested cells; a full
        site spills the newcomer to the nearest free site.  The caller
        must have validated that the fleet fits the deployment at all
        (``len(desired_cells) <= total_capacity``) — instantiating a
        service that no site can host raises.
        """
        desired = np.asarray(desired_cells, dtype=np.int64)
        if desired.ndim != 1:
            raise ValueError("desired_cells must be 1-D")
        if desired.size and (
            desired.min() < 0 or desired.max() >= self.topology.n_cells
        ):
            raise ValueError("desired cells out of range")
        placed = np.empty_like(desired)
        for index, cell in enumerate(desired):
            cell = int(cell)
            if self.load[cell] < self.capacities[cell]:
                self.stats.admitted += 1
            else:
                spill = self._nearest_free(cell)
                if spill is None:
                    raise ValueError(
                        "deployment is full: cannot instantiate service "
                        f"{index} (total capacity {self.total_capacity})"
                    )
                cell = spill
                self.stats.spilled += 1
            self.load[cell] += 1
            placed[index] = cell
        return placed

    def resolve_moves(
        self, current_cells: np.ndarray, desired_cells: np.ndarray
    ) -> np.ndarray:
        """Resolve one slot's migration requests against site capacities.

        Returns the cell each service occupies after the slot.  The fast
        path applies when every requested site has room for all of its
        arrivals even before any departure frees a slot — then the greedy
        per-service resolution would admit everything, so the whole slot
        is settled with three bincounts.  Otherwise the slot falls back to
        the greedy id-order walk (admit / spill / reject per service).
        """
        current = np.asarray(current_cells, dtype=np.int64)
        desired = np.asarray(desired_cells, dtype=np.int64)
        if current.shape != desired.shape or current.ndim != 1:
            raise ValueError("current and desired cells must be equal-length 1-D")
        movers = np.flatnonzero(desired != current)
        if movers.size == 0:
            return current.copy()
        arrivals = np.bincount(desired[movers], minlength=self.topology.n_cells)
        if np.all(self.load + arrivals <= self.capacities):
            self.load += arrivals
            self.load -= np.bincount(
                current[movers], minlength=self.topology.n_cells
            )
            self.stats.admitted += int(movers.size)
            return desired.copy()
        placed = current.copy()
        for index in movers:
            source = int(current[index])
            target = int(desired[index])
            if self.load[target] >= self.capacities[target]:
                spill = self._nearest_free(target)
                if spill is None or spill == source:
                    self.stats.rejected += 1
                    continue
                target = spill
                self.stats.spilled += 1
            else:
                self.stats.admitted += 1
            self.load[source] -= 1
            self.load[target] += 1
            placed[index] = target
        return placed

    # ------------------------------------------------------------------
    # Dynamic-world operations: per-slot capacity views, forced
    # re-placement and mid-episode churn.
    # ------------------------------------------------------------------
    def set_capacities(self, capacities: np.ndarray) -> None:
        """Install one slot's effective capacity view.

        Unlike the declared :class:`~repro.mec.topology.EdgeSite`
        capacities, an effective capacity may be zero (a failed site).
        Installing a view never moves anything by itself — callers follow
        up with :meth:`evict_overloaded` to push out the excess load.
        """
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != (self.topology.n_cells,):
            raise ValueError("capacities must list one value per cell")
        if caps.min() < 0:
            raise ValueError("capacities must be non-negative")
        self.capacities = caps.copy()

    def evict_overloaded(
        self, current_cells: np.ndarray, placed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force excess services off sites whose load exceeds capacity.

        ``current_cells`` maps each service row to its cell and ``placed``
        marks the rows currently occupying a slot (dead rows are
        ignored).  For every overloaded site, in ascending cell order,
        the earliest-placed services (lowest row index) keep their slots
        up to the new capacity; the rest are evicted in ascending row
        order to the nearest site with a free slot (``stats.evicted``).
        A service with nowhere to go stays on the overloaded site as
        *stranded* (``stats.stranded``) — it retries on its next regular
        move, and the overload drains as capacity reappears.

        Returns ``(new_cells, moved_rows)``; moved rows are forced
        migrations the caller must charge.
        """
        current = np.asarray(current_cells, dtype=np.int64)
        overloaded = np.flatnonzero(self.load > self.capacities)
        if overloaded.size == 0:
            return current.copy(), np.empty(0, dtype=np.int64)
        new_cells = current.copy()
        moved: list[int] = []
        placed_rows = np.flatnonzero(placed)
        for cell in overloaded:
            cell = int(cell)
            hosted = placed_rows[current[placed_rows] == cell]
            keep = int(self.capacities[cell])
            for row in hosted[keep:]:
                self.load[cell] -= 1
                spill = self._nearest_free(cell)
                if spill is None:
                    self.load[cell] += 1
                    self.stats.stranded += 1
                    continue
                self.load[spill] += 1
                new_cells[row] = spill
                moved.append(int(row))
                self.stats.evicted += 1
        return new_cells, np.asarray(moved, dtype=np.int64)

    def admit_arrivals(self, desired_cells: np.ndarray) -> np.ndarray:
        """Place mid-episode arrivals, spilling or stranding where needed.

        Same admit/spill walk as :meth:`place_initial`, but a completely
        full deployment *strands* the newcomer at its requested cell
        (transient overload, drained by later moves) instead of raising —
        an arrival during a failure burst is a legal situation, not a
        configuration error.
        """
        desired = np.asarray(desired_cells, dtype=np.int64)
        if desired.ndim != 1:
            raise ValueError("desired_cells must be 1-D")
        if desired.size and (
            desired.min() < 0 or desired.max() >= self.topology.n_cells
        ):
            raise ValueError("desired cells out of range")
        placed = np.empty_like(desired)
        for index, cell in enumerate(desired):
            cell = int(cell)
            if self.load[cell] < self.capacities[cell]:
                self.stats.admitted += 1
            else:
                spill = self._nearest_free(cell)
                if spill is None:
                    self.stats.stranded += 1
                else:
                    cell = spill
                    self.stats.spilled += 1
            self.load[cell] += 1
            placed[index] = cell
        return placed

    def release(self, cells: np.ndarray) -> None:
        """Free the slots of departing services (one per entry)."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size:
            np.subtract.at(self.load, cells, 1)
            if self.load.min() < 0:
                raise ValueError("released more services than were placed")


# ----------------------------------------------------------------------
# Region-sharded placement: topology colouring + concurrent settling
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RegionPartition:
    """A deterministic colouring of the topology into contiguous regions.

    Seeds are chosen by farthest-point traversal on the hop-distance
    matrix starting from cell 0 (ties towards the lowest cell index);
    every cell is coloured by its nearest seed (ties towards the lowest
    seed index).  Pure function of ``(topology, n_regions)``, so every
    worker and every re-run colours identically.
    """

    labels: np.ndarray
    n_regions: int

    @classmethod
    def build(cls, topology: MECTopology, n_regions: int) -> "RegionPartition":
        """Colour ``topology`` into ``min(n_regions, L)`` regions."""
        if n_regions < 1:
            raise ValueError("n_regions must be positive")
        hops = topology.hop_distance_matrix()
        n_cells = topology.n_cells
        count = min(int(n_regions), n_cells)
        seeds = [0]
        while len(seeds) < count:
            nearest = hops[:, seeds].min(axis=1)
            nearest[seeds] = -1
            seeds.append(int(np.argmax(nearest)))
        seed_array = np.asarray(seeds, dtype=np.int64)
        # argmin's first-hit rule breaks nearest-seed ties towards the
        # lowest *seed index*, which is deterministic by construction.
        labels = np.argmin(hops[:, seed_array], axis=1).astype(np.int64)
        return cls(labels=labels, n_regions=count)

    def cells(self, region: int) -> np.ndarray:
        """The (ascending) cell indices coloured ``region``."""
        return np.flatnonzero(self.labels == region)


class _RegionFallback(Exception):
    """Raised when a sharded slot cannot be proven order-equivalent."""


class ShardedPlacementEngine(PlacementEngine):
    """A :class:`PlacementEngine` that settles independent regions concurrently.

    :meth:`resolve_moves` — the per-slot hot path — partitions each
    slot's movers by topology region.  A region is *clean* when every
    mover touching it has both source and target inside it; clean
    regions settle independently (optionally on a thread pool) because
    their greedy id-order walks read and write disjoint cells.  Movers
    that cross regions form the *residue*, settled afterwards in one
    global id-order walk.

    Bit-identity with the serial engine is enforced, not assumed: any
    spill whose landing cell cannot be *proven* to beat every cell
    outside the settling group (strictly fewer hops, or equal hops and a
    lower cell index — the serial tie-break order, checked against every
    foreign cell regardless of its current load) aborts the slot, which
    then replays through the plain serial walk from a snapshot.  The
    forced operations of a dynamic world (evictions, arrivals,
    releases) always run the inherited serial path.
    """

    def __init__(
        self, topology: MECTopology, *, regions: int = 1, workers: int = 1
    ) -> None:
        super().__init__(topology)
        if workers < 1:
            raise ValueError("workers must be positive")
        self.partition = RegionPartition.build(topology, regions)
        self.workers = int(workers)

    # ------------------------------------------------------------------
    def _spill_is_provable(
        self, target: int, spill: int, foreign: np.ndarray
    ) -> bool:
        """Whether ``spill`` beats every ``foreign`` cell for ``target``.

        Conservative: foreign cells are compared as if they were free,
        so a pass certifies the serial walk would pick ``spill`` no
        matter how foreign occupancy evolved mid-slot.
        """
        if foreign.size == 0:
            return True
        distance = int(self._hops[target, spill])
        foreign_hops = self._hops[target, foreign]
        return not bool(
            np.any(
                (foreign_hops < distance)
                | ((foreign_hops == distance) & (foreign < spill))
            )
        )

    def _nearest_free_within(self, cell: int, cells: np.ndarray) -> int | None:
        """Nearest free cell among ``cells`` (ties -> lowest index)."""
        free = cells[self.load[cells] < self.capacities[cells]]
        if free.size == 0:
            return None
        return int(free[np.argmin(self._hops[cell, free])])

    def _settle_region(
        self,
        region_cells: np.ndarray,
        foreign_cells: np.ndarray,
        movers: np.ndarray,
        current: np.ndarray,
        desired: np.ndarray,
    ) -> tuple[np.ndarray, PlacementStats]:
        """Settle one clean region's movers against its own cells only.

        Reads and writes ``self.load`` at ``region_cells`` alone, so
        concurrent regions never share state.  Raises
        :class:`_RegionFallback` when a local spill cannot be proven
        globally correct.
        """
        delta = PlacementStats()
        arrivals = np.bincount(desired[movers], minlength=self.load.size)
        in_region = np.zeros(self.load.size, dtype=bool)
        in_region[region_cells] = True
        fits = np.all(
            self.load[region_cells] + arrivals[region_cells]
            <= self.capacities[region_cells]
        )
        placed = current[movers].copy()
        if fits:
            # Regional fast path: the greedy walk would admit everything.
            self.load[region_cells] += arrivals[region_cells]
            departures = np.bincount(current[movers], minlength=self.load.size)
            self.load[region_cells] -= departures[region_cells]
            delta.admitted += int(movers.size)
            return desired[movers].copy(), delta
        for position, index in enumerate(movers):
            source = int(current[index])
            target = int(desired[index])
            if self.load[target] >= self.capacities[target]:
                spill = self._nearest_free_within(target, region_cells)
                if spill is None or not self._spill_is_provable(
                    target, spill, foreign_cells
                ):
                    raise _RegionFallback
                if spill == source:
                    delta.rejected += 1
                    continue
                target = spill
                delta.spilled += 1
            else:
                delta.admitted += 1
            self.load[source] -= 1
            self.load[target] += 1
            placed[position] = target
        return placed, delta

    def _settle_residue(
        self,
        movers: np.ndarray,
        current: np.ndarray,
        desired: np.ndarray,
        clean_cells: np.ndarray,
    ) -> tuple[np.ndarray, PlacementStats]:
        """Settle the cross-region movers in one global id-order walk.

        Runs after the clean regions, so any interaction with their
        cells — a spill landing inside one, or a spill that a clean cell
        could conceivably have beaten mid-slot — aborts to the serial
        path.
        """
        delta = PlacementStats()
        in_clean = np.zeros(self.load.size, dtype=bool)
        in_clean[clean_cells] = True
        placed = current[movers].copy()
        for position, index in enumerate(movers):
            source = int(current[index])
            target = int(desired[index])
            if self.load[target] >= self.capacities[target]:
                spill = self._nearest_free(target)
                if spill is None:
                    if clean_cells.size:
                        # A clean cell may have been transiently free in
                        # the true interleaved order; cannot prove not.
                        raise _RegionFallback
                    delta.rejected += 1
                    continue
                if in_clean[spill] or not self._spill_is_provable(
                    target, spill, clean_cells
                ):
                    raise _RegionFallback
                if spill == source:
                    delta.rejected += 1
                    continue
                target = spill
                delta.spilled += 1
            else:
                delta.admitted += 1
            self.load[source] -= 1
            self.load[target] += 1
            placed[position] = target
        return placed, delta

    # ------------------------------------------------------------------
    def resolve_moves(
        self, current_cells: np.ndarray, desired_cells: np.ndarray
    ) -> np.ndarray:
        """Region-sharded, bit-identical :meth:`PlacementEngine.resolve_moves`."""
        if self.partition.n_regions <= 1:
            return super().resolve_moves(current_cells, desired_cells)
        current = np.asarray(current_cells, dtype=np.int64)
        desired = np.asarray(desired_cells, dtype=np.int64)
        if current.shape != desired.shape or current.ndim != 1:
            raise ValueError("current and desired cells must be equal-length 1-D")
        movers = np.flatnonzero(desired != current)
        if movers.size == 0:
            return current.copy()
        arrivals = np.bincount(desired[movers], minlength=self.topology.n_cells)
        if np.all(self.load + arrivals <= self.capacities):
            # Global fast path, identical to the serial engine.
            self.load += arrivals
            self.load -= np.bincount(
                current[movers], minlength=self.topology.n_cells
            )
            self.stats.admitted += int(movers.size)
            return desired.copy()

        labels = self.partition.labels
        source_region = labels[current[movers]]
        target_region = labels[desired[movers]]
        crossing = source_region != target_region
        dirty = np.zeros(self.partition.n_regions, dtype=bool)
        dirty[source_region[crossing]] = True
        dirty[target_region[crossing]] = True
        clean_regions = [
            region
            for region in range(self.partition.n_regions)
            if not dirty[region] and bool(np.any(target_region == region))
        ]
        # Cells whose loads mutate concurrently while the residue waits:
        # exactly the cells of the regions being settled as clean tasks.
        active_clean = np.zeros(self.partition.n_regions, dtype=bool)
        active_clean[clean_regions] = True
        active_clean_cells = np.flatnonzero(active_clean[labels])

        load_snapshot = self.load.copy()
        stats_snapshot = PlacementStats(**self.stats.as_dict())
        placed = current.copy()
        try:
            tasks = []
            for region in clean_regions:
                region_movers = movers[target_region == region]
                region_cells = self.partition.cells(region)
                foreign = np.flatnonzero(labels != region)
                tasks.append((region_movers, region_cells, foreign))
            if self.workers > 1 and len(tasks) > 1:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    settled = list(
                        pool.map(
                            lambda task: self._settle_region(
                                task[1], task[2], task[0], current, desired
                            ),
                            tasks,
                        )
                    )
            else:
                settled = [
                    self._settle_region(cells, foreign, m, current, desired)
                    for m, cells, foreign in tasks
                ]
            # Residue: every mover not owned by a clean task — cross-region
            # movers plus same-region movers of regions they dirtied.
            residue = movers[dirty[target_region]]
            residue_result = None
            if residue.size:
                residue_result = self._settle_residue(
                    residue, current, desired, active_clean_cells
                )
        except _RegionFallback:
            self.load[:] = load_snapshot
            self.stats = stats_snapshot
            return super().resolve_moves(current, desired)
        # Commit: merge per-group outcomes in deterministic group order.
        for (region_movers, _, _), (cells_after, delta) in zip(
            tasks, settled, strict=True
        ):
            placed[region_movers] = cells_after
            self._merge_stats(delta)
        if residue_result is not None:
            cells_after, delta = residue_result
            placed[residue] = cells_after
            self._merge_stats(delta)
        return placed

    def _merge_stats(self, delta: PlacementStats) -> None:
        self.stats.admitted += delta.admitted
        self.stats.spilled += delta.spilled
        self.stats.rejected += delta.rejected
        self.stats.evicted += delta.evicted
        self.stats.stranded += delta.stranded
