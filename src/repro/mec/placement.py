"""Capacity-aware service placement.

The paper's threat model lives in a *shared* MEC deployment: many users'
services co-hosted on the same edge sites (Section II).  Each
:class:`~repro.mec.topology.EdgeSite` declares a ``capacity`` — the number
of service instances it can host concurrently — and this module is the
component that actually enforces it.  Placement requests (instantiations
and migrations) are resolved against the current site loads:

* **admit** — the requested site has a free slot, the service lands there;
* **spill** — the requested site is full, the service lands on the nearest
  site (by hop distance, ties broken towards the lowest cell index) that
  still has a free slot;
* **reject** — no site can improve on where the service already is (every
  site is full, or the nearest free site is the service's own), so the
  migration request is dropped and the service stays put.

Within one slot, requests are resolved greedily in service-id order; a
slot freed by a later service is not visible to an earlier one.  That rule
makes the outcome deterministic and lets the hot path skip the per-service
resolution entirely whenever every requested site verifiably has room for
all of its arrivals (the common, uncontended case) — the vectorised fleet
slot-loop stays O(T) numpy work and only contended slots pay a Python
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import MECTopology

__all__ = ["PlacementStats", "PlacementEngine"]


@dataclass
class PlacementStats:
    """Tally of placement decisions over one simulation run.

    ``admitted`` / ``spilled`` / ``rejected`` count voluntary requests
    (instantiations and migrations); ``evicted`` and ``stranded`` count
    the *forced* outcomes of a dynamic world — services pushed off a
    failed or shrunk site to the nearest free one, and services that had
    nowhere to go and stayed on the overloaded site.
    """

    admitted: int = 0
    spilled: int = 0
    rejected: int = 0
    evicted: int = 0
    stranded: int = 0

    @property
    def requests(self) -> int:
        """Total voluntary placement requests resolved."""
        return self.admitted + self.spilled + self.rejected

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for reports and JSON results."""
        return {
            "admitted": self.admitted,
            "spilled": self.spilled,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "stranded": self.stranded,
        }


class PlacementEngine:
    """Tracks per-site occupancy and resolves placement requests.

    The engine owns the load vector of one shared topology; every service
    of every user is instantiated and migrated through it, which is what
    turns ``EdgeSite.capacity`` from a declared attribute into an enforced
    constraint.
    """

    def __init__(self, topology: MECTopology) -> None:
        self.topology = topology
        self.capacities = topology.base_capacities()
        self.load = np.zeros(topology.n_cells, dtype=np.int64)
        self.stats = PlacementStats()
        self._hops = topology.hop_distance_matrix()

    # ------------------------------------------------------------------
    @property
    def total_capacity(self) -> int:
        """Sum of all site capacities."""
        return int(self.capacities.sum())

    def _nearest_free(self, cell: int) -> int | None:
        """Nearest site with a free slot (ties -> lowest cell index)."""
        free = np.flatnonzero(self.load < self.capacities)
        if free.size == 0:
            return None
        # ``free`` is ascending, so argmin's first-hit rule is the tiebreak.
        return int(free[np.argmin(self._hops[cell, free])])

    # ------------------------------------------------------------------
    def place_initial(self, desired_cells: np.ndarray) -> np.ndarray:
        """Admit all services at instantiation time, spilling where needed.

        Services are placed in id order at their requested cells; a full
        site spills the newcomer to the nearest free site.  The caller
        must have validated that the fleet fits the deployment at all
        (``len(desired_cells) <= total_capacity``) — instantiating a
        service that no site can host raises.
        """
        desired = np.asarray(desired_cells, dtype=np.int64)
        if desired.ndim != 1:
            raise ValueError("desired_cells must be 1-D")
        if desired.size and (
            desired.min() < 0 or desired.max() >= self.topology.n_cells
        ):
            raise ValueError("desired cells out of range")
        placed = np.empty_like(desired)
        for index, cell in enumerate(desired):
            cell = int(cell)
            if self.load[cell] < self.capacities[cell]:
                self.stats.admitted += 1
            else:
                spill = self._nearest_free(cell)
                if spill is None:
                    raise ValueError(
                        "deployment is full: cannot instantiate service "
                        f"{index} (total capacity {self.total_capacity})"
                    )
                cell = spill
                self.stats.spilled += 1
            self.load[cell] += 1
            placed[index] = cell
        return placed

    def resolve_moves(
        self, current_cells: np.ndarray, desired_cells: np.ndarray
    ) -> np.ndarray:
        """Resolve one slot's migration requests against site capacities.

        Returns the cell each service occupies after the slot.  The fast
        path applies when every requested site has room for all of its
        arrivals even before any departure frees a slot — then the greedy
        per-service resolution would admit everything, so the whole slot
        is settled with three bincounts.  Otherwise the slot falls back to
        the greedy id-order walk (admit / spill / reject per service).
        """
        current = np.asarray(current_cells, dtype=np.int64)
        desired = np.asarray(desired_cells, dtype=np.int64)
        if current.shape != desired.shape or current.ndim != 1:
            raise ValueError("current and desired cells must be equal-length 1-D")
        movers = np.flatnonzero(desired != current)
        if movers.size == 0:
            return current.copy()
        arrivals = np.bincount(desired[movers], minlength=self.topology.n_cells)
        if np.all(self.load + arrivals <= self.capacities):
            self.load += arrivals
            self.load -= np.bincount(
                current[movers], minlength=self.topology.n_cells
            )
            self.stats.admitted += int(movers.size)
            return desired.copy()
        placed = current.copy()
        for index in movers:
            source = int(current[index])
            target = int(desired[index])
            if self.load[target] >= self.capacities[target]:
                spill = self._nearest_free(target)
                if spill is None or spill == source:
                    self.stats.rejected += 1
                    continue
                target = spill
                self.stats.spilled += 1
            else:
                self.stats.admitted += 1
            self.load[source] -= 1
            self.load[target] += 1
            placed[index] = target
        return placed

    # ------------------------------------------------------------------
    # Dynamic-world operations: per-slot capacity views, forced
    # re-placement and mid-episode churn.
    # ------------------------------------------------------------------
    def set_capacities(self, capacities: np.ndarray) -> None:
        """Install one slot's effective capacity view.

        Unlike the declared :class:`~repro.mec.topology.EdgeSite`
        capacities, an effective capacity may be zero (a failed site).
        Installing a view never moves anything by itself — callers follow
        up with :meth:`evict_overloaded` to push out the excess load.
        """
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != (self.topology.n_cells,):
            raise ValueError("capacities must list one value per cell")
        if caps.min() < 0:
            raise ValueError("capacities must be non-negative")
        self.capacities = caps.copy()

    def evict_overloaded(
        self, current_cells: np.ndarray, placed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force excess services off sites whose load exceeds capacity.

        ``current_cells`` maps each service row to its cell and ``placed``
        marks the rows currently occupying a slot (dead rows are
        ignored).  For every overloaded site, in ascending cell order,
        the earliest-placed services (lowest row index) keep their slots
        up to the new capacity; the rest are evicted in ascending row
        order to the nearest site with a free slot (``stats.evicted``).
        A service with nowhere to go stays on the overloaded site as
        *stranded* (``stats.stranded``) — it retries on its next regular
        move, and the overload drains as capacity reappears.

        Returns ``(new_cells, moved_rows)``; moved rows are forced
        migrations the caller must charge.
        """
        current = np.asarray(current_cells, dtype=np.int64)
        overloaded = np.flatnonzero(self.load > self.capacities)
        if overloaded.size == 0:
            return current.copy(), np.empty(0, dtype=np.int64)
        new_cells = current.copy()
        moved: list[int] = []
        placed_rows = np.flatnonzero(placed)
        for cell in overloaded:
            cell = int(cell)
            hosted = placed_rows[current[placed_rows] == cell]
            keep = int(self.capacities[cell])
            for row in hosted[keep:]:
                self.load[cell] -= 1
                spill = self._nearest_free(cell)
                if spill is None:
                    self.load[cell] += 1
                    self.stats.stranded += 1
                    continue
                self.load[spill] += 1
                new_cells[row] = spill
                moved.append(int(row))
                self.stats.evicted += 1
        return new_cells, np.asarray(moved, dtype=np.int64)

    def admit_arrivals(self, desired_cells: np.ndarray) -> np.ndarray:
        """Place mid-episode arrivals, spilling or stranding where needed.

        Same admit/spill walk as :meth:`place_initial`, but a completely
        full deployment *strands* the newcomer at its requested cell
        (transient overload, drained by later moves) instead of raising —
        an arrival during a failure burst is a legal situation, not a
        configuration error.
        """
        desired = np.asarray(desired_cells, dtype=np.int64)
        if desired.ndim != 1:
            raise ValueError("desired_cells must be 1-D")
        if desired.size and (
            desired.min() < 0 or desired.max() >= self.topology.n_cells
        ):
            raise ValueError("desired cells out of range")
        placed = np.empty_like(desired)
        for index, cell in enumerate(desired):
            cell = int(cell)
            if self.load[cell] < self.capacities[cell]:
                self.stats.admitted += 1
            else:
                spill = self._nearest_free(cell)
                if spill is None:
                    self.stats.stranded += 1
                else:
                    cell = spill
                    self.stats.spilled += 1
            self.load[cell] += 1
            placed[index] = cell
        return placed

    def release(self, cells: np.ndarray) -> None:
        """Free the slots of departing services (one per entry)."""
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size:
            np.subtract.at(self.load, cells, 1)
            if self.load.min() < 0:
                raise ValueError("released more services than were placed")
