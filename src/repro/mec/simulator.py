"""End-to-end MEC simulation: user mobility, service migration, chaffs and
the eavesdropper's observation plane.

This is the "system view" of the paper's setting.  The trajectory-level
privacy game in :mod:`repro.core.game` evaluates strategies directly on
cell sequences; the MEC simulator reproduces the same observable through
the full machinery — services instantiated on MECs, migration requests,
cost accounting — so that the reproduction exercises the substrate the
paper's threat model lives in (and so the cost-privacy ablations have a
real cost signal to report).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.eavesdropper.detector import TrajectoryDetector
from ..core.strategies.base import ChaffStrategy
from ..mobility.markov import MarkovChain
from .costs import CostLedger, CostModel
from .migration import MigrationEngine, MigrationEvent
from .observer import EavesdropperObserver, ObservationMatrix
from .orchestrator import ChaffOrchestrator
from .policies import AlwaysFollowPolicy, MigrationPolicy
from .service import ServiceIdAllocator, ServiceInstance, ServiceKind
from .topology import MECTopology

__all__ = ["MECSimulationConfig", "MECSimulationReport", "MECSimulation"]


@dataclass(frozen=True)
class MECSimulationConfig:
    """Configuration of a single-user MEC simulation run."""

    horizon: int = 100
    n_chaffs: int = 1
    user_id: int = 0
    shuffle_observations: bool = True

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        if self.n_chaffs < 0:
            raise ValueError("n_chaffs must be non-negative")
        if self.user_id < 0:
            raise ValueError("user_id must be non-negative")


@dataclass
class MECSimulationReport:
    """Everything produced by one simulation run."""

    user_trajectory: np.ndarray
    observations: ObservationMatrix
    ledger: CostLedger
    events: list[MigrationEvent]
    real_service: ServiceInstance
    chaff_services: list[ServiceInstance] = field(default_factory=list)

    @property
    def horizon(self) -> int:
        """Number of simulated slots."""
        return int(self.user_trajectory.size)

    @property
    def total_cost(self) -> float:
        """Total migration + communication + chaff cost of the run."""
        return self.ledger.total

    def evaluate(
        self, chain: MarkovChain, detector: TrajectoryDetector, rng: np.random.Generator
    ) -> dict[str, float]:
        """Run a detector on the observations and score the eavesdropper.

        Returns a dict with ``tracking_accuracy``, ``detection_accuracy``
        (0/1 for this single run) and ``total_cost``.
        """
        outcome = detector.detect(chain, self.observations.trajectories, rng)
        chosen = self.observations.trajectories[outcome.chosen_index]
        tracked = chosen == self.user_trajectory
        return {
            "tracking_accuracy": float(np.mean(tracked)),
            "detection_accuracy": float(
                outcome.chosen_index == self.observations.user_row
            ),
            "total_cost": self.total_cost,
        }


class MECSimulation:
    """Simulates one user, his real service, his chaffs and the observer."""

    def __init__(
        self,
        topology: MECTopology,
        chain: MarkovChain,
        *,
        strategy: ChaffStrategy | None = None,
        policy: MigrationPolicy | None = None,
        cost_model: CostModel | None = None,
        config: MECSimulationConfig | None = None,
    ) -> None:
        if topology.n_cells != chain.n_states:
            raise ValueError("topology and mobility model disagree on cell count")
        self.topology = topology
        self.chain = chain
        self.strategy = strategy
        self.policy = policy or AlwaysFollowPolicy()
        self.cost_model = cost_model or CostModel()
        self.config = config or MECSimulationConfig()
        if self.config.n_chaffs > 0 and strategy is None:
            raise ValueError("a chaff strategy is required when n_chaffs > 0")

    # ------------------------------------------------------------------
    def run(
        self,
        rng: np.random.Generator,
        *,
        user_trajectory: np.ndarray | None = None,
    ) -> MECSimulationReport:
        """Execute one simulation run.

        If ``user_trajectory`` is omitted the user's movement is sampled
        from the mobility model for ``config.horizon`` slots.
        """
        config = self.config
        if user_trajectory is None:
            user = self.chain.sample_trajectory(config.horizon, rng)
        else:
            user = np.asarray(user_trajectory, dtype=np.int64)
            if user.ndim != 1 or user.size == 0:
                raise ValueError("user_trajectory must be a non-empty 1-D array")
            if user.min() < 0 or user.max() >= self.topology.n_cells:
                raise ValueError(
                    "user_trajectory contains cells outside the topology: "
                    f"cells must lie in [0, {self.topology.n_cells}) "
                    f"(= mobility model states), got values in "
                    f"[{int(user.min())}, {int(user.max())}]"
                )
        horizon = user.size

        engine = MigrationEngine(
            topology=self.topology,
            policy=self.policy,
            cost_model=self.cost_model,
            ledger=CostLedger(),
        )
        allocator = ServiceIdAllocator()
        real_service = ServiceInstance(
            service_id=allocator.allocate(),
            owner_id=config.user_id,
            kind=ServiceKind.REAL,
            cell=int(user[0]),
        )
        engine.register_instantiation(real_service, slot=0)

        chaff_services: list[ServiceInstance] = []
        plan = None
        if self.strategy is not None and config.n_chaffs > 0:
            orchestrator = ChaffOrchestrator(
                strategy=self.strategy,
                chain=self.chain,
                n_chaffs=config.n_chaffs,
                allocator=allocator,
            )
            plan = orchestrator.plan(config.user_id, user, rng)
            chaff_services = orchestrator.instantiate(plan, engine, slot=0)

        for slot in range(horizon):
            engine.step_real_service(real_service, int(user[slot]), slot)
            if plan is not None:
                orchestrator.step(plan, chaff_services, engine, slot)
            engine.close_slot()

        observer = EavesdropperObserver(shuffle=config.shuffle_observations)
        observations = observer.observe(
            [real_service, *chaff_services],
            real_service_id=real_service.service_id,
            rng=rng,
        )
        return MECSimulationReport(
            user_trajectory=user,
            observations=observations,
            ledger=engine.ledger,
            events=list(engine.events),
            real_service=real_service,
            chaff_services=chaff_services,
        )
