"""Cost models for service migration and chaff operation.

Service migrations in MECs trade a one-off *migration cost* against the
recurring *communication cost* of serving a user from a distant cell
(Section I-A, refs [24], [25], [5], [14]).  Chaff services additionally
consume MEC resources paid for by the user (Section II-B), so the
cost-privacy trade-off the paper defers to future work needs an explicit
ledger — which this module provides and the ablation benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .topology import MECTopology

__all__ = ["CostModel", "CostLedger"]


@dataclass(frozen=True)
class CostModel:
    """Linear-in-hops cost model.

    Attributes
    ----------
    migration_cost_per_hop:
        Cost of migrating a VM across one inter-MEC hop.
    migration_cost_fixed:
        Fixed cost per migration (image transfer, handoff signalling).
    communication_cost_per_hop:
        Per-slot cost of serving a user whose service is ``h`` hops away.
    chaff_running_cost:
        Per-slot cost of keeping one chaff instance alive.
    """

    migration_cost_per_hop: float = 1.0
    migration_cost_fixed: float = 0.5
    communication_cost_per_hop: float = 1.0
    chaff_running_cost: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "migration_cost_per_hop",
            "migration_cost_fixed",
            "communication_cost_per_hop",
            "chaff_running_cost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def migration_cost(self, topology: MECTopology, source: int, target: int) -> float:
        """Cost of migrating a service from ``source`` to ``target``."""
        if source == target:
            return 0.0
        hops = topology.hop_distance(source, target)
        return self.migration_cost_fixed + self.migration_cost_per_hop * hops

    def communication_cost(
        self, topology: MECTopology, user_cell: int, service_cell: int
    ) -> float:
        """Per-slot cost of serving a user from ``service_cell``."""
        hops = topology.hop_distance(user_cell, service_cell)
        return self.communication_cost_per_hop * hops


@dataclass
class CostLedger:
    """Accumulates the costs incurred during one simulation run."""

    migration_total: float = 0.0
    communication_total: float = 0.0
    chaff_total: float = 0.0
    migrations: int = 0
    slots: int = 0
    _per_slot: list[float] = field(default_factory=list)

    def charge_migration(self, amount: float) -> None:
        """Record a migration cost.

        Cost accounting only: whether a migration *happened* is decided by
        the migration engine from the actual service move and recorded via
        :meth:`count_migration` — under a zero-cost model a real migration
        charges nothing but must still be counted.
        """
        if amount < 0:
            raise ValueError("cost must be non-negative")
        self.migration_total += amount

    def count_migration(self, n: int = 1) -> None:
        """Record that ``n`` migrations actually happened (cost-independent)."""
        if n < 0:
            raise ValueError("migration count must be non-negative")
        self.migrations += n

    def charge_communication(self, amount: float) -> None:
        """Record one slot's communication cost for the real service."""
        if amount < 0:
            raise ValueError("cost must be non-negative")
        self.communication_total += amount

    def charge_chaff(self, amount: float) -> None:
        """Record one slot's chaff running cost."""
        if amount < 0:
            raise ValueError("cost must be non-negative")
        self.chaff_total += amount

    def close_slot(self) -> None:
        """Mark the end of a slot and snapshot the running total."""
        self.slots += 1
        self._per_slot.append(self.total)

    @property
    def total(self) -> float:
        """Total cost accumulated so far."""
        return self.migration_total + self.communication_total + self.chaff_total

    @property
    def per_slot_totals(self) -> list[float]:
        """Cumulative total after each closed slot."""
        return list(self._per_slot)

    def average_cost_per_slot(self) -> float:
        """Average total cost per closed slot (0 if no slot closed yet)."""
        if self.slots == 0:
            return 0.0
        return self.total / self.slots
