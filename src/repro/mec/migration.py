"""Migration engine: applies a policy to services and logs migration events.

The cyber eavesdropper of the paper observes exactly these events — which
MEC a service is instantiated at and where it migrates — so the event log
produced here is the ground truth behind the observation plane
(:mod:`repro.mec.observer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .costs import CostLedger, CostModel
from .policies import MigrationPolicy
from .service import ServiceInstance
from .topology import MECTopology

__all__ = ["MigrationEvent", "MigrationEngine"]


@dataclass(frozen=True)
class MigrationEvent:
    """A single observed migration (or instantiation) of a service."""

    slot: int
    service_id: int
    source_cell: int
    target_cell: int
    is_instantiation: bool = False

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError("slot must be non-negative")
        if self.source_cell < 0 or self.target_cell < 0:
            raise ValueError("cells must be non-negative")


@dataclass
class MigrationEngine:
    """Applies a migration policy to the real service and logs all movement.

    Chaff services are moved by the chaff orchestrator, not by the policy;
    the engine still records their movements as events so the observation
    plane sees real and chaff migrations through the same interface.
    """

    topology: MECTopology
    policy: MigrationPolicy
    cost_model: CostModel
    ledger: CostLedger = field(default_factory=CostLedger)
    events: list[MigrationEvent] = field(default_factory=list)

    def register_instantiation(self, service: ServiceInstance, slot: int) -> None:
        """Log the creation of a service at its initial cell."""
        self.events.append(
            MigrationEvent(
                slot=slot,
                service_id=service.service_id,
                source_cell=service.cell,
                target_cell=service.cell,
                is_instantiation=True,
            )
        )

    def step_real_service(
        self, service: ServiceInstance, user_cell: int, slot: int
    ) -> int:
        """Advance the real service one slot under the migration policy.

        Returns the cell the service occupies after the (possible)
        migration, charging migration and communication costs to the
        ledger.
        """
        if service.is_chaff:
            raise ValueError("step_real_service only handles the real service")
        target = self.policy.decide(self.topology, service.cell, user_cell)
        source = service.cell
        if service.migrate_to(target):
            cost = self.cost_model.migration_cost(self.topology, source, target)
            self.ledger.count_migration()
            self.ledger.charge_migration(cost)
            self.events.append(
                MigrationEvent(
                    slot=slot,
                    service_id=service.service_id,
                    source_cell=source,
                    target_cell=target,
                )
            )
        self.ledger.charge_communication(
            self.cost_model.communication_cost(self.topology, user_cell, service.cell)
        )
        service.record_slot()
        return service.cell

    def step_chaff_service(
        self, service: ServiceInstance, target_cell: int, slot: int
    ) -> int:
        """Move a chaff service to the cell chosen by the chaff strategy."""
        if not service.is_chaff:
            raise ValueError("step_chaff_service only handles chaff services")
        source = service.cell
        if service.migrate_to(target_cell):
            cost = self.cost_model.migration_cost(self.topology, source, target_cell)
            self.ledger.count_migration()
            self.ledger.charge_migration(cost)
            self.events.append(
                MigrationEvent(
                    slot=slot,
                    service_id=service.service_id,
                    source_cell=source,
                    target_cell=target_cell,
                )
            )
        self.ledger.charge_chaff(self.cost_model.chaff_running_cost)
        service.record_slot()
        return service.cell

    def close_slot(self) -> None:
        """Finish accounting for the current slot."""
        self.ledger.close_slot()

    def events_for_service(self, service_id: int) -> list[MigrationEvent]:
        """All events logged for one service, in slot order."""
        return [event for event in self.events if event.service_id == service_id]
