"""MEC network topology: edge sites, adjacency and hop distances.

Each MEC (edge cloud) covers one cell; the set of cells is the location
alphabet of the whole system (Section II-A).  The topology records which
cells are neighbours — used by the cost model (communication cost grows
with hop distance between a user and his service) and by migration
policies — and provides all-pairs hop distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..mobility.grid import GridTopology
from ..geo.voronoi import VoronoiQuantizer

__all__ = ["EdgeSite", "MECTopology"]


@dataclass(frozen=True)
class EdgeSite:
    """A single MEC edge site serving one cell.

    Attributes
    ----------
    cell:
        Cell index served by this site.
    capacity:
        Number of service instances the site can host concurrently.
    name:
        Human-readable label (defaults to ``"mec-<cell>"``).
    """

    cell: int
    capacity: int = 16
    name: str = ""

    def __post_init__(self) -> None:
        if self.cell < 0:
            raise ValueError("cell must be non-negative")
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if not self.name:
            object.__setattr__(self, "name", f"mec-{self.cell}")


@dataclass
class MECTopology:
    """The MEC deployment: one edge site per cell plus cell adjacency.

    Parameters
    ----------
    sites:
        One :class:`EdgeSite` per cell, ordered by cell index.
    adjacency:
        Boolean ``(L, L)`` adjacency matrix between cells.  Must be
        symmetric with a ``False`` diagonal.
    """

    sites: Sequence[EdgeSite]
    adjacency: np.ndarray
    _hops: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        sites = list(self.sites)
        if not sites:
            raise ValueError("topology needs at least one site")
        cells = [site.cell for site in sites]
        if cells != list(range(len(sites))):
            raise ValueError("sites must be ordered by cell index 0..L-1")
        self.sites = sites
        adjacency = np.asarray(self.adjacency, dtype=bool)
        n = len(sites)
        if adjacency.shape != (n, n):
            raise ValueError("adjacency matrix shape must match the number of sites")
        if not np.array_equal(adjacency, adjacency.T):
            raise ValueError("adjacency matrix must be symmetric")
        if np.any(np.diag(adjacency)):
            raise ValueError("adjacency matrix must have a False diagonal")
        self.adjacency = adjacency
        self._hops = self._all_pairs_hops(adjacency)

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells / edge sites."""
        return len(self.sites)

    def site(self, cell: int) -> EdgeSite:
        """The edge site serving ``cell``."""
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell {cell} out of range")
        return self.sites[cell]

    def hop_distance(self, a: int, b: int) -> int:
        """Hop distance between two cells (``L`` if disconnected)."""
        if not (0 <= a < self.n_cells and 0 <= b < self.n_cells):
            raise ValueError("cell index out of range")
        return int(self._hops[a, b])

    def hop_distance_matrix(self) -> np.ndarray:
        """All-pairs hop distances (copy)."""
        return self._hops.copy()

    def neighbors(self, cell: int) -> list[int]:
        """Cells adjacent to ``cell``."""
        if not 0 <= cell < self.n_cells:
            raise ValueError("cell index out of range")
        return [int(i) for i in np.flatnonzero(self.adjacency[cell])]

    def base_capacities(self) -> np.ndarray:
        """Declared per-site capacities as an int64 array (copy).

        These are the *static* capacities of the deployment; a dynamic
        world's per-slot effective capacities (failures, re-provisioning)
        are derived from them by
        :meth:`repro.world.timeline.Timeline.compile`.
        """
        return np.array([site.capacity for site in self.sites], dtype=np.int64)

    # ------------------------------------------------------------------
    @staticmethod
    def _all_pairs_hops(adjacency: np.ndarray) -> np.ndarray:
        """BFS-based all-pairs hop distances; unreachable pairs get ``n``."""
        n = adjacency.shape[0]
        hops = np.full((n, n), n, dtype=np.int64)
        neighbor_lists = [np.flatnonzero(adjacency[i]) for i in range(n)]
        for source in range(n):
            hops[source, source] = 0
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                next_frontier = []
                for node in frontier:
                    for neighbor in neighbor_lists[node]:
                        if hops[source, neighbor] > depth:
                            hops[source, neighbor] = depth
                            next_frontier.append(int(neighbor))
                frontier = next_frontier
        return hops

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform_sites(n_cells: int, capacity: int) -> list[EdgeSite]:
        """One :class:`EdgeSite` per cell, all with the same ``capacity``.

        The single construction-and-validation path shared by every
        shipped constructor (and by the dynamic world's capacity
        machinery, which derives per-slot views from these declared
        capacities).
        """
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        return [EdgeSite(cell=i, capacity=capacity) for i in range(n_cells)]

    @classmethod
    def complete(cls, n_cells: int, *, capacity: int = 16) -> "MECTopology":
        """Fully meshed deployment: every cell neighbours every other cell."""
        sites = cls.uniform_sites(n_cells, capacity)
        adjacency = np.ones((n_cells, n_cells), dtype=bool)
        np.fill_diagonal(adjacency, False)
        return cls(sites=sites, adjacency=adjacency)

    @classmethod
    def ring(cls, n_cells: int, *, capacity: int = 16) -> "MECTopology":
        """1-D ring of cells, matching the paper's random-walk models."""
        if n_cells < 2:
            raise ValueError("a ring needs at least two cells")
        sites = cls.uniform_sites(n_cells, capacity)
        adjacency = np.zeros((n_cells, n_cells), dtype=bool)
        for i in range(n_cells):
            adjacency[i, (i + 1) % n_cells] = True
            adjacency[i, (i - 1) % n_cells] = True
        np.fill_diagonal(adjacency, False)
        return cls(sites=sites, adjacency=adjacency)

    @classmethod
    def from_grid(cls, grid: GridTopology, *, capacity: int = 16) -> "MECTopology":
        """Build a topology from a 2-D grid (4-neighbourhood adjacency)."""
        n = grid.n_cells
        sites = cls.uniform_sites(n, capacity)
        adjacency = np.zeros((n, n), dtype=bool)
        for index in range(n):
            for neighbor in grid.neighbors(index):
                adjacency[index, neighbor] = True
        return cls(sites=sites, adjacency=adjacency)

    @classmethod
    def from_voronoi(
        cls, quantizer: VoronoiQuantizer, *, capacity: int = 16
    ) -> "MECTopology":
        """Build a topology from Voronoi cell adjacency (trace-driven setup)."""
        sites = cls.uniform_sites(quantizer.n_cells, capacity)
        adjacency = quantizer.cell_adjacency()
        return cls(sites=sites, adjacency=adjacency)
