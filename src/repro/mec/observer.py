"""The eavesdropper's observation plane.

A cyber eavesdropper inside the MEC system (a hacker or an untrusted MEC
provider) sees where every service instance runs in every slot, but not
which instance belongs to which user — content is indistinguishable, so
the only signal is mobility.  This module turns the per-service location
records of a simulation into the anonymous ``(N, T)`` observation matrix
the detectors consume, with an optional random shuffle of the service
order so that nothing about the user leaks through indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .service import ServiceInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..adversary.coverage import CoverageModel

__all__ = ["ObservationMatrix", "EavesdropperObserver", "censor_observations"]


@dataclass(frozen=True)
class ObservationMatrix:
    """Anonymous observations plus the hidden ground-truth labels.

    Attributes
    ----------
    trajectories:
        ``(N, T)`` array of observed service trajectories, in the (possibly
        shuffled) order presented to the eavesdropper.
    service_ids:
        Service id of each row (hidden from the eavesdropper; used by the
        harness to score detections).
    user_row:
        Row index of the real user's service (ground truth for scoring).
    """

    trajectories: np.ndarray
    service_ids: np.ndarray
    user_row: int

    def __post_init__(self) -> None:
        if self.trajectories.ndim != 2:
            raise ValueError("trajectories must be 2-D")
        if self.service_ids.shape[0] != self.trajectories.shape[0]:
            raise ValueError("service_ids length must match trajectory count")
        if not 0 <= self.user_row < self.trajectories.shape[0]:
            raise ValueError("user_row out of range")

    @property
    def n_services(self) -> int:
        """Number of observed services ``N``."""
        return int(self.trajectories.shape[0])

    @property
    def horizon(self) -> int:
        """Number of observed slots ``T``."""
        return int(self.trajectories.shape[1])

    def user_trajectory(self) -> np.ndarray:
        """The real user's trajectory (ground truth)."""
        return self.trajectories[self.user_row]


class EavesdropperObserver:
    """Collects service trajectories into an :class:`ObservationMatrix`."""

    def __init__(self, *, shuffle: bool = True) -> None:
        self.shuffle = shuffle

    def observe(
        self,
        services: Sequence[ServiceInstance],
        real_service_id: int,
        rng: np.random.Generator,
    ) -> ObservationMatrix:
        """Snapshot the trajectories of all services.

        Parameters
        ----------
        services:
            All service instances (real + chaffs) with recorded histories
            of equal length.
        real_service_id:
            The id of the real user's service (for ground-truth labelling).
        rng:
            Used for the presentation-order shuffle.
        """
        if not services:
            raise ValueError("no services to observe")
        lengths = {len(service.location_history) for service in services}
        if len(lengths) != 1:
            raise ValueError("all services must have equal-length histories")
        if lengths == {0}:
            raise ValueError("services have empty histories")
        trajectories = np.stack(
            [np.asarray(service.location_history, dtype=np.int64) for service in services]
        )
        service_ids = np.asarray(
            [service.service_id for service in services], dtype=np.int64
        )
        unique_ids, counts = np.unique(service_ids, return_counts=True)
        if unique_ids.size != service_ids.size:
            duplicates = unique_ids[counts > 1].tolist()
            raise ValueError(
                "observed services must have unique ids (the ground-truth "
                f"label would be ambiguous); duplicated ids: {duplicates}"
            )
        if real_service_id not in service_ids:
            raise ValueError("real_service_id not among the observed services")
        order = np.arange(len(services))
        if self.shuffle:
            order = rng.permutation(len(services))
        trajectories = trajectories[order]
        service_ids = service_ids[order]
        user_row = int(np.flatnonzero(service_ids == real_service_id)[0])
        return ObservationMatrix(
            trajectories=trajectories, service_ids=service_ids, user_row=user_row
        )


def censor_observations(
    matrix: ObservationMatrix, coverage: "CoverageModel", n_cells: int
) -> ObservationMatrix:
    """The plane a partial-coverage adversary actually sees.

    Slots where a service sits outside the coverage model's compromised
    sites are censored to ``-1`` (the same sentinel the dynamic-world
    fleet uses for dead slots), keeping the ground-truth labels intact so
    the harness can still score detections against the full record.
    """
    return ObservationMatrix(
        trajectories=coverage.censor(matrix.trajectories, n_cells),
        service_ids=matrix.service_ids,
        user_row=matrix.user_row,
    )
