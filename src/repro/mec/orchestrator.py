"""Chaff orchestration: launching and steering chaff services.

Section II-B: with the assistance of the network provider (or the service
provider acting on the user's behalf), the user can make a chaff service
follow an arbitrary trajectory by sending fake service requests and
migration requests to the corresponding MECs.  The orchestrator is that
control loop — it turns a chaff control strategy's planned trajectories
into instantiation and migration requests against the MEC simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.strategies.base import ChaffStrategy
from ..mobility.markov import MarkovChain
from .migration import MigrationEngine
from .service import ServiceIdAllocator, ServiceInstance, ServiceKind

__all__ = ["ChaffPlan", "ChaffOrchestrator"]


@dataclass(frozen=True)
class ChaffPlan:
    """Planned chaff trajectories for one user session."""

    owner_id: int
    trajectories: np.ndarray

    def __post_init__(self) -> None:
        if self.owner_id < 0:
            raise ValueError("owner_id must be non-negative")
        if self.trajectories.ndim != 2:
            raise ValueError("trajectories must be (n_chaffs, T)")

    @property
    def n_chaffs(self) -> int:
        """Number of chaff services in the plan."""
        return int(self.trajectories.shape[0])

    @property
    def horizon(self) -> int:
        """Planned number of slots."""
        return int(self.trajectories.shape[1])


@dataclass
class ChaffOrchestrator:
    """Creates chaff service instances and replays their planned trajectories."""

    strategy: ChaffStrategy
    chain: MarkovChain
    n_chaffs: int
    #: Simulation-scoped id source.  The owning simulation passes its own
    #: allocator so ids stay unique across all components (and across all
    #: users of a fleet); a standalone orchestrator defaults to ids from 1,
    #: leaving id 0 for the conventional real service.
    allocator: ServiceIdAllocator = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_chaffs < 0:
            raise ValueError("n_chaffs must be non-negative")
        if self.allocator is None:
            self.allocator = ServiceIdAllocator(next_id=1)

    def plan(
        self, owner_id: int, user_trajectory: np.ndarray, rng: np.random.Generator
    ) -> ChaffPlan:
        """Compute the chaff trajectories for a user session."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        if self.n_chaffs == 0:
            return ChaffPlan(
                owner_id=owner_id,
                trajectories=np.empty((0, user.size), dtype=np.int64),
            )
        trajectories = self.strategy.generate(self.chain, user, self.n_chaffs, rng)
        return ChaffPlan(owner_id=owner_id, trajectories=trajectories)

    def instantiate(
        self, plan: ChaffPlan, engine: MigrationEngine, slot: int = 0
    ) -> list[ServiceInstance]:
        """Create one chaff service per planned trajectory at its first cell."""
        services = []
        for index in range(plan.n_chaffs):
            service = ServiceInstance(
                service_id=self.allocator.allocate(),
                owner_id=plan.owner_id,
                kind=ServiceKind.CHAFF,
                cell=int(plan.trajectories[index, 0]),
                created_at=slot,
            )
            engine.register_instantiation(service, slot)
            services.append(service)
        return services

    def step(
        self,
        plan: ChaffPlan,
        services: list[ServiceInstance],
        engine: MigrationEngine,
        slot: int,
    ) -> None:
        """Issue the migration requests for slot ``slot`` of the plan."""
        if len(services) != plan.n_chaffs:
            raise ValueError("service list does not match the plan")
        if not 0 <= slot < plan.horizon:
            raise ValueError("slot outside the planned horizon")
        for index, service in enumerate(services):
            engine.step_chaff_service(
                service, int(plan.trajectories[index, slot]), slot
            )
