"""Run-stacked fleet engine: a stack of episodes in one slot-kernel pass.

:func:`~repro.mec.fleet.run_fleet_monte_carlo` and
:func:`~repro.adversary.monte_carlo.simulate_fleet_reports` historically
played their ``R`` episodes one at a time, each paying its own per-slot
Python loop through :class:`~repro.mec.fleet._FleetSlotKernel`.  This
module folds a stack of ``S = run_stack`` episodes into *one* pass of
that kernel: the per-slot state machine advances ``(S * N)``-wide
tensors instead of ``N``-wide ones, so the Python-level slot overhead is
paid once per slot instead of once per slot per episode.

Stacking is an execution knob, never a modelling change:

* **Sampling** draws every run's randomness from that run's own
  SeedSequence children in the canonical order (each user consumes only
  its own generator), so the stacked trajectories and chaff plans equal
  the per-episode ones bit for bit.
* **Placement** keeps one serial :class:`PlacementEngine` per run, but
  rebinds each engine's load vector to a view into one ``(S * L,)``
  stacked load array.  Each slot first tries to settle *all* runs with
  O(1) numpy calls: offsetting run ``r``'s cells by ``r * L`` makes one
  ``bincount`` the arrival count of the whole stack, and a run whose
  requested sites all verifiably have room is exactly a run whose own
  engine would have taken its vectorised fast path.  Only the runs that
  actually contend fall back to their engine's greedy id-order walk —
  the same walk, on the same view of the same load state, in the same
  order, as the per-episode path.
* **Evaluation** scores the whole ``(S, N, T)`` stack in one vectorised
  shot for the shipped scoring detectors and replays the per-run
  tie-break draws from each run's own evaluation seed, reproducing
  :meth:`FleetReport.evaluate` decision by decision.  Detectors the fast
  path does not know fall back to per-run reports and the standard
  evaluation, which is always available through
  :meth:`StackedRunOutcome.to_reports`.

``engine="stream"`` composes stacking with PR 8's bounded-memory
tiling: sampling walks bounded user blocks per run, the slot loop
advances ``run_stack x chunk_slots`` tiles (compiling dynamic-world
windows lazily per chunk), and completed chunk planes are spilled to an
ephemeral :class:`~repro.sim.cache.EpisodeStore` before being folded
into the outcome.
"""

from __future__ import annotations

import tempfile
from types import SimpleNamespace
from typing import Sequence

import numpy as np

from ..core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)
from ..sim.cache import EpisodeStore
from ..sim.seeding import as_seed_sequence
from ..telemetry import NULL_RECORDER
from .costs import CostLedger
from .fleet import (
    FleetReport,
    FleetSimulation,
    _episode_metrics,
    _FleetSlotKernel,
)
from .placement import PlacementEngine, PlacementStats, ShardedPlacementEngine

__all__ = ["StackedRunOutcome", "run_stacked", "supports_fast_metrics"]


def supports_fast_metrics(detector: "TrajectoryDetector") -> bool:
    """Whether :meth:`StackedRunOutcome.to_metrics` can score ``detector``
    in one vectorised shot (no per-run report materialisation).

    Exactly the shipped scoring detectors qualify; subclasses may
    override ``detect_crowd`` and must take the report fallback.
    """
    return type(detector) in (MaximumLikelihoodDetector, RandomGuessDetector)

#: Target element budget of one per-run sampling block in stream mode
#: (mirrors the streaming engine's bound).
_BLOCK_TARGET_ELEMS = 1 << 20

#: Engines with a stacked form (the per-service "loop" reference has none).
STACKED_ENGINES = ("batch", "stream")


class _StackedPlacement:
    """``S`` per-run placement engines over one stacked load array.

    Every run keeps its own serial engine (its stats, its capacity view,
    its greedy fallback), but the engines' load vectors are rebound to
    disjoint views of one ``(S * L,)`` array so the uncontended common
    case settles the entire stack with a handful of numpy calls.  All of
    the serial engine's load mutations are in-place (``+=``,
    ``np.subtract.at``, slice assignment), so delegating a contended run
    to its own engine operates on exactly the state the fast path left
    behind.
    """

    def __init__(
        self,
        simulation: FleetSimulation,
        n_services: int,
        run_stack: int,
        *,
        regions: int = 1,
        region_workers: int = 1,
    ) -> None:
        topology = simulation.topology
        self.n_cells = int(topology.n_cells)
        self.n_services = int(n_services)
        self.run_stack = int(run_stack)
        if regions > 1:
            self.engines: list[PlacementEngine] = [
                ShardedPlacementEngine(
                    topology, regions=regions, workers=region_workers
                )
                for _ in range(self.run_stack)
            ]
        else:
            self.engines = [
                PlacementEngine(topology) for _ in range(self.run_stack)
            ]
        # One hop matrix serves every run (hop_distance_matrix returns a
        # fresh copy per engine otherwise).
        shared_hops = self.engines[0]._hops
        self.load_st = np.zeros(
            self.run_stack * self.n_cells, dtype=self.engines[0].load.dtype
        )
        for index, engine in enumerate(self.engines):
            engine._hops = shared_hops
            engine.load = self.load_st[
                index * self.n_cells : (index + 1) * self.n_cells
            ]
        self.caps_st = np.tile(self.engines[0].capacities, self.run_stack)
        self._row_run = np.repeat(
            np.arange(self.run_stack, dtype=np.int64), self.n_services
        )

    # ------------------------------------------------------------------
    def _runs_of(self, rows: "np.ndarray | None") -> np.ndarray:
        return self._row_run if rows is None else self._row_run[rows]

    def _fits_by_run(self, arrivals: np.ndarray) -> np.ndarray:
        """Per-run: would this run's own engine take its fast path?"""
        stacked = (self.load_st + arrivals).reshape(self.run_stack, self.n_cells)
        return np.all(
            stacked <= self.caps_st.reshape(self.run_stack, self.n_cells), axis=1
        )

    def _credit_admitted(self, run_counts: np.ndarray) -> None:
        for run in np.flatnonzero(run_counts):
            self.engines[int(run)].stats.admitted += int(run_counts[run])

    # ------------------------------------------------------------------
    def place_initial_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        """Instantiate a row subset across the stack (id order per run)."""
        return self._settle_walk(rows, desired_sub, arrivals_walk=False)

    def admit_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        """Admit mid-episode arrivals across the stack."""
        return self._settle_walk(rows, desired_sub, arrivals_walk=True)

    def _settle_walk(
        self,
        rows: "np.ndarray | None",
        desired_sub: np.ndarray,
        *,
        arrivals_walk: bool,
    ) -> np.ndarray:
        """Shared fast path of the two admit-or-spill walks.

        When every requested site of a run verifiably has room for all
        of that run's newcomers, the serial walk admits each of them at
        its requested cell (at every step the walk sees strictly fewer
        arrivals than the final count it was checked against), so the
        whole run settles with one bincount; only runs that would
        actually spill replay their serial walk.
        """
        desired = np.asarray(desired_sub, dtype=np.int64)
        if desired.size == 0:
            return desired.copy()
        runs = self._runs_of(rows)
        cells = self.n_cells
        arrivals = np.bincount(
            desired + runs * cells, minlength=self.load_st.size
        )
        fits = self._fits_by_run(arrivals)
        result = np.empty(desired.size, dtype=np.int64)
        fast = np.flatnonzero(fits[runs])
        if fast.size:
            fast_runs = runs[fast]
            self.load_st += np.bincount(
                desired[fast] + fast_runs * cells, minlength=self.load_st.size
            )
            self._credit_admitted(
                np.bincount(fast_runs, minlength=self.run_stack)
            )
            result[fast] = desired[fast]
        contended = np.bincount(runs, minlength=self.run_stack) > 0
        for run in np.flatnonzero(contended & ~fits):
            indices = np.flatnonzero(runs == run)
            engine = self.engines[int(run)]
            if arrivals_walk:
                result[indices] = engine.admit_arrivals(desired[indices])
            else:
                result[indices] = engine.place_initial(desired[indices])
        return result

    def resolve_rows(
        self,
        rows: "np.ndarray | None",
        current_sub: np.ndarray,
        desired_sub: np.ndarray,
    ) -> np.ndarray:
        """Resolve one slot's moves for the whole stack."""
        current = np.asarray(current_sub, dtype=np.int64)
        desired = np.asarray(desired_sub, dtype=np.int64)
        result = current.copy()
        movers = np.flatnonzero(desired != current)
        if movers.size == 0:
            return result
        runs = self._runs_of(rows)
        cells = self.n_cells
        mover_runs = runs[movers]
        arrivals = np.bincount(
            desired[movers] + mover_runs * cells, minlength=self.load_st.size
        )
        fits = self._fits_by_run(arrivals)
        fast_movers = movers[fits[mover_runs]]
        if fast_movers.size:
            fast_runs = runs[fast_movers]
            self.load_st += np.bincount(
                desired[fast_movers] + fast_runs * cells,
                minlength=self.load_st.size,
            )
            self.load_st -= np.bincount(
                current[fast_movers] + fast_runs * cells,
                minlength=self.load_st.size,
            )
            self._credit_admitted(
                np.bincount(fast_runs, minlength=self.run_stack)
            )
            fast_rows = fits[runs]
            result[fast_rows] = desired[fast_rows]
        moving = np.bincount(mover_runs, minlength=self.run_stack) > 0
        for run in np.flatnonzero(moving & ~fits):
            indices = np.flatnonzero(runs == run)
            result[indices] = self.engines[int(run)].resolve_moves(
                current[indices], desired[indices]
            )
        return result

    def release_rows(self, rows: np.ndarray, cells_at_rows: np.ndarray) -> None:
        """Free the slots of departing services across the stack."""
        cells = np.asarray(cells_at_rows, dtype=np.int64)
        if cells.size == 0:
            return
        np.subtract.at(
            self.load_st, cells + self._row_run[rows] * self.n_cells, 1
        )
        if self.load_st.min() < 0:
            raise ValueError("released more services than were placed")

    def evict_rows(
        self, cells: np.ndarray, placed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force excess services off shrunk sites, run by run."""
        overloaded = np.flatnonzero(self.load_st > self.caps_st)
        if overloaded.size == 0:
            return cells.copy(), np.empty(0, dtype=np.int64)
        new_cells = cells.copy()
        moved_parts: list[np.ndarray] = []
        span = self.n_services
        for run in np.unique(overloaded // self.n_cells):
            run = int(run)
            rows = slice(run * span, (run + 1) * span)
            sub_new, sub_moved = self.engines[run].evict_overloaded(
                cells[rows], placed[rows]
            )
            new_cells[rows] = sub_new
            if sub_moved.size:
                moved_parts.append(sub_moved + run * span)
        if not moved_parts:
            return new_cells, np.empty(0, dtype=np.int64)
        return new_cells, np.concatenate(moved_parts)

    def set_capacities(self, caps_col: np.ndarray) -> None:
        """Install one slot's capacity view on every run's engine."""
        for engine in self.engines:
            engine.set_capacities(caps_col)
        self.caps_st = np.tile(self.engines[0].capacities, self.run_stack)


class _StackedFleetView:
    """Duck-typed stand-in the slot kernel sees: an ``S``-times-wider fleet.

    The kernel only reads ``config.n_users`` (to size its per-user
    totals), the cost model, the hop matrix and the vectorised policy
    decision — all row-independent, so the real simulation's bound
    methods serve the stacked arrays unchanged.
    """

    def __init__(self, simulation: FleetSimulation, run_stack: int) -> None:
        self.config = SimpleNamespace(
            n_users=simulation.config.n_users * run_stack
        )
        self.cost_model = simulation.cost_model
        self._hops = simulation._hops
        self._decide_real_targets = simulation._decide_real_targets


class _StackedSlotKernel(_FleetSlotKernel):
    """The slot kernel with its placement hooks rerouted to the stack."""

    def __init__(
        self,
        view: _StackedFleetView,
        owners_st: np.ndarray,
        is_real_st: np.ndarray,
        stacked: _StackedPlacement,
    ) -> None:
        super().__init__(view, owners_st, is_real_st, stacked.engines[0])  # type: ignore[arg-type]
        self.stack_placement = stacked

    def _place_initial_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        return self.stack_placement.place_initial_rows(rows, desired_sub)

    def _admit_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        return self.stack_placement.admit_rows(rows, desired_sub)

    def _release_rows(self, rows: np.ndarray) -> None:
        self.stack_placement.release_rows(rows, self.cells[rows])

    def _resolve_rows(
        self,
        rows: "np.ndarray | None",
        current_sub: np.ndarray,
        desired_sub: np.ndarray,
    ) -> np.ndarray:
        return self.stack_placement.resolve_rows(rows, current_sub, desired_sub)

    def _evict_overloaded(
        self, placed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.stack_placement.evict_rows(self.cells, placed)

    def _set_capacities(self, caps_col: np.ndarray) -> None:
        self.stack_placement.set_capacities(caps_col)


class StackedRunOutcome:
    """Everything produced by one stacked pass over ``S`` episodes.

    Holds the stacked tensors plus each run's presentation order,
    evaluation seed and placement stats.  :meth:`to_reports` slices the
    stack back into ordinary per-run :class:`FleetReport`\\ s
    (bit-identical to :meth:`FleetSimulation.run`);
    :meth:`to_metrics` evaluates a detector against every run without
    materialising the reports, reproducing
    :meth:`FleetReport.evaluate`'s decisions draw for draw.
    """

    def __init__(
        self,
        simulation: FleetSimulation,
        *,
        owners: np.ndarray,
        is_real: np.ndarray,
        service_ids: np.ndarray,
        users_st: np.ndarray,
        histories_st: np.ndarray,
        per_slot_st: np.ndarray | None,
        mig_total: np.ndarray,
        comm_total: np.ndarray,
        chaff_total: np.ndarray,
        migrations: np.ndarray,
        service_migrations_st: np.ndarray,
        placement_stats: list[PlacementStats],
        orders: list[np.ndarray],
        evaluation_seeds: list[np.random.SeedSequence],
        svc_windows: np.ndarray | None,
    ) -> None:
        self.simulation = simulation
        self.owners = owners
        self.is_real = is_real
        self.service_ids = service_ids
        self.users_st = users_st
        self.histories_st = histories_st
        self.per_slot_st = per_slot_st
        self.mig_total = mig_total
        self.comm_total = comm_total
        self.chaff_total = chaff_total
        self.migrations = migrations
        self.service_migrations_st = service_migrations_st
        self.placement_stats = placement_stats
        self.orders = orders
        self.evaluation_seeds = evaluation_seeds
        self.svc_windows = svc_windows

    @property
    def run_stack(self) -> int:
        """Number of stacked episodes ``S``."""
        return len(self.orders)

    # ------------------------------------------------------------------
    def to_reports(self) -> list[FleetReport]:
        """Slice the stack into per-run reports, in seed order."""
        if self.per_slot_st is None:
            raise ValueError(
                "per-slot cost series were not collected"
                " (run_stacked(..., collect_per_slot=False));"
                " reports need the full ledger"
            )
        sim = self.simulation
        n_users = sim.config.n_users
        horizon = sim.config.horizon
        n_services = self.owners.size
        reports = []
        for run in range(self.run_stack):
            base = run * n_users
            per_slot = self.per_slot_st[base : base + n_users]
            ledgers = [
                CostLedger(
                    migration_total=float(self.mig_total[base + user]),
                    communication_total=float(self.comm_total[base + user]),
                    chaff_total=float(self.chaff_total[base + user]),
                    migrations=int(self.migrations[base + user]),
                    slots=horizon,
                    _per_slot=per_slot[user].tolist(),
                )
                for user in range(n_users)
            ]
            rows = slice(run * n_services, (run + 1) * n_services)
            reports.append(
                sim._build_report(
                    self.users_st[base : base + n_users],
                    self.histories_st[rows],
                    self.owners,
                    self.is_real,
                    self.service_ids,
                    self.service_migrations_st[rows],
                    ledgers,
                    self.placement_stats[run],
                    None,  # type: ignore[arg-type]  # order is given below
                    self.evaluation_seeds[run],
                    self.svc_windows,
                    order=self.orders[run],
                )
            )
        return reports

    def to_metrics(
        self, detector: TrajectoryDetector, recorder=NULL_RECORDER
    ) -> list[tuple]:
        """Per-run Monte-Carlo metric tuples, without report materialisation.

        The fast path serves exactly the shipped scoring detectors
        (:class:`MaximumLikelihoodDetector`,
        :class:`RandomGuessDetector`): the stacked plane is scored in
        one vectorised shot in service-id order (log-likelihoods are
        row-independent, so permuting afterwards equals scoring the
        permuted plane), then each run replays its tie-break draws from
        its own evaluation seed.  Anything else falls back to
        :meth:`to_reports` and the standard per-run evaluation.
        """
        if not supports_fast_metrics(detector):
            sim = self.simulation
            return [
                _episode_metrics(sim, report, detector, recorder)
                for report in self.to_reports()
            ]
        with recorder.span("kernel/detect", runs=self.run_stack):
            return self._fast_metrics(detector)

    def _fast_metrics(self, detector: TrajectoryDetector) -> list[tuple]:
        from ..adversary.detector import AdversaryDetector

        sim = self.simulation
        stack_size = self.run_stack
        n_users = sim.config.n_users
        horizon = sim.config.horizon
        n_services = self.owners.size
        windows = self.svc_windows
        masked = windows is not None and (
            np.any(windows[:, 0] != 0) or np.any(windows[:, 1] != horizon)
        )
        guessing = isinstance(detector, RandomGuessDetector)
        scores_all: np.ndarray | None = None
        if not guessing:
            histories = self.histories_st.reshape(stack_size, n_services, horizon)
            if masked:
                scores_all = AdversaryDetector._masked_scores(
                    sim.chain, sim._stack, histories, histories >= 0
                )
            else:
                scores_all = trajectory_log_likelihoods(
                    sim.chain, histories, sim._stack
                )
        real_id = np.flatnonzero(self.is_real)
        if masked:
            user_windows = windows[real_id]
            slots = np.arange(horizon)
            in_window = (user_windows[:, :1] <= slots) & (
                slots < user_windows[:, 1:]
            )
            window_counts = in_window.sum(axis=1)
        per_user_cost_st = self.mig_total + self.comm_total + self.chaff_total
        metrics = []
        for run in range(stack_size):
            order = self.orders[run]
            row_of_service = np.empty_like(order)
            row_of_service[order] = np.arange(order.size)
            real_rows = row_of_service[real_id]
            rngs = [
                np.random.default_rng(child)
                for child in as_seed_sequence(
                    self.evaluation_seeds[run]
                ).spawn(n_users)
            ]
            if guessing:
                chosen = np.array(
                    [int(rng.integers(0, n_services)) for rng in rngs],
                    dtype=np.int64,
                )
            else:
                scores = scores_all[run][order]
                candidates = np.flatnonzero(
                    scores >= float(scores.max()) - detector.tolerance
                )
                # ``rng.choice(candidates)`` with replacement and no
                # weights draws exactly ``integers(0, len(candidates))``,
                # so indexing directly consumes the identical stream at a
                # fraction of the per-call overhead.
                size = candidates.size
                chosen = np.array(
                    [
                        int(candidates[rng.integers(0, size)])
                        for rng in rngs
                    ],
                    dtype=np.int64,
                )
            rows = slice(run * n_services, (run + 1) * n_services)
            base = run * n_users
            tracked = (
                self.histories_st[rows][order[chosen]]
                == self.users_st[base : base + n_users]
            )
            if masked:
                tracking = (tracked & in_window).sum(axis=1) / window_counts
            else:
                tracking = tracked.mean(axis=1)
            stats = self.placement_stats[run]
            metrics.append(
                (
                    tracking,
                    (chosen == real_rows).astype(float),
                    per_user_cost_st[base : base + n_users].copy(),
                    int(self.migrations[base : base + n_users].sum()),
                    stats.rejected,
                    stats.spilled,
                    stats.evicted,
                    stats.stranded,
                )
            )
        return metrics


# ----------------------------------------------------------------------
# The stacked runner
# ----------------------------------------------------------------------


def run_stacked(
    simulation: FleetSimulation,
    seeds: "Sequence[int | np.random.SeedSequence]",
    *,
    engine: str = "batch",
    chunk_slots: int = 64,
    regions: int = 1,
    region_workers: int = 1,
    collect_per_slot: bool = True,
    recorder=NULL_RECORDER,
) -> StackedRunOutcome:
    """Play ``len(seeds)`` episodes as one pass of the slot kernel.

    Bit-identical to running each seed through
    :meth:`FleetSimulation.run` with the same engine.  ``chunk_slots``
    and ``regions`` apply to ``engine="stream"`` only, exactly as in
    :meth:`FleetSimulation.run`.  ``collect_per_slot=False`` skips the
    per-(user, slot) cost series that only :meth:`StackedRunOutcome.to_reports`
    consumes — the Monte-Carlo metrics path reads the running totals
    instead, so callers headed straight for
    :meth:`StackedRunOutcome.to_metrics`'s fast path can drop the
    ``(S·M, T)`` ledger plane entirely.
    """
    if engine not in STACKED_ENGINES:
        raise ValueError(
            f"engine must be one of {STACKED_ENGINES}, got {engine!r}"
        )
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed to stack")
    stream = engine == "stream"
    if stream:
        if chunk_slots < 1:
            raise ValueError("chunk_slots must be positive")
        if regions < 1:
            raise ValueError("regions must be positive")
        if region_workers < 1:
            raise ValueError("region_workers must be positive")

    sim = simulation
    config = sim.config
    stack_size = len(seeds)
    n_users, horizon = config.n_users, config.horizon
    budgets = config.chaffs_per_user()
    owners, is_real, service_ids = sim._service_layout(budgets)
    n_services = owners.size

    store: EpisodeStore | None = None
    if stream:
        store = EpisodeStore(tempfile.mkdtemp(prefix="repro-runstack-"))
        users_st = store.create_plane("users", (stack_size * n_users, horizon))
        plans_st = store.create_plane(
            "plans", (stack_size * n_services, horizon)
        )
    else:
        users_st = np.empty((stack_size * n_users, horizon), dtype=np.int64)
        plans_st = np.empty((stack_size * n_services, horizon), dtype=np.int64)

    # Phase A: sample every run from its own SeedSequence children, in
    # the canonical order — every user draws only from its own generator
    # (trajectory randomness first, then that user's chaffs), so any
    # regrouping of the draws across runs is bit-identical to sampling
    # the runs one at a time.
    per_user = np.asarray([1 + budget for budget in budgets], dtype=np.int64)
    widest = int(per_user.max())
    shuffle_rngs: list[np.random.Generator] = []
    evaluation_seeds: list[np.random.SeedSequence] = []
    sample_token = recorder.begin(
        "kernel/sample", engine=engine, runs=stack_size, users=n_users
    )
    if stream:
        # Bounded working set: walk the streaming engine's per-run user
        # blocks and spill them straight into the store's planes.
        block = max(1, _BLOCK_TARGET_ELEMS // max(horizon * widest, 1))
        for run, seed in enumerate(seeds):
            root = as_seed_sequence(seed)
            children = root.spawn(n_users + 2)
            user_rngs = [
                np.random.default_rng(child) for child in children[:n_users]
            ]
            shuffle_rngs.append(np.random.default_rng(children[n_users]))
            evaluation_seeds.append(children[n_users + 1])
            row = run * n_services
            for start in range(0, n_users, block):
                stop = min(start + block, n_users)
                users_block, plans_block = sim._sample_block(
                    start, stop, user_rngs[start:stop]
                )
                users_st[run * n_users + start : run * n_users + stop] = (
                    users_block
                )
                plans_st[row : row + plans_block.shape[0]] = plans_block
                row += plans_block.shape[0]
    else:
        # Amortised sampling: collect every (run, user)'s raw randomness,
        # evolve all S*M trajectories in one vectorised shot, and generate
        # each (strategy, budget) group's chaffs across the whole stack in
        # one generate_batch call — the per-run evolve/generate overhead of
        # the per-episode path is paid once per stack instead.
        all_user_rngs: list[list[np.random.Generator]] = []
        initial_st = np.empty(stack_size * n_users, dtype=np.int64)
        uniforms_st = np.empty(
            (stack_size * n_users, max(horizon - 1, 0)), dtype=float
        )
        for run, seed in enumerate(seeds):
            root = as_seed_sequence(seed)
            children = root.spawn(n_users + 2)
            rngs = [np.random.default_rng(child) for child in children[:n_users]]
            all_user_rngs.append(rngs)
            shuffle_rngs.append(np.random.default_rng(children[n_users]))
            evaluation_seeds.append(children[n_users + 1])
            base = run * n_users
            for user, rng in enumerate(rngs):
                initial_st[base + user], uniforms_st[base + user] = (
                    sim._sample_user(user, rng)
                )
        users_st[:] = sim.chain.evolve_from_uniforms(
            initial_st, uniforms_st, transition_stack=sim._stack
        )
        first_row = np.zeros(n_users, dtype=np.int64)
        if n_users > 1:
            first_row[1:] = np.cumsum(per_user[:-1])
        run_base = np.arange(stack_size, dtype=np.int64) * n_services
        real_rows_st = (run_base[:, None] + first_row[None, :]).ravel()
        plans_st[real_rows_st] = users_st
        groups: dict[tuple[int, int], list[int]] = {}
        for user, budget in enumerate(budgets):
            if budget > 0:
                groups.setdefault((id(sim.strategies[user]), budget), []).append(
                    user
                )
        for (_, budget), members in groups.items():
            strategy = sim.strategies[members[0]]
            assert strategy is not None  # groups only hold budget > 0 users
            member_users = np.asarray(members, dtype=np.int64)
            user_rows = (
                np.arange(stack_size, dtype=np.int64)[:, None] * n_users
                + member_users[None, :]
            ).ravel()
            member_rngs = [
                all_user_rngs[run][user]
                for run in range(stack_size)
                for user in members
            ]
            chaffs = strategy.generate_batch(
                sim.chain, users_st[user_rows], budget, member_rngs
            )
            targets = (
                run_base[:, None] + first_row[member_users][None, :]
            ).ravel() + 1
            rows_idx = (
                targets[:, None] + np.arange(budget, dtype=np.int64)[None, :]
            ).ravel()
            plans_st[rows_idx] = chaffs.reshape(-1, horizon)
    recorder.end(sample_token)

    owners_st = np.concatenate(
        [owners + run * n_users for run in range(stack_size)]
    )
    is_real_st = np.tile(is_real, stack_size)

    stacked = _StackedPlacement(
        sim,
        n_services,
        stack_size,
        regions=regions if stream else 1,
        region_workers=region_workers,
    )
    kernel = _StackedSlotKernel(
        _StackedFleetView(sim, stack_size), owners_st, is_real_st, stacked
    )

    dynamic = sim._schedule is not None
    svc_windows = sim._schedule.user_windows[owners] if dynamic else None

    # Phase B: the slot loop, once for the whole stack.
    placement_token = recorder.begin(
        "kernel/placement", engine=engine, runs=stack_size, slots=horizon
    )
    per_slot_st: np.ndarray | None
    if not stream:
        per_slot_st = (
            np.empty((stack_size * n_users, horizon), dtype=float)
            if collect_per_slot
            else None
        )
        if dynamic:
            caps = sim._schedule.capacities
            active_u = sim._schedule.active_users()
            active_u_st = np.tile(active_u, (stack_size, 1))
            active_svc_st = np.tile(active_u[owners], (stack_size, 1))
            histories_st = np.full(
                (stack_size * n_services, horizon), -1, dtype=np.int64
            )
            kernel.begin_dynamic(plans_st[:, 0], active_svc_st[:, 0], caps[0])
            for slot in range(horizon):
                live_rows = kernel.step_dynamic(
                    users_st[:, slot],
                    plans_st[:, slot],
                    active_svc_st[:, slot],
                    caps[slot],
                    active_u_st[:, slot],
                )
                histories_st[live_rows, slot] = kernel.cells[live_rows]
                if per_slot_st is not None:
                    per_slot_st[:, slot] = kernel.slot_cost_totals()
        else:
            histories_st = np.empty(
                (stack_size * n_services, horizon), dtype=np.int64
            )
            kernel.begin_static(plans_st[:, 0])
            for slot in range(horizon):
                kernel.step_static(users_st[:, slot], plans_st[:, slot])
                histories_st[:, slot] = kernel.cells
                if per_slot_st is not None:
                    per_slot_st[:, slot] = kernel.slot_cost_totals()
        users_final = users_st
    else:
        assert store is not None
        n_chunks = -(-horizon // chunk_slots)
        for chunk in range(n_chunks):
            start = chunk * chunk_slots
            stop = min(start + chunk_slots, horizon)
            width = stop - start
            user_cols = np.asarray(users_st[:, start:stop])
            plan_cols = np.asarray(plans_st[:, start:stop])
            per_slot_chunk = (
                np.empty((stack_size * n_users, width), dtype=float)
                if collect_per_slot
                else None
            )
            if dynamic:
                window = sim.timeline.compile_window(
                    start,
                    stop,
                    horizon=horizon,
                    n_cells=sim.topology.n_cells,
                    n_users=n_users,
                    base_capacities=sim.topology.base_capacities(),
                    base_chain=sim.chain,
                )
                caps_w = window.capacities
                active_u_w = window.active_users()
                active_u_wst = np.tile(active_u_w, (stack_size, 1))
                active_svc_wst = np.tile(active_u_w[owners], (stack_size, 1))
                hist_chunk = np.full(
                    (stack_size * n_services, width), -1, dtype=np.int64
                )
                if start == 0:
                    kernel.begin_dynamic(
                        plan_cols[:, 0], active_svc_wst[:, 0], caps_w[0]
                    )
                for local in range(width):
                    live_rows = kernel.step_dynamic(
                        user_cols[:, local],
                        plan_cols[:, local],
                        active_svc_wst[:, local],
                        caps_w[local],
                        active_u_wst[:, local],
                    )
                    hist_chunk[live_rows, local] = kernel.cells[live_rows]
                    if per_slot_chunk is not None:
                        per_slot_chunk[:, local] = kernel.slot_cost_totals()
            else:
                hist_chunk = np.empty(
                    (stack_size * n_services, width), dtype=np.int64
                )
                if start == 0:
                    kernel.begin_static(plan_cols[:, 0])
                for local in range(width):
                    kernel.step_static(user_cols[:, local], plan_cols[:, local])
                    hist_chunk[:, local] = kernel.cells
                    if per_slot_chunk is not None:
                        per_slot_chunk[:, local] = kernel.slot_cost_totals()
            with recorder.span("kernel/spill", chunk=chunk):
                store.append_chunk("histories", chunk, hist_chunk)
                if per_slot_chunk is not None:
                    store.append_chunk("per_slot", chunk, per_slot_chunk)
        # Fold the spilled chunk shards back into the outcome tensors and
        # drop the ephemeral store.
        fill = -1 if dynamic else 0
        histories_st = np.full(
            (stack_size * n_services, horizon), fill, dtype=np.int64
        )
        for index, shard in store.iter_chunks("histories"):
            start = index * chunk_slots
            histories_st[:, start : start + shard.shape[1]] = shard
        if collect_per_slot:
            per_slot_st = np.empty((stack_size * n_users, horizon), dtype=float)
            for index, shard in store.iter_chunks("per_slot"):
                start = index * chunk_slots
                per_slot_st[:, start : start + shard.shape[1]] = shard
        else:
            per_slot_st = None
        users_final = np.array(users_st, dtype=np.int64)
        del users_st, plans_st
        store.destroy()
    recorder.end(placement_token)
    for engine_ in stacked.engines:
        recorder.record_stats("placement", engine_.stats.as_dict())

    # Phase C: each run's presentation permutation — the same single
    # draw from the same shuffle child as the per-episode path.
    orders = []
    for rng in shuffle_rngs:
        if config.shuffle_observations:
            orders.append(rng.permutation(n_services))
        else:
            orders.append(np.arange(n_services))

    return StackedRunOutcome(
        sim,
        owners=owners,
        is_real=is_real,
        service_ids=service_ids,
        users_st=users_final,
        histories_st=histories_st,
        per_slot_st=per_slot_st,
        mig_total=kernel.mig_total,
        comm_total=kernel.comm_total,
        chaff_total=kernel.chaff_total,
        migrations=kernel.migrations,
        service_migrations_st=kernel.service_migrations,
        placement_stats=[engine_.stats for engine_ in stacked.engines],
        orders=orders,
        evaluation_seeds=evaluation_seeds,
        svc_windows=svc_windows,
    )
