"""Streaming fleet engine: bounded-memory horizon chunks.

:class:`~repro.mec.fleet.FleetSimulation`'s batch engine materialises the
full ``(N, T)`` observation plane (and per-user ``(M, T)`` cost curves)
before anything is scored, which caps the reproduction at M≈10² users.
The paper's privacy guarantees are population effects — detection falls
like ~1/N as chaffs and crowd blend — so the interesting regime is
exactly the one the monolithic engine cannot reach.  This module runs
the *same* simulation as a streaming pipeline:

* **Sampling** walks the fleet in bounded user blocks through the shared
  :meth:`~repro.mec.fleet.FleetSimulation._sample_block` sampler and
  spills trajectories and chaff plans into disk-backed memmap planes of
  an :class:`~repro.sim.cache.EpisodeStore` (every user draws only from
  their own generator, so block sampling is bit-identical to whole-fleet
  sampling).
* **The slot loop** advances the horizon in fixed-size chunks of
  ``chunk_slots`` slots, driving the same
  :class:`~repro.mec.fleet._FleetSlotKernel` the batch engine drives —
  bit-identity by construction — while holding only ``(N, chunk)``
  planes; completed chunk planes and carry-over state snapshots are
  committed to the store, so an interrupted episode resumes from its
  last complete chunk.  Dynamic worlds compile their schedule lazily per
  chunk (:meth:`~repro.world.timeline.Timeline.compile_window`), never
  materialising the ``(M, T)`` activity mask.
* **Placement** optionally shards by topology region
  (:class:`~repro.mec.placement.ShardedPlacementEngine`): independent
  regions settle concurrently, cross-region spills fall back to the
  serial walk, and the outcome stays bit-identical to the serial engine.

:meth:`StreamingFleetReport.materialise` folds the chunks back into an
ordinary :class:`~repro.mec.fleet.FleetReport` (bit-identical to the
batch engine's, including evaluations) for the small-``M`` contract;
:meth:`StreamingFleetReport.evaluate` scores detectors chunk-by-chunk
without ever materialising the plane — same choices, with scores
accumulated per chunk (equal to within float summation order).
"""

from __future__ import annotations

import tempfile
from typing import Iterator

import numpy as np

from ..core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    TrajectoryDetector,
)
from ..mobility.markov import MarkovChain
from ..numerics import safe_log
from ..sim.cache import EpisodeStore
from ..sim.seeding import as_seed_sequence
from ..telemetry import NULL_RECORDER
from .costs import CostLedger
from .fleet import (
    FleetEvaluation,
    FleetReport,
    FleetSimulation,
    _FleetSlotKernel,
    materialise_full_plane,
)
from .placement import PlacementEngine, PlacementStats, ShardedPlacementEngine

__all__ = ["StreamingFleetEngine", "StreamingFleetReport", "DEFAULT_CHUNK_SLOTS"]

#: Default number of slots advanced per chunk.
DEFAULT_CHUNK_SLOTS = 64

#: Target element budget of one sampling block (users x horizon x
#: services-per-user); blocks shrink as the horizon grows, keeping the
#: sampler's heap roughly constant in ``T``.
_BLOCK_TARGET_ELEMS = 1 << 20


class StreamingFleetReport:
    """Handle onto one streamed episode: totals in memory, planes on disk.

    Everything O(M) or O(N) — cost totals, migration counters, placement
    stats, the presentation permutation, service windows — lives on the
    report; everything O(N x T) stays in the :class:`EpisodeStore` and is
    reached through :meth:`iter_plane_chunks`, :meth:`evaluate` (chunked
    scoring) or :meth:`materialise` (guarded full-plane reconstruction).
    """

    def __init__(
        self,
        simulation: FleetSimulation,
        store: EpisodeStore,
        *,
        owns_store: bool,
        chunk_slots: int,
        owners: np.ndarray,
        is_real: np.ndarray,
        service_ids: np.ndarray,
        order: np.ndarray,
        mig_total: np.ndarray,
        comm_total: np.ndarray,
        chaff_total: np.ndarray,
        migrations: np.ndarray,
        service_migrations: np.ndarray,
        placement: PlacementStats,
        evaluation_seed: np.random.SeedSequence,
        svc_windows: np.ndarray | None,
        recorder=NULL_RECORDER,
    ) -> None:
        self.recorder = recorder
        self.simulation = simulation
        self.store = store
        self.owns_store = owns_store
        self.chunk_slots = int(chunk_slots)
        self.owners = owners
        self.is_real = is_real
        self.service_ids = service_ids
        self.order = order
        self.mig_total = mig_total
        self.comm_total = comm_total
        self.chaff_total = chaff_total
        self.migrations = migrations
        self.service_migrations = service_migrations
        self.placement = placement
        self.evaluation_seed = evaluation_seed
        self.svc_windows = svc_windows

    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of simulated users ``M``."""
        return int(self.mig_total.size)

    @property
    def n_services(self) -> int:
        """Number of services ``N`` on the observation plane."""
        return int(self.owners.size)

    @property
    def horizon(self) -> int:
        """Number of simulated slots ``T``."""
        return int(self.store.meta["horizon"])

    @property
    def per_user_cost(self) -> np.ndarray:
        """Length-``M`` array of per-user total costs."""
        return self.mig_total + self.comm_total + self.chaff_total

    @property
    def total_cost(self) -> float:
        """Fleet-wide cost."""
        return float(self.per_user_cost.sum())

    @property
    def total_migrations(self) -> int:
        """Fleet-wide migration count."""
        return int(self.migrations.sum())

    def iter_plane_chunks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, chunk)`` observation-plane chunks.

        Chunks are ``(N, stop - start)`` arrays in *presentation order*
        (the shuffled order an eavesdropper would see), ascending in
        time; churned rows hold ``-1`` on dead slots.
        """
        for index, chunk in self.store.iter_chunks("histories"):
            start = index * self.chunk_slots
            yield start, start + chunk.shape[1], chunk[self.order]

    def close(self) -> None:
        """Release the episode store (deleted when owned by this run)."""
        if self.owns_store:
            self.store.destroy()

    # ------------------------------------------------------------------
    def materialise(self) -> FleetReport:
        """Fold the spilled chunks back into an ordinary full report.

        The result is bit-identical to the batch engine's report for the
        same seed — planes, ledgers, placement stats and (since the
        standard :meth:`FleetReport.evaluate` runs on it) evaluations.
        Allocation goes through the guarded
        :func:`~repro.mec.fleet.materialise_full_plane` helper, so a
        city-scale episode refuses to materialise instead of thrashing.
        """
        sim = self.simulation
        n_users, n_services = self.n_users, self.n_services
        horizon = self.horizon
        fill = None if self.svc_windows is None else -1
        histories = materialise_full_plane(
            (n_services, horizon), dtype=np.int64, fill=fill
        )
        for index, chunk in self.store.iter_chunks("histories"):
            start = index * self.chunk_slots
            histories[:, start : start + chunk.shape[1]] = chunk
        per_slot = materialise_full_plane((n_users, horizon), dtype=float)
        for index, chunk in self.store.iter_chunks("per_slot"):
            start = index * self.chunk_slots
            per_slot[:, start : start + chunk.shape[1]] = chunk
        users = materialise_full_plane((n_users, horizon), dtype=np.int64)
        users[:] = self.store.open_plane("users")
        ledgers = [
            CostLedger(
                migration_total=float(self.mig_total[user]),
                communication_total=float(self.comm_total[user]),
                chaff_total=float(self.chaff_total[user]),
                migrations=int(self.migrations[user]),
                slots=horizon,
                _per_slot=per_slot[user].tolist(),
            )
            for user in range(n_users)
        ]
        return sim._build_report(
            users,
            histories,
            self.owners,
            self.is_real,
            self.service_ids,
            self.service_migrations,
            ledgers,
            self.placement,
            None,  # shuffle_rng unused: the permutation was drawn at run end
            self.evaluation_seed,
            self.svc_windows,
            order=self.order,
        )

    # ------------------------------------------------------------------
    # Incremental evaluation: chunked prefix-LL scoring
    # ------------------------------------------------------------------
    def _masked(self) -> bool:
        return self.svc_windows is not None and (
            bool(np.any(self.svc_windows[:, 0] != 0))
            or bool(np.any(self.svc_windows[:, 1] != self.horizon))
        )

    def _stack_slice(self, start: int, stop: int) -> np.ndarray | None:
        """Per-step matrices governing transitions into ``[start, stop)``."""
        stack = self.simulation._stack
        if stack is None:
            return None
        first = max(start, 1)
        return stack[first - 1 : stop - 1]

    def _score_chunks(self, chain: MarkovChain) -> np.ndarray:
        """Per-row log-likelihood scores, accumulated chunk by chunk.

        Rows are scored in service-id order (chunks are stored that way)
        and permuted into presentation order at the end.  The values
        match the monolithic scorers up to float summation order: each
        chunk's step terms are summed locally and added to a running
        total, where the batch path sums all ``T - 1`` terms in one
        pairwise reduction — same choices in practice, asserted
        ``allclose`` (not bit-equal) by the tests.
        """
        n = self.n_services
        masked = self._masked()
        scores = np.zeros(n, dtype=float)
        observed = np.zeros(n, dtype=np.int64)
        seen = np.zeros(n, dtype=bool)
        prev_col: np.ndarray | None = None
        prev_mask: np.ndarray | None = None
        for index, chunk in self.store.iter_chunks("histories"):
            start = index * self.chunk_slots
            stop = start + chunk.shape[1]
            mask = chunk >= 0
            if masked:
                visible = mask.any(axis=1)
                newly = visible & ~seen
                if np.any(newly):
                    first_cell = chunk[
                        np.arange(n), np.argmax(mask, axis=1)
                    ]
                    scores[newly] += chain.log_stationary[
                        np.clip(first_cell[newly], 0, None)
                    ]
                seen |= visible
                observed += mask.sum(axis=1)
            elif start == 0:
                scores += chain.log_stationary[chunk[:, 0]]
            if start == 0:
                prev_cells = chunk[:, :-1]
                next_cells = chunk[:, 1:]
                prev_valid = mask[:, :-1]
                next_valid = mask[:, 1:]
            else:
                prev_cells = np.concatenate([prev_col[:, None], chunk[:, :-1]], axis=1)
                next_cells = chunk
                prev_valid = np.concatenate([prev_mask[:, None], mask[:, :-1]], axis=1)
                next_valid = mask
            if next_cells.shape[1]:
                stack_w = self._stack_slice(start, stop)
                pc = np.clip(prev_cells, 0, None)
                nc = np.clip(next_cells, 0, None)
                if stack_w is None:
                    step_logs = chain.log_transition_entries(pc, nc)
                else:
                    step_logs = safe_log(stack_w)[
                        np.arange(stack_w.shape[0]), pc, nc
                    ]
                if masked:
                    valid = prev_valid & next_valid
                    scores += np.where(valid, step_logs, 0.0).sum(axis=1)
                else:
                    scores += step_logs.sum(axis=1)
            prev_col = chunk[:, -1]
            prev_mask = mask[:, -1]
        if masked:
            scores = np.where(
                observed > 0, scores / np.maximum(observed, 1), -np.inf
            )
        return scores[self.order]

    def evaluate(
        self,
        chain: MarkovChain,
        detector: TrajectoryDetector,
        seed: "int | np.random.SeedSequence | None" = None,
    ) -> FleetEvaluation:
        """Score a detector per user without materialising the plane.

        The chunked counterpart of :meth:`FleetReport.evaluate`: scores
        accumulate per chunk through the same prefix-LL recurrences the
        monolithic detectors evaluate in one shot, tie-breaks consume one
        draw per user generator in the same order, and tracking is an
        exact integer count.  Detector support matches the churned-plane
        path (maximum-likelihood and random-guess detectors); for other
        detectors, :meth:`materialise` first.
        """
        if seed is None:
            seed = self.evaluation_seed
        detect_token = self.recorder.begin("kernel/detect", engine="stream")
        root = as_seed_sequence(seed)
        n_users = self.n_users
        n = self.n_services
        rngs = [np.random.default_rng(child) for child in root.spawn(n_users)]
        if isinstance(detector, RandomGuessDetector):
            chosen = np.array(
                [int(rng.integers(0, n)) for rng in rngs], dtype=np.int64
            )
        elif isinstance(detector, MaximumLikelihoodDetector):
            scores = self._score_chunks(chain)
            candidates = np.flatnonzero(
                scores >= float(scores.max()) - detector.tolerance
            )
            chosen = np.array(
                [int(rng.choice(candidates)) for rng in rngs], dtype=np.int64
            )
        else:
            raise NotImplementedError(
                f"detector {detector.name!r} cannot score a streamed plane "
                "chunk by chunk; materialise() the report first"
            )
        # Tracking: exact integer counts accumulated per chunk.
        masked = self._masked()
        real_rows_id = np.flatnonzero(self.is_real)
        row_of_service = np.empty_like(self.order)
        row_of_service[self.order] = np.arange(n)
        real_rows = row_of_service[real_rows_id]
        chosen_id = self.order[chosen]
        tracked_counts = np.zeros(n_users, dtype=np.int64)
        window_counts = np.zeros(n_users, dtype=np.int64)
        user_windows = (
            self.svc_windows[real_rows_id] if self.svc_windows is not None else None
        )
        users_plane = self.store.open_plane("users")
        for index, chunk in self.store.iter_chunks("histories"):
            start = index * self.chunk_slots
            stop = start + chunk.shape[1]
            user_cols = np.asarray(users_plane[:, start:stop])
            equal = chunk[chosen_id] == user_cols
            if masked:
                slots = np.arange(start, stop)
                in_window = (user_windows[:, :1] <= slots) & (
                    slots < user_windows[:, 1:]
                )
                tracked_counts += (equal & in_window).sum(axis=1)
                window_counts += in_window.sum(axis=1)
            else:
                tracked_counts += equal.sum(axis=1)
        del users_plane
        if masked:
            tracking = tracked_counts / window_counts
        else:
            tracking = tracked_counts / self.horizon
        self.recorder.end(detect_token)
        return FleetEvaluation(
            chosen_rows=chosen,
            tracking_per_user=tracking,
            detected_per_user=(chosen == real_rows).astype(float),
        )


class StreamingFleetEngine:
    """Advances a :class:`FleetSimulation` in bounded-memory slot chunks.

    Parameters
    ----------
    simulation:
        The fleet to run; results are bit-identical to
        ``simulation.run(seed, engine="batch")`` for any chunk size,
        region count and worker count.
    chunk_slots:
        Slots advanced (and spilled) per chunk.
    regions:
        Topology regions for sharded placement (1 = the serial engine).
    region_workers:
        Threads settling independent regions concurrently.
    store:
        Episode store to spill into; ``None`` creates an ephemeral
        temporary store owned (and deleted) by the resulting report.
        Pass a persistent store to make the episode resumable: a rerun
        with the same seed continues from the last committed chunk.
    """

    def __init__(
        self,
        simulation: FleetSimulation,
        *,
        chunk_slots: int = DEFAULT_CHUNK_SLOTS,
        regions: int = 1,
        region_workers: int = 1,
        store: EpisodeStore | None = None,
        recorder=NULL_RECORDER,
    ) -> None:
        if chunk_slots < 1:
            raise ValueError("chunk_slots must be positive")
        if regions < 1:
            raise ValueError("regions must be positive")
        if region_workers < 1:
            raise ValueError("region_workers must be positive")
        self.simulation = simulation
        self.chunk_slots = int(chunk_slots)
        self.regions = int(regions)
        self.region_workers = int(region_workers)
        self._store = store
        self.recorder = recorder

    # ------------------------------------------------------------------
    def _placement(self) -> PlacementEngine:
        if self.regions > 1:
            return ShardedPlacementEngine(
                self.simulation.topology,
                regions=self.regions,
                workers=self.region_workers,
            )
        return PlacementEngine(self.simulation.topology)

    def _sample(
        self,
        store: EpisodeStore,
        user_rngs: "list[np.random.Generator]",
    ) -> None:
        """Phase A: spill trajectories and plans in bounded user blocks."""
        sim = self.simulation
        config = sim.config
        n_users, horizon = config.n_users, config.horizon
        budgets = config.chaffs_per_user()
        per_user = np.asarray([1 + budget for budget in budgets], dtype=np.int64)
        users_plane = store.create_plane("users", (n_users, horizon))
        plans_plane = store.create_plane(
            "plans", (int(per_user.sum()), horizon)
        )
        widest = int(per_user.max())
        block = max(1, _BLOCK_TARGET_ELEMS // max(horizon * widest, 1))
        row = 0
        with self.recorder.span("kernel/sample", engine="stream", users=n_users):
            for start in range(0, n_users, block):
                stop = min(start + block, n_users)
                users_block, plans_block = sim._sample_block(
                    start, stop, user_rngs[start:stop]
                )
                users_plane[start:stop] = users_block
                plans_plane[row : row + plans_block.shape[0]] = plans_block
                row += plans_block.shape[0]
            users_plane.flush()
            plans_plane.flush()
        del users_plane, plans_plane
        store.update_meta(sampled=True)

    def _restore_kernel(
        self, kernel: _FleetSlotKernel, carry: dict[str, np.ndarray]
    ) -> None:
        kernel.cells = carry["cells"].astype(np.int64)
        kernel.mig_total = carry["mig_total"].astype(float)
        kernel.comm_total = carry["comm_total"].astype(float)
        kernel.chaff_total = carry["chaff_total"].astype(float)
        kernel.migrations = carry["migrations"].astype(np.int64)
        kernel.service_migrations = carry["service_migrations"].astype(np.int64)
        if "prev_live" in carry:
            kernel.prev_live = carry["prev_live"].astype(bool)
            kernel.prev_caps = carry["prev_caps"].astype(np.int64)
        placement = kernel.placement
        placement.load = carry["load"].astype(np.int64)
        placement.capacities = carry["capacities"].astype(np.int64)
        counters = carry["placement_stats"].astype(np.int64)
        placement.stats = PlacementStats(*(int(value) for value in counters))

    def _save_kernel(
        self, store: EpisodeStore, index: int, kernel: _FleetSlotKernel
    ) -> None:
        arrays: dict[str, np.ndarray] = {
            "cells": kernel.cells,
            "mig_total": kernel.mig_total,
            "comm_total": kernel.comm_total,
            "chaff_total": kernel.chaff_total,
            "migrations": kernel.migrations,
            "service_migrations": kernel.service_migrations,
            "load": kernel.placement.load,
            "capacities": kernel.placement.capacities,
            "placement_stats": np.asarray(
                [
                    kernel.placement.stats.admitted,
                    kernel.placement.stats.spilled,
                    kernel.placement.stats.rejected,
                    kernel.placement.stats.evicted,
                    kernel.placement.stats.stranded,
                ],
                dtype=np.int64,
            ),
        }
        if kernel.prev_live is not None:
            arrays["prev_live"] = kernel.prev_live.astype(np.uint8)
            arrays["prev_caps"] = kernel.prev_caps
        store.save_state(index, **arrays)

    # ------------------------------------------------------------------
    def run(
        self,
        seed: "int | np.random.SeedSequence",
        *,
        stop_after_chunks: int | None = None,
    ) -> StreamingFleetReport | None:
        """Stream one episode; returns ``None`` if stopped before the end.

        ``stop_after_chunks`` bounds how many *new* chunks this call
        advances (for tests and cooperative scheduling); a later call
        with the same seed and store resumes from the last committed
        chunk and finishes the episode.
        """
        sim = self.simulation
        config = sim.config
        n_users, horizon = config.n_users, config.horizon
        budgets = config.chaffs_per_user()
        root = as_seed_sequence(seed)
        children = root.spawn(n_users + 2)
        user_rngs = [np.random.default_rng(child) for child in children[:n_users]]
        shuffle_rng = np.random.default_rng(children[n_users])
        evaluation_seed = children[n_users + 1]

        owns_store = self._store is None
        store = self._store or EpisodeStore(
            tempfile.mkdtemp(prefix="repro-episode-")
        )
        identity = {
            "entropy": str(root.entropy),
            "spawn_key": [int(part) for part in root.spawn_key],
            "n_users": n_users,
            "horizon": horizon,
            "chunk_slots": self.chunk_slots,
        }
        meta = store.meta
        for key, value in identity.items():
            if key in meta and meta[key] != value:
                raise ValueError(
                    f"episode store holds a different episode: {key} is "
                    f"{meta[key]!r}, this run needs {value!r}"
                )
        store.update_meta(**identity)

        owners, is_real, service_ids = sim._service_layout(budgets)
        n_services = owners.size
        if not store.meta.get("sampled"):
            self._sample(store, user_rngs)

        dynamic = sim._schedule is not None
        svc_windows = (
            sim._schedule.user_windows[owners] if dynamic else None
        )
        kernel = _FleetSlotKernel(sim, owners, is_real, self._placement())
        n_chunks = -(-horizon // self.chunk_slots)
        committed = set(store.completed("histories"))
        resume_from = 0
        while resume_from in committed:
            resume_from += 1
        if resume_from > 0:
            self._restore_kernel(kernel, store.load_state(resume_from - 1))

        users_plane = store.open_plane("users")
        plans_plane = store.open_plane("plans")
        advanced = 0
        recorder = self.recorder
        placement_token = recorder.begin(
            "kernel/placement", engine="stream", chunks=n_chunks - resume_from
        )
        for chunk in range(resume_from, n_chunks):
            start = chunk * self.chunk_slots
            stop = min(start + self.chunk_slots, horizon)
            width = stop - start
            user_cols = np.asarray(users_plane[:, start:stop])
            plan_cols = np.asarray(plans_plane[:, start:stop])
            per_slot_chunk = np.empty((n_users, width), dtype=float)
            if dynamic:
                window = sim.timeline.compile_window(
                    start,
                    stop,
                    horizon=horizon,
                    n_cells=sim.topology.n_cells,
                    n_users=n_users,
                    base_capacities=sim.topology.base_capacities(),
                    base_chain=sim.chain,
                )
                caps_w = window.capacities
                active_u_w = window.active_users()
                active_svc_w = active_u_w[owners]
                hist_chunk = np.full((n_services, width), -1, dtype=np.int64)
                if start == 0:
                    kernel.begin_dynamic(
                        plan_cols[:, 0], active_svc_w[:, 0], caps_w[0]
                    )
                for local in range(width):
                    live_rows = kernel.step_dynamic(
                        user_cols[:, local],
                        plan_cols[:, local],
                        active_svc_w[:, local],
                        caps_w[local],
                        active_u_w[:, local],
                    )
                    hist_chunk[live_rows, local] = kernel.cells[live_rows]
                    per_slot_chunk[:, local] = kernel.slot_cost_totals()
            else:
                hist_chunk = np.empty((n_services, width), dtype=np.int64)
                if start == 0:
                    kernel.begin_static(plan_cols[:, 0])
                for local in range(width):
                    kernel.step_static(user_cols[:, local], plan_cols[:, local])
                    hist_chunk[:, local] = kernel.cells
                    per_slot_chunk[:, local] = kernel.slot_cost_totals()
            with recorder.span("kernel/spill", chunk=chunk):
                store.append_chunk("histories", chunk, hist_chunk)
                store.append_chunk("per_slot", chunk, per_slot_chunk)
                self._save_kernel(store, chunk, kernel)
            advanced += 1
            if (
                stop_after_chunks is not None
                and advanced >= stop_after_chunks
                and chunk + 1 < n_chunks
            ):
                del users_plane, plans_plane
                recorder.end(placement_token)
                return None
        del users_plane, plans_plane
        recorder.end(placement_token)

        if resume_from >= n_chunks:
            # Fully resumed episode: the totals live in the last carry.
            self._restore_kernel(kernel, store.load_state(n_chunks - 1))
        recorder.record_stats("placement", kernel.placement.stats.as_dict())
        order = np.arange(n_services)
        if config.shuffle_observations:
            order = shuffle_rng.permutation(n_services)
        return StreamingFleetReport(
            sim,
            store,
            owns_store=owns_store,
            chunk_slots=self.chunk_slots,
            owners=owners,
            is_real=is_real,
            service_ids=service_ids,
            order=order,
            mig_total=kernel.mig_total,
            comm_total=kernel.comm_total,
            chaff_total=kernel.chaff_total,
            migrations=kernel.migrations,
            service_migrations=kernel.service_migrations,
            placement=kernel.placement.stats,
            evaluation_seed=evaluation_seed,
            svc_windows=svc_windows,
            recorder=recorder,
        )

    def run_to_report(self, seed: "int | np.random.SeedSequence") -> FleetReport:
        """Stream the episode and materialise an ordinary full report."""
        streamed = self.run(seed)
        assert streamed is not None  # no stop_after_chunks: always completes
        try:
            return streamed.materialise()
        finally:
            streamed.close()
