"""Service migration policies.

The paper assumes the *worst case for privacy*: the real service always
follows its user (one-hop co-location required by delay-sensitive
services).  The broader MEC literature it builds on ([24], [25], [5],
[14]) studies cost-optimal migration, typically via Markov decision
processes over the user-service distance.  This module implements both
the always-follow policy used in the paper's evaluation and a family of
baselines (never-migrate, distance-threshold, and a value-iteration MDP
policy) so the cost-privacy trade-off can be explored in the ablations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..mobility.markov import MarkovChain
from .costs import CostModel
from .topology import MECTopology

__all__ = [
    "MigrationPolicy",
    "AlwaysFollowPolicy",
    "NeverMigratePolicy",
    "DistanceThresholdPolicy",
    "MDPMigrationPolicy",
]


class MigrationPolicy(abc.ABC):
    """Decides where a service should run given its user's location."""

    name: str = "abstract"

    @abc.abstractmethod
    def decide(
        self,
        topology: MECTopology,
        service_cell: int,
        user_cell: int,
    ) -> int:
        """Return the cell the service should occupy for the next slot."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class AlwaysFollowPolicy(MigrationPolicy):
    """Migrate the service to the user's cell every slot (the paper's setting)."""

    name = "always-follow"

    def decide(self, topology: MECTopology, service_cell: int, user_cell: int) -> int:
        if not 0 <= user_cell < topology.n_cells:
            raise ValueError("user cell out of range")
        return user_cell


class NeverMigratePolicy(MigrationPolicy):
    """Leave the service where it was instantiated (best cost, worst QoS)."""

    name = "never-migrate"

    def decide(self, topology: MECTopology, service_cell: int, user_cell: int) -> int:
        if not 0 <= service_cell < topology.n_cells:
            raise ValueError("service cell out of range")
        return service_cell


@dataclass
class DistanceThresholdPolicy(MigrationPolicy):
    """Migrate to the user only when the hop distance exceeds a threshold."""

    threshold: int = 1
    name = "distance-threshold"

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")

    def decide(self, topology: MECTopology, service_cell: int, user_cell: int) -> int:
        if topology.hop_distance(service_cell, user_cell) > self.threshold:
            return user_cell
        return service_cell


class MDPMigrationPolicy(MigrationPolicy):
    """Cost-optimal migrate-or-stay policy via value iteration over distance.

    Following the distance-based MDP formulations of [24] and [25], the
    state is the hop distance ``d`` between the user and the service.  Each
    slot the controller either *migrates* (pay the migration cost for ``d``
    hops, reset the distance to zero) or *stays* (pay the communication
    cost for ``d`` hops).  The user's movement then increases or decreases
    the distance according to a birth-death approximation of the mobility
    model (probability of moving derived from the chain's self-transition
    probabilities).  The resulting threshold-style policy is the classic
    cost-optimal baseline the paper contrasts with always-follow.
    """

    name = "mdp"

    def __init__(
        self,
        topology: MECTopology,
        chain: MarkovChain,
        cost_model: CostModel,
        *,
        discount: float = 0.9,
        max_iterations: int = 500,
        tolerance: float = 1e-8,
    ) -> None:
        if not 0 < discount < 1:
            raise ValueError("discount must be in (0, 1)")
        self.topology = topology
        self.chain = chain
        self.cost_model = cost_model
        self.discount = discount
        self._max_distance = int(topology.hop_distance_matrix().max())
        self._migrate_at = self._solve(max_iterations, tolerance)

    # ------------------------------------------------------------------
    @property
    def migrate_threshold_profile(self) -> np.ndarray:
        """Boolean array: whether the policy migrates at each distance."""
        return self._migrate_at.copy()

    def decide(self, topology: MECTopology, service_cell: int, user_cell: int) -> int:
        distance = topology.hop_distance(service_cell, user_cell)
        distance = min(distance, self._max_distance)
        if self._migrate_at[distance]:
            return user_cell
        return service_cell

    # ------------------------------------------------------------------
    def _movement_probability(self) -> float:
        """Probability that the user changes cell in one slot (model average)."""
        stay = float(np.mean(self.chain.transition_diagonal()))
        return min(max(1.0 - stay, 0.0), 1.0)

    def _solve(self, max_iterations: int, tolerance: float) -> np.ndarray:
        """Value iteration over distances 0..max_distance."""
        move_prob = self._movement_probability()
        n = self._max_distance + 1
        values = np.zeros(n, dtype=float)
        per_hop_mig = self.cost_model.migration_cost_per_hop
        fixed_mig = self.cost_model.migration_cost_fixed
        per_hop_comm = self.cost_model.communication_cost_per_hop

        def expected_next(distance: int, vals: np.ndarray) -> float:
            # The user moves away with probability move_prob / 2, toward the
            # service with probability move_prob / 2, else stays put.
            up = min(distance + 1, n - 1)
            down = max(distance - 1, 0)
            return (
                0.5 * move_prob * vals[up]
                + 0.5 * move_prob * vals[down]
                + (1.0 - move_prob) * vals[distance]
            )

        migrate_at = np.zeros(n, dtype=bool)
        for _ in range(max_iterations):
            new_values = np.empty_like(values)
            for distance in range(n):
                stay_cost = per_hop_comm * distance + self.discount * expected_next(
                    distance, values
                )
                migrate_cost = (
                    (fixed_mig + per_hop_mig * distance) if distance > 0 else 0.0
                ) + self.discount * expected_next(0, values)
                if migrate_cost < stay_cost:
                    new_values[distance] = migrate_cost
                    migrate_at[distance] = True
                else:
                    new_values[distance] = stay_cost
                    migrate_at[distance] = False
            if np.max(np.abs(new_values - values)) < tolerance:
                values = new_values
                break
            values = new_values
        migrate_at[0] = False
        return migrate_at
