"""Multi-user, capacity-aware MEC fleet simulation.

The single-user :class:`~repro.mec.simulator.MECSimulation` plays one user
against an eavesdropper that only ever sees that user's services.  The
paper's threat model, however, lives in a *shared* deployment: many users'
services co-hosted on the same edge sites, competing for site capacity,
and all visible on one observation plane.  This module simulates that
regime:

* ``M`` users with heterogeneous chaff budgets (and optionally per-user
  strategies and start cells) share one :class:`~repro.mec.topology.MECTopology`;
* every instantiation and migration is resolved by the capacity-enforcing
  :class:`~repro.mec.placement.PlacementEngine` (admit / spill to the
  nearest free site / reject);
* the eavesdropper observes the union of all ``N = sum(1 + n_chaffs_u)``
  service trajectories and is scored *per user* against that crowd —
  crowd-blending, a privacy scenario the single-user game cannot express;
* per-user :class:`~repro.mec.costs.CostLedger`\\ s keep the cost-privacy
  trade-off attributable to individual users.

Two engines produce bit-identical results for the same seed: ``"batch"``
(default) runs the hot path as O(T) numpy work through the existing
batched APIs (:meth:`ChaffStrategy.generate_batch`,
:meth:`MarkovChain.evolve_from_uniforms`,
:meth:`TrajectoryDetector.detect_batch`), while ``"loop"`` replays the
naive per-user/per-service Python walk and serves as the reference for
the equivalence tests and the speedup benchmark.

All randomness of one run derives from a single
:class:`~numpy.random.SeedSequence` (children spawned per user, for the
observation shuffle and for detector evaluation), so a fleet Monte-Carlo
sharded over workers (:func:`run_fleet_monte_carlo`) is bit-identical to
its serial execution for any worker count.

A :class:`~repro.world.timeline.Timeline` makes the world *dynamic*:
mobility follows the regime schedule's time-varying chain, per-slot
capacity views evict services off failed or shrunk sites, and churned
users enter and leave mid-episode through an active-service mask threaded
through the batch kernels.  An empty timeline is bit-identical to the
static path in both engines, and the engines stay bit-identical to each
other under any timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.eavesdropper.detector import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    TrajectoryDetector,
)
from ..core.strategies.base import ChaffStrategy
from ..mobility.markov import MarkovChain
from ..sim.parallel import get_shared, parallel_map, resolve_workers, shard_slices
from ..sim.seeding import as_seed_sequence, spawn_sequences_range
from ..telemetry import NULL_RECORDER
from ..world.timeline import Timeline, WorldSchedule
from .costs import CostLedger, CostModel
from .placement import PlacementEngine, PlacementStats
from .policies import (
    AlwaysFollowPolicy,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    MigrationPolicy,
    NeverMigratePolicy,
)
from .service import ServiceIdAllocator, ServiceInstance, ServiceKind
from .topology import MECTopology

__all__ = [
    "FleetSimulationConfig",
    "FleetObservationPlane",
    "FleetEvaluation",
    "FleetReport",
    "FleetSimulation",
    "FleetStatistics",
    "run_fleet_monte_carlo",
    "materialise_full_plane",
    "FULL_PLANE_LIMIT",
]

#: Engines accepted by :meth:`FleetSimulation.run`.
FLEET_ENGINES = ("batch", "loop", "stream")

#: Elements above which :func:`materialise_full_plane` refuses to allocate.
#: Sized so every plane the small-``M`` test and experiment configurations
#: materialise fits comfortably, while a city-scale ``(M, N, T)`` crowd
#: plane (the thing the streaming engine exists to avoid) trips it.
FULL_PLANE_LIMIT = 200_000_000


def materialise_full_plane(
    shape: "tuple[int, ...]",
    dtype: "np.dtype | type" = np.int64,
    fill: "int | float | None" = None,
) -> np.ndarray:
    """The tree's one sanctioned full-plane allocation site.

    repro-lint's RPL007 bans 3-axis plane allocations (``(M, N, T)``
    shapes and friends) everywhere outside a ``FULL_PLANE_LIMIT``-guarded
    helper; consumers that genuinely need a dense plane — reports
    materialised for the small-``M`` bit-identity contract, evaluation of
    a whole crowd at once — route the allocation through here, where the
    element count is checked against :data:`FULL_PLANE_LIMIT` first.
    Streaming consumers iterate chunk planes instead and never hit this.
    """
    elements = int(np.prod(np.asarray(shape, dtype=np.int64)))
    if elements > FULL_PLANE_LIMIT:
        raise MemoryError(
            f"refusing to materialise a {shape} plane ({elements} elements "
            f"> FULL_PLANE_LIMIT={FULL_PLANE_LIMIT}); iterate its chunks "
            "instead (StreamingFleetReport.iter_plane_chunks)"
        )
    if fill is None:
        return np.empty(shape, dtype=dtype)
    return np.full(shape, fill, dtype=dtype)


@dataclass(frozen=True)
class FleetSimulationConfig:
    """Configuration of one multi-user fleet run.

    Attributes
    ----------
    n_users:
        Number of users ``M`` sharing the deployment.
    horizon:
        Number of simulated slots ``T``.
    n_chaffs:
        Chaff budget: one integer applied to every user, or a length-``M``
        sequence of per-user budgets (0 allowed).
    start_cells:
        Optional length-``M`` sequence fixing each user's first cell;
        omitted users start from the mobility model's initial
        distribution.
    shuffle_observations:
        Whether the global observation plane is presented in a random
        service order (as the eavesdropper would see it).
    """

    n_users: int = 50
    horizon: int = 100
    n_chaffs: "int | tuple[int, ...]" = 1
    start_cells: "tuple[int, ...] | None" = None
    shuffle_observations: bool = True

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        budgets = self.chaffs_per_user()
        if any(budget < 0 for budget in budgets):
            raise ValueError("chaff budgets must be non-negative")
        if self.start_cells is not None and len(self.start_cells) != self.n_users:
            raise ValueError("start_cells must list one cell per user")

    def chaffs_per_user(self) -> tuple[int, ...]:
        """The per-user chaff budgets as a length-``M`` tuple."""
        if isinstance(self.n_chaffs, int):
            return (self.n_chaffs,) * self.n_users
        budgets = tuple(int(budget) for budget in self.n_chaffs)
        if len(budgets) != self.n_users:
            raise ValueError("n_chaffs sequence must list one budget per user")
        return budgets

    @property
    def n_services(self) -> int:
        """Total services ``N`` on the shared observation plane."""
        return self.n_users + sum(self.chaffs_per_user())


@dataclass(frozen=True)
class FleetObservationPlane:
    """The eavesdropper's global view: every user's services, merged.

    Attributes
    ----------
    trajectories:
        ``(N, T)`` observed service trajectories in presentation order.
    service_ids:
        Service id of each row (hidden from the eavesdropper).
    owner_ids:
        Owning user of each row (hidden from the eavesdropper).
    real_rows:
        Length-``M`` array: for each user, the row of their real service
        (per-user ground truth for crowd scoring).
    """

    trajectories: np.ndarray
    service_ids: np.ndarray
    owner_ids: np.ndarray
    real_rows: np.ndarray

    def __post_init__(self) -> None:
        if self.trajectories.ndim != 2:
            raise ValueError("trajectories must be 2-D")
        n = self.trajectories.shape[0]
        if self.service_ids.shape != (n,) or self.owner_ids.shape != (n,):
            raise ValueError("service_ids/owner_ids must label every row")
        if np.unique(self.service_ids).size != n:
            raise ValueError("observed services must have unique ids")
        if self.real_rows.size and (
            self.real_rows.min() < 0 or self.real_rows.max() >= n
        ):
            raise ValueError("real_rows out of range")

    @property
    def n_services(self) -> int:
        """Number of observed services ``N``."""
        return int(self.trajectories.shape[0])

    @property
    def horizon(self) -> int:
        """Number of observed slots ``T``."""
        return int(self.trajectories.shape[1])

    def user_trajectory(self, user: int) -> np.ndarray:
        """The observed trajectory of one user's real service."""
        return self.trajectories[int(self.real_rows[user])]


@dataclass(frozen=True)
class FleetEvaluation:
    """Per-user detector scores against the merged observation plane."""

    chosen_rows: np.ndarray
    tracking_per_user: np.ndarray
    detected_per_user: np.ndarray

    @property
    def mean_tracking(self) -> float:
        """Mean per-user tracking accuracy."""
        return float(np.mean(self.tracking_per_user))

    @property
    def mean_detection(self) -> float:
        """Fraction of users whose real service the eavesdropper picked."""
        return float(np.mean(self.detected_per_user))


@dataclass
class FleetReport:
    """Everything produced by one fleet run.

    ``windows`` and ``transition_stack`` are the dynamic-world context of
    the run: the ``(N, 2)`` activity window of every presentation row of
    the observation plane (``None`` for a frozen world, where every
    service spans the whole episode) and the time-varying transition
    stack of the regime schedule (``None`` without regime switches).
    Rows of a churned world's plane hold ``-1`` on slots where the
    service did not exist.
    """

    user_trajectories: np.ndarray
    observations: FleetObservationPlane
    ledgers: list[CostLedger]
    services: list[ServiceInstance]
    placement: PlacementStats
    evaluation_seed: np.random.SeedSequence = field(repr=False, default=None)  # type: ignore[assignment]
    windows: np.ndarray | None = None
    transition_stack: np.ndarray | None = field(repr=False, default=None)

    @property
    def n_users(self) -> int:
        """Number of simulated users ``M``."""
        return int(self.user_trajectories.shape[0])

    @property
    def horizon(self) -> int:
        """Number of simulated slots ``T``."""
        return int(self.user_trajectories.shape[1])

    @property
    def total_cost(self) -> float:
        """Fleet-wide cost (sum of the per-user ledgers)."""
        return float(sum(ledger.total for ledger in self.ledgers))

    @property
    def per_user_cost(self) -> np.ndarray:
        """Length-``M`` array of per-user total costs."""
        return np.array([ledger.total for ledger in self.ledgers], dtype=float)

    @property
    def total_migrations(self) -> int:
        """Fleet-wide migration count (sum of the per-user ledgers)."""
        return int(sum(ledger.migrations for ledger in self.ledgers))

    def evaluate(
        self,
        chain: MarkovChain,
        detector: TrajectoryDetector,
        seed: "int | np.random.SeedSequence | None" = None,
    ) -> FleetEvaluation:
        """Score a detector per user against the merged observation plane.

        For every user the eavesdropper receives the *whole* crowd of
        ``N`` trajectories and attributes one row to that user; detection
        succeeds when the chosen row is the user's real service.  All
        ``M`` per-user decisions run as one
        :meth:`~repro.core.eavesdropper.detector.TrajectoryDetector.detect_crowd`
        call (the crowd is scored once; only per-user tie-break draws
        differ).  ``seed`` defaults to the run's own evaluation child, so
        report + evaluation are a pure function of the run seed.
        """
        if seed is None:
            seed = self.evaluation_seed
        if seed is None:
            raise ValueError(
                "no evaluation seed: pass one explicitly or evaluate a "
                "report produced by FleetSimulation.run"
            )
        root = as_seed_sequence(seed)
        n_users = self.n_users
        rngs = [np.random.default_rng(child) for child in root.spawn(n_users)]
        plane = self.observations
        masked = self.windows is not None and (
            np.any(self.windows[:, 0] != 0)
            or np.any(self.windows[:, 1] != self.horizon)
        )
        if not masked:
            if self.transition_stack is None:
                chosen = detector.detect_crowd(chain, plane.trajectories, rngs)
            else:
                chosen = detector.detect_crowd(
                    chain,
                    plane.trajectories,
                    rngs,
                    transition_stack=self.transition_stack,
                )
            tracked = plane.trajectories[chosen] == self.user_trajectories
            tracking = tracked.mean(axis=1)
        else:
            if getattr(detector, "supports_censored_planes", False):
                # Detectors that understand -1-marked planes (the
                # adversary layer) score the churned plane themselves,
                # windows and all.
                chosen = detector.detect_crowd(
                    chain,
                    plane.trajectories,
                    rngs,
                    transition_stack=self.transition_stack,
                )
            else:
                chosen = self._detect_crowd_masked(chain, detector, rngs)
            # A user is tracked on a slot when the chosen row observes the
            # user's cell there; scoring is restricted to the user's own
            # activity window (dead slots of the chosen row never match —
            # they hold -1).
            user_windows = self.windows[plane.real_rows]
            slots = np.arange(self.horizon)
            in_window = (user_windows[:, :1] <= slots) & (
                slots < user_windows[:, 1:]
            )
            tracked = plane.trajectories[chosen] == self.user_trajectories
            tracking = (tracked & in_window).sum(axis=1) / in_window.sum(axis=1)
        return FleetEvaluation(
            chosen_rows=chosen,
            tracking_per_user=tracking,
            detected_per_user=(chosen == plane.real_rows).astype(float),
        )

    def _detect_crowd_masked(
        self,
        chain: MarkovChain,
        detector: TrajectoryDetector,
        rngs: "list[np.random.Generator]",
    ) -> np.ndarray:
        """Per-user crowd decisions over a churned observation plane.

        Each candidate row is scored by its *per-observed-slot* average
        log-likelihood over its own activity window (under the
        time-varying chain when a regime stack is present): the rate
        normalisation keeps rows with different observation lengths
        comparable, and reduces to the ordinary ML ranking when every
        row spans the full episode.  The kernel is the adversary layer's
        masked scorer — one implementation serves contiguous windows and
        arbitrary coverage masks alike (a churned plane's dead slots are
        its ``-1`` entries).  Tie-breaking consumes one draw per user
        generator, exactly like the unmasked crowd path.
        """
        # Deferred import: the adversary package's Monte-Carlo module
        # imports this module, so binding at call time avoids the cycle.
        from ..adversary.detector import AdversaryDetector

        plane = self.observations
        n_rows = plane.n_services
        if isinstance(detector, RandomGuessDetector):
            return np.array(
                [int(rng.integers(0, n_rows)) for rng in rngs], dtype=np.int64
            )
        if not isinstance(detector, MaximumLikelihoodDetector):
            raise NotImplementedError(
                f"detector {detector.name!r} cannot score a churned "
                "observation plane (rows observed over different windows)"
            )
        traj = plane.trajectories
        scores = AdversaryDetector._masked_scores(
            chain, self.transition_stack, traj, traj >= 0
        )
        candidates = np.flatnonzero(
            scores >= float(scores.max()) - detector.tolerance
        )
        return np.array(
            [int(rng.choice(candidates)) for rng in rngs], dtype=np.int64
        )


class _FleetSlotKernel:
    """One-slot advancement of the fleet's placement and cost state.

    Extracted from the batch engine's slot loop so the streaming engine
    (:mod:`repro.mec.streaming`) replays exactly the same operations
    chunk by chunk: both engines drive this kernel slot by slot, so they
    are bit-identical by construction.  The kernel owns everything that
    crosses a chunk boundary — current cells, cost totals, migration
    counters, the placement engine, and (dynamic worlds) the previous
    slot's live mask and capacity view.
    """

    def __init__(
        self,
        simulation: "FleetSimulation",
        owners: np.ndarray,
        is_real: np.ndarray,
        placement: PlacementEngine,
    ) -> None:
        self.sim = simulation
        self.owners = owners
        self.is_real = is_real
        self.real_row_of_user = np.flatnonzero(is_real)
        self.chaff_rows = np.flatnonzero(~is_real)
        self.placement = placement
        n_users = simulation.config.n_users
        n_services = owners.size
        self.cells = np.full(n_services, -1, dtype=np.int64)
        self.mig_total = np.zeros(n_users, dtype=float)
        self.comm_total = np.zeros(n_users, dtype=float)
        self.chaff_total = np.zeros(n_users, dtype=float)
        self.migrations = np.zeros(n_users, dtype=np.int64)
        self.service_migrations = np.zeros(n_services, dtype=np.int64)
        # Dynamic-world carry: the previous slot's live mask and
        # capacity view (None until the first slot has run).
        self.prev_live: np.ndarray | None = None
        self.prev_caps: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Placement hooks.  Every placement-engine touch goes through one of
    # these six methods so the run-stacked kernel
    # (:mod:`repro.mec.runstack`) can reroute them to its per-run engine
    # stack while reusing the slot bodies verbatim.  ``rows`` is the
    # subset of service rows the call concerns (``None`` = all rows);
    # the base kernel ignores it — a single episode has a single engine.
    def _place_initial_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        return self.placement.place_initial(desired_sub)

    def _admit_rows(
        self, rows: "np.ndarray | None", desired_sub: np.ndarray
    ) -> np.ndarray:
        return self.placement.admit_arrivals(desired_sub)

    def _release_rows(self, rows: np.ndarray) -> None:
        self.placement.release(self.cells[rows])

    def _resolve_rows(
        self,
        rows: "np.ndarray | None",
        current_sub: np.ndarray,
        desired_sub: np.ndarray,
    ) -> np.ndarray:
        return self.placement.resolve_moves(current_sub, desired_sub)

    def _evict_overloaded(
        self, placed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.placement.evict_overloaded(self.cells, placed)

    def _set_capacities(self, caps_col: np.ndarray) -> None:
        self.placement.set_capacities(caps_col)

    # ------------------------------------------------------------------
    def begin_static(self, plans_col0: np.ndarray) -> None:
        """Instantiate the whole fleet at slot 0 of a frozen world."""
        self.cells = self._place_initial_rows(None, plans_col0)

    def begin_dynamic(
        self, plans_col0: np.ndarray, live0: np.ndarray, caps0: np.ndarray
    ) -> None:
        """Instantiate the initially-active services of a dynamic world."""
        self._set_capacities(caps0)
        rows0 = np.flatnonzero(live0)
        self.cells[rows0] = self._place_initial_rows(rows0, plans_col0[rows0])

    def slot_cost_totals(self) -> np.ndarray:
        """Per-user cumulative cost after the slot just advanced."""
        return self.mig_total + self.comm_total + self.chaff_total

    def _charge_moves(self, moved: np.ndarray, new_cells: np.ndarray) -> None:
        """Charge migrations ``moved`` (``self.cells`` still pre-move)."""
        model = self.sim.cost_model
        hops = self.sim._hops[self.cells[moved], new_cells]
        np.add.at(
            self.mig_total,
            self.owners[moved],
            model.migration_cost_fixed + model.migration_cost_per_hop * hops,
        )
        np.add.at(self.migrations, self.owners[moved], 1)
        self.service_migrations[moved] += 1

    # ------------------------------------------------------------------
    def step_static(self, user_cells: np.ndarray, plan_col: np.ndarray) -> None:
        """Advance one slot of a frozen world (the original batch body)."""
        sim = self.sim
        model = sim.cost_model
        desired = plan_col.copy()
        desired[self.real_row_of_user] = sim._decide_real_targets(
            self.cells[self.real_row_of_user], user_cells
        )
        new_cells = self._resolve_rows(None, self.cells, desired)
        moved = np.flatnonzero(new_cells != self.cells)
        if moved.size:
            self._charge_moves(moved, new_cells[moved])
        self.cells = new_cells
        self.comm_total += (
            model.communication_cost_per_hop
            * sim._hops[user_cells, self.cells[self.real_row_of_user]]
        )
        np.add.at(
            self.chaff_total,
            self.owners[self.chaff_rows],
            model.chaff_running_cost,
        )

    def step_dynamic(
        self,
        user_cells: np.ndarray,
        plan_col: np.ndarray,
        live: np.ndarray,
        caps_col: np.ndarray,
        active_now: np.ndarray,
    ) -> np.ndarray:
        """Advance one slot of a dynamic world; returns the live rows.

        World transitions (departures -> capacity change and evictions ->
        arrivals) run first — skipped on the episode's very first slot,
        when no previous live mask has been carried yet — then the
        voluntary moves and cost charges, in exactly the batch engine's
        order.
        """
        sim = self.sim
        model = sim.cost_model
        if self.prev_live is not None:
            prev = self.prev_live
            departed = np.flatnonzero(prev & ~live)
            if departed.size:
                self._release_rows(departed)
                self.cells[departed] = -1
            if not np.array_equal(caps_col, self.prev_caps):
                self._set_capacities(caps_col)
                new_cells, moved = self._evict_overloaded(prev & live)
                if moved.size:
                    self._charge_moves(moved, new_cells[moved])
                    self.cells = new_cells
            arriving = np.flatnonzero(live & ~prev)
            if arriving.size:
                self.cells[arriving] = self._admit_rows(
                    arriving, plan_col[arriving]
                )
        live_rows = np.flatnonzero(live)
        desired = plan_col.copy()
        real_live = self.real_row_of_user[active_now]
        desired[real_live] = sim._decide_real_targets(
            self.cells[real_live], user_cells[active_now]
        )
        new_sub = self._resolve_rows(
            live_rows, self.cells[live_rows], desired[live_rows]
        )
        moved_sub = np.flatnonzero(new_sub != self.cells[live_rows])
        if moved_sub.size:
            self._charge_moves(live_rows[moved_sub], new_sub[moved_sub])
        self.cells[live_rows] = new_sub
        users_active = np.flatnonzero(active_now)
        self.comm_total[users_active] += (
            model.communication_cost_per_hop
            * sim._hops[
                user_cells[users_active],
                self.cells[self.real_row_of_user[users_active]],
            ]
        )
        live_chaffs = live_rows[~self.is_real[live_rows]]
        np.add.at(
            self.chaff_total, self.owners[live_chaffs], model.chaff_running_cost
        )
        self.prev_live = live.copy()
        self.prev_caps = np.asarray(caps_col).copy()
        return live_rows


class FleetSimulation:
    """Simulates ``M`` users, their services and chaffs on one shared MEC.

    Parameters
    ----------
    topology:
        The shared deployment; site capacities are enforced.
    chain:
        The users' mobility model (shared, as in the paper's synthetic
        setting; per-user realisations differ through their seeds and
        optional start cells).
    strategy:
        One :class:`~repro.core.strategies.base.ChaffStrategy` applied to
        every user with a positive chaff budget, or a length-``M``
        sequence of per-user strategies (``None`` allowed for users
        without chaffs).
    policy:
        Migration policy of the real services (default: always-follow).
    cost_model:
        Cost model charged to every user's ledger.
    config:
        Fleet shape (users, horizon, budgets, start cells).
    timeline:
        Optional :class:`~repro.world.timeline.Timeline` of world events
        (regime switches, site failures and capacity changes, user
        churn).  An empty timeline — the default — is the frozen world,
        bit-identical to the pre-dynamic code path in both engines.
    """

    def __init__(
        self,
        topology: MECTopology,
        chain: MarkovChain,
        *,
        strategy: "ChaffStrategy | Sequence[ChaffStrategy | None] | None" = None,
        policy: MigrationPolicy | None = None,
        cost_model: CostModel | None = None,
        config: FleetSimulationConfig | None = None,
        timeline: Timeline | None = None,
    ) -> None:
        if topology.n_cells != chain.n_states:
            raise ValueError("topology and mobility model disagree on cell count")
        self.topology = topology
        self.chain = chain
        self.policy = policy or AlwaysFollowPolicy()
        self.cost_model = cost_model or CostModel()
        self.config = config or FleetSimulationConfig()
        self.strategies = self._resolve_strategies(strategy)
        self._hops = topology.hop_distance_matrix()
        self.timeline = timeline if timeline is not None else Timeline()
        schedule: WorldSchedule | None = None
        if not self.timeline.is_empty:
            schedule = self.timeline.compile(
                horizon=self.config.horizon,
                n_cells=topology.n_cells,
                n_users=self.config.n_users,
                base_capacities=topology.base_capacities(),
                base_chain=chain,
            )
            # A timeline whose events never bite within the horizon is
            # the frozen world; the static kernels are bit-identical and
            # cheaper, so use them.
            if schedule.is_static:
                schedule = None
        self._schedule = schedule
        self._stack = schedule.transition_stack() if schedule is not None else None
        if schedule is None:
            total_capacity = sum(site.capacity for site in topology.sites)
            if self.config.n_services > total_capacity:
                raise ValueError(
                    f"fleet needs {self.config.n_services} service slots but the "
                    f"deployment only has {total_capacity}; lower the population "
                    "or raise site capacities"
                )
        else:
            # Only the initial placement must fit: later arrivals spill
            # or strand, and failures evict — those are simulated
            # outcomes, not configuration errors.
            per_user = 1 + np.asarray(self.config.chaffs_per_user(), dtype=np.int64)
            initially_active = schedule.user_windows[:, 0] == 0
            initial_services = int(per_user[initially_active].sum())
            slot0_capacity = int(schedule.capacities[0].sum())
            if initial_services > slot0_capacity:
                raise ValueError(
                    f"slot 0 hosts {initial_services} services but the world "
                    f"only offers {slot0_capacity} slots there; lower the "
                    "initially active population or soften the timeline"
                )
        if self.config.start_cells is not None:
            cells = np.asarray(self.config.start_cells, dtype=np.int64)
            if cells.size and (cells.min() < 0 or cells.max() >= topology.n_cells):
                raise ValueError("start_cells contains cells outside the topology")

    def _resolve_strategies(
        self, strategy: "ChaffStrategy | Sequence[ChaffStrategy | None] | None"
    ) -> list[ChaffStrategy | None]:
        budgets = self.config.chaffs_per_user()
        if strategy is None or isinstance(strategy, ChaffStrategy):
            strategies = [strategy] * self.config.n_users
        else:
            strategies = list(strategy)
            if len(strategies) != self.config.n_users:
                raise ValueError("need one strategy (or None) per user")
        for user, (budget, chosen) in enumerate(zip(budgets, strategies, strict=True)):
            if budget > 0 and chosen is None:
                raise ValueError(
                    f"user {user} has {budget} chaffs but no chaff strategy"
                )
        return strategies

    # ------------------------------------------------------------------
    def run(
        self,
        seed: "int | np.random.SeedSequence",
        *,
        engine: str = "batch",
        chunk_slots: int = 64,
        regions: int = 1,
        region_workers: int = 1,
        recorder=NULL_RECORDER,
    ) -> FleetReport:
        """Execute one fleet run.

        ``engine="batch"`` (default) is the vectorised O(T) slot loop;
        ``engine="loop"`` is the naive per-service Python reference;
        ``engine="stream"`` advances the horizon in ``chunk_slots``-sized
        chunks with a bounded working set, optionally sharding placement
        over ``regions`` topology regions (``region_workers`` threads).
        All three are bit-identical for the same ``seed`` — the streaming
        knobs change execution, never results.
        """
        if engine not in FLEET_ENGINES:
            raise ValueError(f"engine must be one of {FLEET_ENGINES}, got {engine!r}")
        if engine == "stream":
            # Deferred import: streaming builds on this module.
            from .streaming import StreamingFleetEngine

            streaming = StreamingFleetEngine(
                self,
                chunk_slots=chunk_slots,
                regions=regions,
                region_workers=region_workers,
                recorder=recorder,
            )
            return streaming.run_to_report(seed)
        root = as_seed_sequence(seed)
        n_users = self.config.n_users
        children = root.spawn(n_users + 2)
        user_rngs = [np.random.default_rng(child) for child in children[:n_users]]
        shuffle_rng = np.random.default_rng(children[n_users])
        evaluation_seed = children[n_users + 1]
        if engine == "batch":
            return self._run_batch(
                user_rngs, shuffle_rng, evaluation_seed, recorder=recorder
            )
        return self._run_loop(
            user_rngs, shuffle_rng, evaluation_seed, recorder=recorder
        )

    def run_stacked(
        self,
        seeds: "Sequence[int | np.random.SeedSequence]",
        *,
        engine: str = "batch",
        chunk_slots: int = 64,
        regions: int = 1,
        region_workers: int = 1,
        collect_per_slot: bool = True,
        recorder=NULL_RECORDER,
    ):
        """Execute a stack of fleet runs as one pass of the slot kernel.

        The per-slot state machine advances ``(S * N)``-wide tensors
        instead of ``N``-wide ones — every run's RNG draws still come
        from that run's own SeedSequence children in the canonical
        order, so the resulting :class:`StackedRunOutcome` is
        bit-identical to running each seed through :meth:`run`.
        ``engine`` accepts ``"batch"`` and ``"stream"`` (the per-service
        ``"loop"`` reference has no stacked form; Monte-Carlo callers
        fall back to per-episode runs there).
        """
        # Deferred import: the run-stacked engine builds on this module.
        from .runstack import run_stacked as _run_stacked

        return _run_stacked(
            self,
            list(seeds),
            engine=engine,
            chunk_slots=chunk_slots,
            regions=regions,
            region_workers=region_workers,
            collect_per_slot=collect_per_slot,
            recorder=recorder,
        )

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------
    def _service_layout(
        self, budgets: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-service (owner, is_real, service_id) arrays in id order.

        Services are allocated user by user — real first, then that
        user's chaffs — from one fleet-scoped
        :class:`~repro.mec.service.ServiceIdAllocator`.
        """
        allocator = ServiceIdAllocator()
        owners: list[int] = []
        is_real: list[bool] = []
        ids: list[int] = []
        for user, budget in enumerate(budgets):
            for index in range(1 + budget):
                owners.append(user)
                is_real.append(index == 0)
                ids.append(allocator.allocate())
        return (
            np.asarray(owners, dtype=np.int64),
            np.asarray(is_real, dtype=bool),
            np.asarray(ids, dtype=np.int64),
        )

    def _sample_user(
        self, user: int, rng: np.random.Generator
    ) -> tuple[int, np.ndarray]:
        """One user's trajectory randomness in the canonical draw order."""
        horizon = self.config.horizon
        if self.config.start_cells is not None:
            initial = int(self.config.start_cells[user])
            uniforms = (
                rng.random(horizon - 1) if horizon > 1 else np.empty(0, dtype=float)
            )
            return initial, uniforms
        return self.chain.sample_trajectory_randomness(horizon, rng)

    def _sample_block(
        self, start: int, stop: int, rngs: "list[np.random.Generator]"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample users ``[start, stop)`` and their services' plans.

        Returns ``(users_block, plans_block)``: the ``(stop - start, T)``
        user trajectories and the ``(rows, T)`` service plans of the
        block in service-id order (each user's real row holds the user's
        own trajectory as a placeholder; real targets are policy-driven
        per slot).  Every user's draws come only from that user's
        generator — trajectory randomness first, then chaffs — so
        sampling the fleet in blocks is bit-identical to sampling it
        whole.  The batch engine samples one all-users block; the
        streaming engine walks bounded blocks and spills them.
        """
        horizon = self.config.horizon
        budgets = self.config.chaffs_per_user()[start:stop]
        count = stop - start
        initial = np.empty(count, dtype=np.int64)
        uniforms = np.empty((count, max(horizon - 1, 0)), dtype=float)
        for position in range(count):
            initial[position], uniforms[position] = self._sample_user(
                start + position, rngs[position]
            )
        users_block = self.chain.evolve_from_uniforms(
            initial, uniforms, transition_stack=self._stack
        )
        per_user = np.asarray([1 + budget for budget in budgets], dtype=np.int64)
        first_row = np.zeros(count, dtype=np.int64)
        if count > 1:
            first_row[1:] = np.cumsum(per_user[:-1])
        plans_block = np.empty((int(per_user.sum()), horizon), dtype=np.int64)
        plans_block[first_row] = users_block
        groups: dict[tuple[int, int], list[int]] = {}
        for position, budget in enumerate(budgets):
            if budget > 0:
                groups.setdefault(
                    (id(self.strategies[start + position]), budget), []
                ).append(position)
        for (_, budget), members in groups.items():
            strategy = self.strategies[start + members[0]]
            chaffs = strategy.generate_batch(
                self.chain,
                users_block[members],
                budget,
                [rngs[position] for position in members],
            )
            for member_index, position in enumerate(members):
                row = int(first_row[position]) + 1
                plans_block[row : row + budget] = chaffs[member_index]
        return users_block, plans_block

    def _decide_real_targets(
        self, service_cells: np.ndarray, user_cells: np.ndarray
    ) -> np.ndarray:
        """Vectorised migration-policy decisions for all real services.

        The four shipped policies are pure functions of the (service,
        user) hop distance, so they reduce to array lookups on the hop
        matrix; unknown policy classes fall back to per-user
        ``policy.decide`` calls.
        """
        policy = self.policy
        if isinstance(policy, AlwaysFollowPolicy):
            return user_cells.copy()
        if isinstance(policy, NeverMigratePolicy):
            return service_cells.copy()
        hops = self._hops[service_cells, user_cells]
        if isinstance(policy, DistanceThresholdPolicy):
            return np.where(hops > policy.threshold, user_cells, service_cells)
        if isinstance(policy, MDPMigrationPolicy):
            profile = policy.migrate_threshold_profile
            clamped = np.minimum(hops, profile.size - 1)
            return np.where(profile[clamped], user_cells, service_cells)
        return np.array(
            [
                policy.decide(self.topology, int(cell), int(user_cell))
                for cell, user_cell in zip(service_cells, user_cells, strict=True)
            ],
            dtype=np.int64,
        )

    def _build_report(
        self,
        users: np.ndarray,
        histories: np.ndarray,
        owners: np.ndarray,
        is_real: np.ndarray,
        service_ids: np.ndarray,
        service_migrations: np.ndarray,
        ledgers: list[CostLedger],
        placement: PlacementStats,
        shuffle_rng: np.random.Generator,
        evaluation_seed: np.random.SeedSequence,
        svc_windows: np.ndarray | None = None,
        order: np.ndarray | None = None,
    ) -> FleetReport:
        # A churned service's final cell is the last one it occupied (its
        # history keeps -1 on the slots where it did not exist).
        if svc_windows is None:
            last_slot = np.full(histories.shape[0], histories.shape[1] - 1)
            created = np.zeros(histories.shape[0], dtype=np.int64)
        else:
            last_slot = svc_windows[:, 1] - 1
            created = svc_windows[:, 0]
        services = [
            ServiceInstance(
                service_id=int(service_ids[row]),
                owner_id=int(owners[row]),
                kind=ServiceKind.REAL if is_real[row] else ServiceKind.CHAFF,
                cell=int(histories[row, last_slot[row]]),
                created_at=int(created[row]),
                location_history=histories[row].tolist(),
                migration_count=int(service_migrations[row]),
            )
            for row in range(histories.shape[0])
        ]
        if order is None:
            # The streaming engine draws the permutation once at run end
            # (the same single draw) and passes it in, because both its
            # materialise() and its incremental evaluate() need it.
            order = np.arange(histories.shape[0])
            if self.config.shuffle_observations:
                order = shuffle_rng.permutation(histories.shape[0])
        row_of_service = np.empty_like(order)
        row_of_service[order] = np.arange(order.size)
        real_rows = row_of_service[np.flatnonzero(is_real)]
        plane = FleetObservationPlane(
            trajectories=histories[order],
            service_ids=service_ids[order],
            owner_ids=owners[order],
            real_rows=real_rows,
        )
        return FleetReport(
            user_trajectories=users,
            observations=plane,
            ledgers=ledgers,
            services=services,
            placement=placement,
            evaluation_seed=evaluation_seed,
            windows=None if svc_windows is None else svc_windows[order],
            transition_stack=self._stack,
        )

    # ------------------------------------------------------------------
    # Batch engine: O(T) numpy slot loop
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        user_rngs: list[np.random.Generator],
        shuffle_rng: np.random.Generator,
        evaluation_seed: np.random.SeedSequence,
        recorder=NULL_RECORDER,
    ) -> FleetReport:
        config = self.config
        n_users, horizon = config.n_users, config.horizon
        budgets = config.chaffs_per_user()

        # 1 + 2. All user trajectories in one vectorised chain evolution
        #    and chaff plans through generate_batch — one all-users block
        #    of the shared block sampler (the streaming engine walks the
        #    same sampler in bounded blocks; the streams are identical
        #    because every user draws only from their own generator).
        owners, is_real, service_ids = self._service_layout(budgets)
        n_services = owners.size
        with recorder.span("kernel/sample", engine="batch", users=n_users):
            users, plans = self._sample_block(0, n_users, user_rngs)

        # 3 + 4. Capacity-enforced instantiation and the O(T) slot loop,
        #    one _FleetSlotKernel step per slot (the kernel body is the
        #    original batch loop, verbatim; golden-seed tests pin it).
        schedule = self._schedule
        per_slot = np.empty((n_users, horizon), dtype=float)
        kernel = _FleetSlotKernel(
            self, owners, is_real, PlacementEngine(self.topology)
        )
        svc_windows: np.ndarray | None = None
        with recorder.span("kernel/placement", engine="batch", slots=horizon):
            if schedule is None:
                kernel.begin_static(plans[:, 0])
                histories = np.empty((n_services, horizon), dtype=np.int64)
                for slot in range(horizon):
                    kernel.step_static(users[:, slot], plans[:, slot])
                    histories[:, slot] = kernel.cells
                    per_slot[:, slot] = kernel.slot_cost_totals()
            else:
                caps = schedule.capacities
                active_u = schedule.active_users()
                active_svc = active_u[owners]
                svc_windows = schedule.user_windows[owners]
                kernel.begin_dynamic(plans[:, 0], active_svc[:, 0], caps[0])
                histories = np.full((n_services, horizon), -1, dtype=np.int64)
                for slot in range(horizon):
                    live_rows = kernel.step_dynamic(
                        users[:, slot],
                        plans[:, slot],
                        active_svc[:, slot],
                        caps[slot],
                        active_u[:, slot],
                    )
                    histories[live_rows, slot] = kernel.cells[live_rows]
                    per_slot[:, slot] = kernel.slot_cost_totals()
        recorder.record_stats("placement", kernel.placement.stats.as_dict())

        ledgers = [
            CostLedger(
                migration_total=float(kernel.mig_total[user]),
                communication_total=float(kernel.comm_total[user]),
                chaff_total=float(kernel.chaff_total[user]),
                migrations=int(kernel.migrations[user]),
                slots=horizon,
                _per_slot=per_slot[user].tolist(),
            )
            for user in range(n_users)
        ]
        return self._build_report(
            users,
            histories,
            owners,
            is_real,
            service_ids,
            kernel.service_migrations,
            ledgers,
            kernel.placement.stats,
            shuffle_rng,
            evaluation_seed,
            svc_windows,
        )

    # ------------------------------------------------------------------
    # Loop engine: naive per-service reference path
    # ------------------------------------------------------------------
    def _run_loop(
        self,
        user_rngs: list[np.random.Generator],
        shuffle_rng: np.random.Generator,
        evaluation_seed: np.random.SeedSequence,
        recorder=NULL_RECORDER,
    ) -> FleetReport:
        config = self.config
        n_users, horizon = config.n_users, config.horizon
        budgets = config.chaffs_per_user()
        owners, is_real, service_ids = self._service_layout(budgets)
        n_services = owners.size
        model = self.cost_model

        users = np.empty((n_users, horizon), dtype=np.int64)
        plans = np.empty((n_services, horizon), dtype=np.int64)
        real_row_of_user = np.flatnonzero(is_real)
        sample_span = recorder.span("kernel/sample", engine="loop", users=n_users)
        with sample_span:
            for user, rng in enumerate(user_rngs):
                if config.start_cells is not None:
                    users[user] = self.chain.sample_trajectory(
                        horizon,
                        rng,
                        initial_state=int(config.start_cells[user]),
                        transition_stack=self._stack,
                    )
                else:
                    users[user] = self.chain.sample_trajectory(
                        horizon, rng, transition_stack=self._stack
                    )
                budget = budgets[user]
                if budget > 0:
                    first = real_row_of_user[user] + 1
                    plans[first : first + budget] = self.strategies[user].generate(
                        self.chain, users[user], budget, rng
                    )
            plans[real_row_of_user] = users

        schedule = self._schedule
        placement = PlacementEngine(self.topology)
        service_migrations = np.zeros(n_services, dtype=np.int64)
        ledgers = [CostLedger() for _ in range(n_users)]
        svc_windows: np.ndarray | None = None
        placement_token = recorder.begin(
            "kernel/placement", engine="loop", slots=horizon
        )
        if schedule is None:
            cells = np.empty(n_services, dtype=np.int64)
            for row in range(n_services):
                cells[row] = placement.place_initial(plans[row : row + 1, 0])[0]
            histories = np.empty((n_services, horizon), dtype=np.int64)
        else:
            caps = schedule.capacities
            active_u = schedule.active_users()
            active_svc = active_u[owners]
            svc_windows = schedule.user_windows[owners]
            placement.set_capacities(caps[0])
            cells = np.full(n_services, -1, dtype=np.int64)
            for row in range(n_services):
                if active_svc[row, 0]:
                    cells[row] = placement.place_initial(plans[row : row + 1, 0])[0]
            histories = np.full((n_services, horizon), -1, dtype=np.int64)
        for slot in range(horizon):
            if schedule is not None and slot > 0:
                # World transitions, one naive walk per phase: departures
                # free slots, then the new capacity view evicts, then
                # arrivals are admitted — same order as the batch kernel.
                for row in range(n_services):
                    if active_svc[row, slot - 1] and not active_svc[row, slot]:
                        placement.release(cells[row : row + 1])
                        cells[row] = -1
                if not np.array_equal(caps[slot], caps[slot - 1]):
                    placement.set_capacities(caps[slot])
                    new_cells, moved = placement.evict_overloaded(
                        cells, active_svc[:, slot - 1] & active_svc[:, slot]
                    )
                    for row in moved:
                        row = int(row)
                        ledger = ledgers[int(owners[row])]
                        ledger.count_migration()
                        ledger.charge_migration(
                            model.migration_cost(
                                self.topology, int(cells[row]), int(new_cells[row])
                            )
                        )
                        service_migrations[row] += 1
                    cells = new_cells
                for row in range(n_services):
                    if active_svc[row, slot] and not active_svc[row, slot - 1]:
                        cells[row] = placement.admit_arrivals(
                            plans[row : row + 1, slot]
                        )[0]
            for row in range(n_services):
                if schedule is not None and not active_svc[row, slot]:
                    continue
                owner = int(owners[row])
                ledger = ledgers[owner]
                user_cell = int(users[owner, slot])
                if is_real[row]:
                    target = self.policy.decide(
                        self.topology, int(cells[row]), user_cell
                    )
                else:
                    target = int(plans[row, slot])
                placed = placement.resolve_moves(
                    cells[row : row + 1], np.array([target], dtype=np.int64)
                )[0]
                if placed != cells[row]:
                    ledger.count_migration()
                    ledger.charge_migration(
                        model.migration_cost(
                            self.topology, int(cells[row]), int(placed)
                        )
                    )
                    service_migrations[row] += 1
                    cells[row] = placed
                if is_real[row]:
                    ledger.charge_communication(
                        model.communication_cost(
                            self.topology, user_cell, int(cells[row])
                        )
                    )
                else:
                    ledger.charge_chaff(model.chaff_running_cost)
                histories[row, slot] = cells[row]
            for ledger in ledgers:
                ledger.close_slot()
        recorder.end(placement_token)
        recorder.record_stats("placement", placement.stats.as_dict())
        return self._build_report(
            users,
            histories,
            owners,
            is_real,
            service_ids,
            service_migrations,
            ledgers,
            placement.stats,
            shuffle_rng,
            evaluation_seed,
            svc_windows,
        )


# ----------------------------------------------------------------------
# Fleet Monte-Carlo: run sharding through the parallel layer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetStatistics:
    """Aggregated outcomes of ``R`` independent fleet runs.

    The per-run matrices are kept (runs in seed order) so equivalence
    tests can assert bit-identity between serial and sharded execution.
    """

    tracking_runs: np.ndarray
    detection_runs: np.ndarray
    cost_runs: np.ndarray
    migrations_runs: np.ndarray
    rejected_runs: np.ndarray
    spilled_runs: np.ndarray
    evicted_runs: np.ndarray = None  # type: ignore[assignment]
    stranded_runs: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        # Older call sites built the statistics without the dynamic-world
        # counters; default them to zero per run.
        for name in ("evicted_runs", "stranded_runs"):
            if getattr(self, name) is None:
                object.__setattr__(
                    self,
                    name,
                    np.zeros(self.tracking_runs.shape[0], dtype=np.int64),
                )

    @property
    def n_runs(self) -> int:
        """Number of Monte-Carlo fleet runs ``R``."""
        return int(self.tracking_runs.shape[0])

    @property
    def n_users(self) -> int:
        """Number of users ``M`` per run."""
        return int(self.tracking_runs.shape[1])

    @property
    def tracking_per_user(self) -> np.ndarray:
        """Mean tracking accuracy per user across runs."""
        return self.tracking_runs.mean(axis=0)

    @property
    def detection_per_user(self) -> np.ndarray:
        """Mean detection accuracy per user across runs."""
        return self.detection_runs.mean(axis=0)

    @property
    def cost_per_user(self) -> np.ndarray:
        """Mean total cost per user across runs."""
        return self.cost_runs.mean(axis=0)

    @property
    def mean_tracking(self) -> float:
        """Fleet-wide mean tracking accuracy."""
        return float(self.tracking_runs.mean())

    @property
    def mean_detection(self) -> float:
        """Fleet-wide mean detection accuracy."""
        return float(self.detection_runs.mean())

    @property
    def mean_cost_per_user(self) -> float:
        """Fleet-wide mean per-user cost."""
        return float(self.cost_runs.mean())

    @property
    def mean_migrations(self) -> float:
        """Mean fleet-wide migration count per run."""
        return float(self.migrations_runs.mean())

    @property
    def mean_rejected(self) -> float:
        """Mean rejected placement requests per run (capacity pressure)."""
        return float(self.rejected_runs.mean())

    @property
    def mean_spilled(self) -> float:
        """Mean spilled placement requests per run."""
        return float(self.spilled_runs.mean())

    @property
    def mean_evicted(self) -> float:
        """Mean forced evictions per run (failures / capacity shocks)."""
        return float(self.evicted_runs.mean())

    @property
    def mean_stranded(self) -> float:
        """Mean stranded placements per run (nowhere to evict/admit to)."""
        return float(self.stranded_runs.mean())


def _episode_metrics(
    simulation: FleetSimulation,
    report: FleetReport,
    detector: TrajectoryDetector,
    recorder=NULL_RECORDER,
) -> tuple:
    """The per-run metric tuple of one evaluated episode."""
    with recorder.span("kernel/detect"):
        evaluation = report.evaluate(simulation.chain, detector)
    return (
        evaluation.tracking_per_user,
        evaluation.detected_per_user,
        report.per_user_cost,
        report.total_migrations,
        report.placement.rejected,
        report.placement.spilled,
        report.placement.evicted,
        report.placement.stranded,
    )


def _fleet_shard_worker(task) -> "tuple[list[tuple], dict | None]":
    """Replay one contiguous shard of the fleet runs (module-level for pools).

    The simulation itself travels through the parallel layer's shared
    channel (shipped once per worker), not inside every task tuple.
    When the parent recorded telemetry it ships a picklable
    ``RecorderSpec`` in the task; the worker rebuilds a local recorder
    from it and returns the recorded state alongside the metric tuples
    so the parent can merge it with worker attribution.
    """
    from .runstack import supports_fast_metrics

    (
        detector,
        seed,
        start,
        stop,
        engine,
        chunk_slots,
        regions,
        run_stack,
        spec,
    ) = task
    recorder = NULL_RECORDER if spec is None else spec.build()
    simulation: FleetSimulation = get_shared()
    metrics = []
    children = spawn_sequences_range(seed, start, stop)
    # The per-service "loop" reference has no stacked form; run_stack is
    # an execution-only knob, so falling back to per-episode runs there
    # keeps the numbers bit-identical by definition.
    step = run_stack if engine in ("batch", "stream") else 1
    # Vectorised scoring reads the kernel's running cost totals, so the
    # per-(user, slot) ledger plane is dead weight there — skip it.
    collect = not supports_fast_metrics(detector)
    shard_token = recorder.begin("shard", start=start, stop=stop, engine=engine)
    for base in range(0, len(children), max(step, 1)):
        group = children[base : base + max(step, 1)]
        if len(group) == 1:
            report = simulation.run(
                group[0],
                engine=engine,
                chunk_slots=chunk_slots,
                regions=regions,
                recorder=recorder,
            )
            metrics.append(
                _episode_metrics(simulation, report, detector, recorder)
            )
        else:
            outcome = simulation.run_stacked(
                group,
                engine=engine,
                chunk_slots=chunk_slots,
                regions=regions,
                collect_per_slot=collect,
                recorder=recorder,
            )
            metrics.extend(outcome.to_metrics(detector, recorder=recorder))
    recorder.end(shard_token)
    recorder.counter("montecarlo/episodes", stop - start)
    return metrics, (recorder.to_state() if spec is not None else None)


def run_fleet_monte_carlo(
    simulation: FleetSimulation,
    *,
    n_runs: int,
    seed: "int | np.random.SeedSequence",
    detector: TrajectoryDetector | None = None,
    workers: int = 1,
    engine: str = "batch",
    chunk_slots: int = 64,
    regions: int = 1,
    run_stack: int = 1,
    recorder=NULL_RECORDER,
) -> FleetStatistics:
    """Monte-Carlo a fleet simulation, optionally sharded over workers.

    Every run derives from child ``k`` of ``seed`` regardless of the
    worker count (workers respawn their shard's children by index, as in
    :mod:`repro.sim.parallel`), so ``workers=N`` is bit-identical to
    serial execution for any ``N`` (``0`` = all cores).  ``chunk_slots``
    and ``regions`` only apply to ``engine="stream"``; ``run_stack``
    folds that many episodes of a shard into one pass of the slot
    kernel (:meth:`FleetSimulation.run_stacked`).  Like the engine and
    worker count, none of these execution knobs ever change the numbers.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    if run_stack < 1:
        raise ValueError("run_stack must be positive")
    detector = detector or MaximumLikelihoodDetector()
    workers = min(resolve_workers(workers), n_runs)
    knowledge = getattr(detector, "knowledge", None)
    if workers > 1 and getattr(knowledge, "stateful", False):
        # Each pool worker would learn only from its own shard, so the
        # numbers would depend on the worker count — the one thing this
        # function promises they never do.
        raise ValueError(
            "a learning (stateful) detector cannot be sharded over "
            "workers; use repro.adversary.run_adversary_monte_carlo, "
            "which parallelises the simulation but replays the episodes "
            "serially in run order"
        )
    spec = recorder.spawn_spec() if recorder.enabled else None
    tasks = [
        (
            detector,
            seed,
            shard.start,
            shard.stop,
            engine,
            chunk_slots,
            regions,
            run_stack,
            spec,
        )
        for shard in shard_slices(n_runs, workers)
    ]
    mc_token = recorder.begin(
        "montecarlo/fleet", runs=n_runs, workers=workers, engine=engine
    )
    shards = parallel_map(
        _fleet_shard_worker,
        tasks,
        workers=len(tasks),
        shared=simulation,
        recorder=recorder,
    )
    recorder.end(mc_token)
    for index, (_, state) in enumerate(shards):
        if state is not None:
            recorder.merge(state, worker=index + 1)
    metrics = [run for shard, _ in shards for run in shard]
    return FleetStatistics(
        tracking_runs=np.stack([m[0] for m in metrics], axis=0),
        detection_runs=np.stack([m[1] for m in metrics], axis=0),
        cost_runs=np.stack([m[2] for m in metrics], axis=0),
        migrations_runs=np.array([m[3] for m in metrics], dtype=np.int64),
        rejected_runs=np.array([m[4] for m in metrics], dtype=np.int64),
        spilled_runs=np.array([m[5] for m in metrics], dtype=np.int64),
        evicted_runs=np.array([m[6] for m in metrics], dtype=np.int64),
        stranded_runs=np.array([m[7] for m in metrics], dtype=np.int64),
    )
