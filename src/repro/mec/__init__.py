"""MEC substrate: topology, services, migration, costs and the observer."""

from .topology import EdgeSite, MECTopology
from .service import ServiceIdAllocator, ServiceInstance, ServiceKind
from .costs import CostLedger, CostModel
from .policies import (
    AlwaysFollowPolicy,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    MigrationPolicy,
    NeverMigratePolicy,
)
from .migration import MigrationEngine, MigrationEvent
from .observer import EavesdropperObserver, ObservationMatrix
from .orchestrator import ChaffOrchestrator, ChaffPlan
from .placement import (
    PlacementEngine,
    PlacementStats,
    RegionPartition,
    ShardedPlacementEngine,
)
from .simulator import MECSimulation, MECSimulationConfig, MECSimulationReport
from .fleet import (
    FleetEvaluation,
    FleetObservationPlane,
    FleetReport,
    FleetSimulation,
    FleetSimulationConfig,
    FleetStatistics,
    materialise_full_plane,
    run_fleet_monte_carlo,
)
from .streaming import StreamingFleetEngine, StreamingFleetReport

__all__ = [
    "EdgeSite",
    "MECTopology",
    "ServiceIdAllocator",
    "ServiceInstance",
    "ServiceKind",
    "CostLedger",
    "CostModel",
    "AlwaysFollowPolicy",
    "DistanceThresholdPolicy",
    "MDPMigrationPolicy",
    "MigrationPolicy",
    "NeverMigratePolicy",
    "MigrationEngine",
    "MigrationEvent",
    "EavesdropperObserver",
    "ObservationMatrix",
    "ChaffOrchestrator",
    "ChaffPlan",
    "PlacementEngine",
    "PlacementStats",
    "RegionPartition",
    "ShardedPlacementEngine",
    "MECSimulation",
    "MECSimulationConfig",
    "MECSimulationReport",
    "FleetEvaluation",
    "FleetObservationPlane",
    "FleetReport",
    "FleetSimulation",
    "FleetSimulationConfig",
    "FleetStatistics",
    "materialise_full_plane",
    "run_fleet_monte_carlo",
    "StreamingFleetEngine",
    "StreamingFleetReport",
]
