"""MEC substrate: topology, services, migration, costs and the observer."""

from .topology import EdgeSite, MECTopology
from .service import ServiceInstance, ServiceKind
from .costs import CostLedger, CostModel
from .policies import (
    AlwaysFollowPolicy,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    MigrationPolicy,
    NeverMigratePolicy,
)
from .migration import MigrationEngine, MigrationEvent
from .observer import EavesdropperObserver, ObservationMatrix
from .orchestrator import ChaffOrchestrator, ChaffPlan
from .simulator import MECSimulation, MECSimulationConfig, MECSimulationReport

__all__ = [
    "EdgeSite",
    "MECTopology",
    "ServiceInstance",
    "ServiceKind",
    "CostLedger",
    "CostModel",
    "AlwaysFollowPolicy",
    "DistanceThresholdPolicy",
    "MDPMigrationPolicy",
    "MigrationPolicy",
    "NeverMigratePolicy",
    "MigrationEngine",
    "MigrationEvent",
    "EavesdropperObserver",
    "ObservationMatrix",
    "ChaffOrchestrator",
    "ChaffPlan",
    "MECSimulation",
    "MECSimulationConfig",
    "MECSimulationReport",
]
