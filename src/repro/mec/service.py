"""Service instances hosted on MECs.

A *service* here is an instance of a given type of cloud service (e.g. a
VM encapsulating an augmented-reality backend) that is generated and
migrated independently for each user (footnote 1 of the paper).  Chaff
services are independent instances of the same service type, so they are
indistinguishable from the real service in content; only their mobility
can give them away — which is exactly what the chaff control strategies
manage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ServiceKind", "ServiceInstance", "ServiceIdAllocator"]


@dataclass
class ServiceIdAllocator:
    """Hands out unique service ids within one simulation scope.

    A simulation (or a multi-user fleet) owns exactly one allocator and
    threads it through every component that instantiates services, so ids
    never collide when several users — or several composed simulations —
    share one observation plane.
    """

    next_id: int = 0

    def __post_init__(self) -> None:
        if self.next_id < 0:
            raise ValueError("next_id must be non-negative")

    def allocate(self) -> int:
        """The next unused service id."""
        service_id = self.next_id
        self.next_id += 1
        return service_id


class ServiceKind(enum.Enum):
    """Whether a service instance serves the real user or is a chaff."""

    REAL = "real"
    CHAFF = "chaff"


@dataclass
class ServiceInstance:
    """A service instance (VM) pinned to one MEC cell at a time.

    Attributes
    ----------
    service_id:
        Unique identifier within a simulation.
    owner_id:
        Identifier of the user who pays for / launched this instance.
    kind:
        Real service or chaff.
    cell:
        Cell index of the MEC currently hosting the instance.
    created_at:
        Slot at which the instance was instantiated.
    location_history:
        Cell occupied at each slot since creation (including the current
        one after :meth:`record_slot` is called).
    migration_count:
        Number of migrations performed so far.
    """

    service_id: int
    owner_id: int
    kind: ServiceKind
    cell: int
    created_at: int = 0
    location_history: list[int] = field(default_factory=list)
    migration_count: int = 0

    def __post_init__(self) -> None:
        if self.service_id < 0 or self.owner_id < 0:
            raise ValueError("identifiers must be non-negative")
        if self.cell < 0:
            raise ValueError("cell must be non-negative")
        if self.created_at < 0:
            raise ValueError("created_at must be non-negative")

    @property
    def is_chaff(self) -> bool:
        """Whether this instance is a chaff."""
        return self.kind is ServiceKind.CHAFF

    def migrate_to(self, cell: int) -> bool:
        """Move the instance to ``cell``; returns ``True`` if it actually moved."""
        if cell < 0:
            raise ValueError("cell must be non-negative")
        if cell == self.cell:
            return False
        self.cell = cell
        self.migration_count += 1
        return True

    def record_slot(self) -> None:
        """Append the current cell to the location history (one call per slot)."""
        self.location_history.append(self.cell)

    def trajectory(self) -> list[int]:
        """The recorded cell trajectory of this instance."""
        return list(self.location_history)
