"""Discrete-time Markov chain mobility substrate.

The paper models user mobility as an ergodic discrete-time Markov chain
(MC) over the set of MEC cells (Section II-C).  This module provides the
:class:`MarkovChain` class used throughout the reproduction: sampling of
trajectories, stationary distributions, log-likelihoods of observed
trajectories, entropy rates, total-variation mixing times and
Kullback-Leibler row distances (the paper's "temporal skewness" measure).

Conventions
-----------
``P[i, j]`` is the probability of moving *from* state ``i`` *to* state
``j`` in one slot, i.e. ``P(x_t = j | x_{t-1} = i)``.  States are the
integers ``0 .. n_states - 1`` and correspond to cell indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph
from scipy.sparse.linalg import eigs

from ..numerics import safe_log

__all__ = [
    "MarkovChain",
    "StationaryDistributionError",
    "validate_transition_matrix",
    "validate_sparse_transition_matrix",
    "stationary_distribution",
    "is_ergodic",
    "total_variation_distance",
    "DENSE_STATIONARY_LIMIT",
]


class StationaryDistributionError(ValueError):
    """Raised when a stationary distribution cannot be computed."""


def validate_transition_matrix(matrix: np.ndarray, *, atol: float = 1e-8) -> np.ndarray:
    """Validate and normalise a candidate transition matrix.

    Parameters
    ----------
    matrix:
        A square 2-D array whose rows sum to one (within ``atol``).
    atol:
        Absolute tolerance on row sums and non-negativity.

    Returns
    -------
    numpy.ndarray
        A float64 copy of the matrix with rows re-normalised exactly.

    Raises
    ------
    ValueError
        If the matrix is not square, contains negative entries, or a row
        does not sum to approximately one.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"transition matrix must be square, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("transition matrix must have at least one state")
    if np.any(arr < -atol):
        raise ValueError("transition matrix has negative entries")
    arr = np.clip(arr, 0.0, None)
    row_sums = arr.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > max(atol, 1e-6)):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(
            f"row {bad} of transition matrix sums to {row_sums[bad]:.6f}, expected 1"
        )
    return arr / row_sums[:, None]


def validate_sparse_transition_matrix(
    matrix: sp.sparray | sp.spmatrix, *, atol: float = 1e-8
) -> sp.csr_array:
    """Sparse counterpart of :func:`validate_transition_matrix`.

    Accepts any scipy sparse matrix (or array-like) and returns a
    canonical float64 CSR array — duplicates summed, explicit zeros
    removed, column indices sorted, rows re-normalised exactly — without
    ever materialising a dense ``(L, L)`` array.
    """
    P = sp.csr_array(matrix, dtype=np.float64)
    if P.ndim != 2 or P.shape[0] != P.shape[1]:
        raise ValueError(f"transition matrix must be square, got shape {P.shape}")
    if P.shape[0] == 0:
        raise ValueError("transition matrix must have at least one state")
    P.sum_duplicates()
    if P.data.size and np.any(P.data < -atol):
        raise ValueError("transition matrix has negative entries")
    np.clip(P.data, 0.0, None, out=P.data)
    P.eliminate_zeros()
    row_sums = np.asarray(P.sum(axis=1)).ravel()
    if np.any(np.abs(row_sums - 1.0) > max(atol, 1e-6)):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(
            f"row {bad} of transition matrix sums to {row_sums[bad]:.6f}, expected 1"
        )
    P.data /= np.repeat(row_sums, np.diff(P.indptr))
    P.sort_indices()
    return P


_STATIONARY_METHODS = ("auto", "dense", "power", "eigs")

#: With ``method="auto"``, sparse inputs up to this many states densify and
#: take the dense ``lstsq`` reference path (bit-identical to a dense chain
#: built from the same matrix); above it the iterative solvers run.  Dense
#: inputs always use ``lstsq`` so small-L results never change.
DENSE_STATIONARY_LIMIT = 512


def stationary_distribution(
    matrix: np.ndarray | sp.sparray | sp.spmatrix,
    *,
    atol: float = 1e-10,
    method: str = "auto",
    max_iter: int = 20_000,
) -> np.ndarray:
    """Compute the stationary distribution ``pi`` with ``pi @ P = pi``.

    Parameters
    ----------
    matrix:
        Dense array or scipy sparse matrix (kept sparse throughout the
        iterative solvers).
    atol:
        Upper bound on the noise-truncation threshold.  Entries below
        ``min(atol, eps * n) * max(pi)`` — i.e. provably below the
        solver's own floating-point accuracy — are zeroed, and only
        *after* the residual check validates the solution, so
        legitimately tiny stationary mass (π entries ~1/L at large L) is
        never silently renormalised away.
    method:
        ``"dense"`` solves the full least-squares system (the small-L
        reference), ``"power"`` runs the lazy power iteration
        ``x <- (x + P^T x) / 2`` (falling back to ``"eigs"`` if it has not
        converged after ``max_iter`` sweeps), ``"eigs"`` asks ARPACK for
        the leading eigenvector of the lazy operator.  ``"auto"`` picks
        ``"dense"`` for dense inputs and for sparse inputs with at most
        :data:`DENSE_STATIONARY_LIMIT` states, ``"power"`` otherwise.

    Raises
    ------
    StationaryDistributionError
        If no valid probability vector can be found.
    """
    if method not in _STATIONARY_METHODS:
        raise ValueError(
            f"unknown stationary method {method!r}; expected one of "
            f"{_STATIONARY_METHODS}"
        )
    if sp.issparse(matrix):
        P = validate_sparse_transition_matrix(matrix)
        if method == "auto":
            method = "dense" if P.shape[0] <= DENSE_STATIONARY_LIMIT else "power"
        if method == "dense":
            P = P.toarray()
    else:
        P = validate_transition_matrix(matrix)
        if method == "auto":
            method = "dense"
    n = P.shape[0]
    if n == 1:
        return np.array([1.0])
    if method == "dense":
        if sp.issparse(P):
            P = P.toarray()
        pi = _stationary_lstsq(P)
    elif method == "power":
        pi = _stationary_power(P, max_iter=max_iter)
    else:
        pi = _stationary_eigs(P)
    return _finalise_stationary(pi, P, atol=atol)


def _stationary_lstsq(P: np.ndarray) -> np.ndarray:
    """Solve ``(P^T - I) pi = 0`` with ``sum(pi) = 1`` by least squares."""
    n = P.shape[0]
    A = np.vstack([P.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    return np.real(pi)


def _stationary_power(
    P: np.ndarray | sp.csr_array, *, max_iter: int, tol: float = 1e-13
) -> np.ndarray:
    """Lazy power iteration ``x <- (x + P^T x) / 2``.

    The half-identity shift keeps the fixed point but makes eigenvalue 1
    strictly dominant, so even periodic chains converge.  Falls back to
    ARPACK if the L1 change has not dropped below ``tol`` in ``max_iter``
    sweeps (slowly mixing chains).
    """
    PT = P.T.tocsr() if sp.issparse(P) else np.ascontiguousarray(P.T)
    n = P.shape[0]
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        nxt = 0.5 * (x + PT @ x)
        nxt /= nxt.sum()
        if np.abs(nxt - x).sum() <= tol:
            return nxt
        x = nxt
    return _stationary_eigs(P, v0=x)


def _stationary_eigs(
    P: np.ndarray | sp.csr_array, *, v0: np.ndarray | None = None
) -> np.ndarray:
    """Leading eigenvector of the lazy transposed operator via ARPACK."""
    n = P.shape[0]
    if n < 3:  # ARPACK needs k < n - 1; a (2, 2) densify is always safe.
        return _stationary_lstsq(
            P.toarray() if sp.issparse(P) else P  # repro-lint: disable=RPL004
        )
    if sp.issparse(P):
        lazy = 0.5 * (sp.eye_array(n, format="csr") + P.T.tocsr())
    else:
        lazy = 0.5 * (np.eye(n) + P.T)
    if v0 is None:
        v0 = np.full(n, 1.0 / n)
    try:
        _, vecs = eigs(lazy, k=1, which="LM", v0=v0)
    except Exception as exc:  # ArpackError / ArpackNoConvergence
        raise StationaryDistributionError(
            f"eigenvector solve failed: {exc}"
        ) from exc
    pi = np.real(vecs[:, 0])
    if pi.sum() < 0:
        pi = -pi
    return pi


def _finalise_stationary(
    pi: np.ndarray, P: np.ndarray | sp.csr_array, *, atol: float
) -> np.ndarray:
    """Validate a candidate stationary vector, then clip numerical noise.

    Order matters (the historical bug): truncation happens only *after*
    the residual check passes, and only for entries below the solver's
    floating-point accuracy (``eps * n`` relative to ``max(pi)``, capped
    by ``atol``) — legitimate tiny mass survives.
    """
    pi = np.real(np.asarray(pi, dtype=float))
    if np.any(pi < -1e-8):
        raise StationaryDistributionError("stationary solve produced negative mass")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise StationaryDistributionError("stationary solve produced zero mass")
    pi = pi / total
    residual = np.max(np.abs(pi @ P - pi))
    if residual > 1e-6:
        raise StationaryDistributionError(
            f"stationary distribution residual too large: {residual:.3e}"
        )
    floor = min(atol, np.finfo(float).eps * pi.size) * pi.max()
    noise = pi < floor
    if np.any(pi[noise] > 0):
        pi = np.where(noise, 0.0, pi)
        pi = pi / pi.sum()
    return pi


def is_ergodic(matrix: np.ndarray | sp.sparray | sp.spmatrix) -> bool:
    """Return ``True`` if the chain is irreducible and aperiodic.

    Irreducibility is one strongly connected component of the transition
    graph; aperiodicity is a cycle-period gcd of 1, computed as
    ``gcd { d(u) + 1 - d(v) : edge u -> v }`` over BFS levels ``d`` from
    an arbitrary root.  Both are linear in the number of nonzero
    transitions, replacing the dense matrix-power primitivity check
    (O(L^5) worst case) with identical verdicts.  Accepts dense arrays
    and scipy sparse matrices.
    """
    if sp.issparse(matrix):
        adj = validate_sparse_transition_matrix(matrix)
    else:
        adj = sp.csr_array(validate_transition_matrix(matrix))
    n = adj.shape[0]
    if n == 1:
        return True
    n_components, _ = csgraph.connected_components(
        adj, directed=True, connection="strong"
    )
    if n_components != 1:
        return False
    levels = csgraph.shortest_path(
        adj, method="D", directed=True, unweighted=True, indices=0
    ).astype(np.int64)
    coo = adj.tocoo()
    period = np.gcd.reduce(levels[coo.row] + 1 - levels[coo.col])
    return bool(period == 1)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``0.5 * sum |p - q|`` between two pmfs."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return 0.5 * float(np.abs(p - q).sum())


#: Backwards-compatible alias for the shared helper.
_safe_log = safe_log


@dataclass
class MarkovChain:
    """An ergodic discrete-time Markov chain over cell indices.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix ``P`` with ``P[i, j] = P(j | i)``.
    initial_distribution:
        Distribution of the first state.  Defaults to the stationary
        distribution, matching the paper's steady-state assumption.

    Examples
    --------
    >>> import numpy as np
    >>> chain = MarkovChain(np.array([[0.9, 0.1], [0.2, 0.8]]))
    >>> chain.n_states
    2
    >>> trajectory = chain.sample_trajectory(5, rng=np.random.default_rng(0))
    >>> len(trajectory)
    5
    """

    #: Whether the transition matrix is stored sparsely (CSR).  The sparse
    #: subclass flips this; the trellis kernels dispatch on it.
    is_sparse: ClassVar[bool] = False

    transition_matrix: np.ndarray
    initial_distribution: np.ndarray | None = None
    _stationary: np.ndarray = field(init=False, repr=False)
    _log_transition: np.ndarray = field(init=False, repr=False)
    _cumulative_transition: np.ndarray = field(init=False, repr=False)
    #: One-entry memo of the last transition stack's cumulative form,
    #: keyed by object identity (the fleet passes the same immutable
    #: stack for every user of every run, so the cumsum is computed once).
    _stack_cumulative: "tuple[object, np.ndarray] | None" = field(
        init=False, repr=False, default=None
    )
    #: Lazily-built cumulative initial distribution for the inverse-CDF
    #: fast path of :meth:`sample_initial_state`.
    _cumulative_initial: "np.ndarray | None" = field(
        init=False, repr=False, default=None
    )
    #: Per-``top_k`` memo of the trellis predecessor structure, populated
    #: lazily by :func:`repro.core.trellis._predecessor_structure`.
    _trellis_predecessors: (
        "dict[int | None, tuple[np.ndarray, np.ndarray, np.ndarray]] | None"
    ) = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.transition_matrix = validate_transition_matrix(self.transition_matrix)
        self._stationary = stationary_distribution(self.transition_matrix)
        self._log_transition = _safe_log(self.transition_matrix)
        self._cumulative_transition = np.cumsum(self.transition_matrix, axis=1)
        if self.initial_distribution is None:
            self.initial_distribution = self._stationary.copy()
        else:
            init = np.asarray(self.initial_distribution, dtype=float)
            if init.shape != (self.n_states,):
                raise ValueError(
                    "initial distribution shape does not match number of states"
                )
            if np.any(init < 0) or not np.isclose(init.sum(), 1.0, atol=1e-6):
                raise ValueError("initial distribution must be a probability vector")
            self.initial_distribution = init / init.sum()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of cells (the paper's ``L``)."""
        return self.transition_matrix.shape[0]

    @property
    def stationary(self) -> np.ndarray:
        """Stationary distribution ``pi`` of the chain."""
        return self._stationary

    @property
    def log_stationary(self) -> np.ndarray:
        """Natural log of the stationary distribution (floored)."""
        return _safe_log(self._stationary)

    @property
    def log_transition_matrix(self) -> np.ndarray:
        """Natural log of the transition matrix (floored)."""
        return self._log_transition

    def is_ergodic(self) -> bool:
        """Whether the chain is irreducible and aperiodic."""
        return is_ergodic(self.transition_matrix)

    # ------------------------------------------------------------------
    # Backend-agnostic accessors
    # ------------------------------------------------------------------
    # Scorers, strategies and bounds read the transition structure through
    # these methods instead of indexing ``transition_matrix`` directly, so
    # the sparse backend can serve the same queries from CSR storage.

    def log_transition_entries(
        self, previous: np.ndarray, current: np.ndarray
    ) -> np.ndarray:
        """Floored ``log P(current | previous)`` for aligned index arrays.

        The gather every scorer uses: dense chains fancy-index the
        precomputed log matrix; the sparse subclass looks the pairs up in
        CSR storage without densifying.  Missing (zero-probability)
        transitions score ``log(LOG_FLOOR)`` in both backends.
        """
        previous = np.asarray(previous, dtype=np.int64)
        current = np.asarray(current, dtype=np.int64)
        return self._log_transition[previous, current]

    def transition_row(self, state: int) -> np.ndarray:
        """Row ``P(. | state)`` as a dense 1-D array (treat as read-only)."""
        self._check_state(state)
        return self.transition_matrix[state]

    def dense_transition(self) -> np.ndarray:
        """The full transition matrix as a dense array (treat as read-only).

        The accessor call sites outside ``mobility/`` use when they
        genuinely need the whole ``(L, L)`` matrix (per-slot world stacks,
        the CML pair-chain construction).  Dense chains return their
        storage directly; the sparse backend materialises behind the
        :data:`~repro.mobility.sparse.DENSE_MATERIALISE_LIMIT` guard, so a
        city-scale chain fails loudly here instead of silently allocating
        O(L^2).
        """
        return self.transition_matrix

    def transition_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The nonzero transitions as ``(rows, cols, probabilities)``.

        Row-major with ascending column order per row — the iteration
        order of CSR storage — in both backends, so edge-iterating
        kernels (the sparsity-aware Viterbi) are backend-agnostic.
        """
        rows, cols = np.nonzero(self.transition_matrix)
        return rows, cols, self.transition_matrix[rows, cols]

    def transition_diagonal(self) -> np.ndarray:
        """Self-transition probabilities ``P(i | i)`` as a 1-D array."""
        return np.diagonal(self.transition_matrix).copy()

    def positive_transition_extrema(self) -> tuple[float, float, float]:
        """``(p_min, p_max, p_2)`` over the transition matrix.

        ``p_min`` / ``p_max`` are the smallest / largest strictly positive
        entries and ``p_2`` is the smallest second-largest full-row entry
        (zeros included), the three constants the Section V-C2 likelihood
        gap bounds are built from.
        """
        P = self.transition_matrix
        positive = P[P > 0]
        second = np.sort(P, axis=1)[:, -2]
        return float(positive.min()), float(positive.max()), float(second.min())

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_initial_state(self, rng: np.random.Generator) -> int:
        """Draw the first state from the initial distribution.

        Inverse-CDF sampling on a cached cumulative initial distribution,
        consuming exactly one uniform — the same draw, and the same float
        comparisons (cumulative sum renormalised by its last entry), as
        ``rng.choice(n, p=...)``, which is an order of magnitude slower in
        the per-(run, user) sampling loops of the fleet Monte-Carlo.
        """
        cumulative = self._cumulative_initial
        if cumulative is None:
            cumulative = np.cumsum(self.initial_distribution)
            cumulative /= cumulative[-1]
            self._cumulative_initial = cumulative
        return int(
            min(
                np.searchsorted(cumulative, rng.random(), side="right"),
                self.n_states - 1,
            )
        )

    def sample_next_state(self, state: int, rng: np.random.Generator) -> int:
        """Draw the next state given the current ``state``."""
        self._check_state(state)
        # Inverse-CDF sampling on the precomputed cumulative rows is an order
        # of magnitude faster than rng.choice for the tight sampling loops of
        # the Monte-Carlo experiments.
        cumulative = self._cumulative_transition[state]
        return int(
            min(np.searchsorted(cumulative, rng.random(), side="right"),
                self.n_states - 1)
        )

    def sample_trajectory_randomness(
        self, length: int, rng: np.random.Generator
    ) -> tuple[int, np.ndarray]:
        """Draw the randomness for one trajectory in the canonical order.

        One initial-state draw followed by one block of ``length - 1``
        uniforms.  Every sampling path — scalar and batched — draws
        through this helper, which is what guarantees that batched
        execution consumes each generator exactly like repeated scalar
        calls (the bit-identity contract of the batch engine).
        """
        if length <= 0:
            raise ValueError("trajectory length must be positive")
        initial = self.sample_initial_state(rng)
        uniforms = (
            rng.random(length - 1) if length > 1 else np.empty(0, dtype=float)
        )
        return initial, uniforms

    def sample_trajectory(
        self,
        length: int,
        rng: np.random.Generator,
        *,
        initial_state: int | None = None,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sample a trajectory of ``length`` states.

        Parameters
        ----------
        length:
            Number of slots ``T`` (must be positive).
        rng:
            Source of randomness.
        initial_state:
            Optional fixed first state; otherwise drawn from the initial
            distribution.
        transition_stack:
            Optional ``(T - 1, L, L)`` per-step transition matrices of a
            time-varying chain; step ``t - 1`` governs the transition
            into slot ``t``.  The initial state is still drawn from this
            chain's initial distribution, and the randomness consumed is
            identical to the stationary path — which is what keeps
            empty-timeline dynamic runs bit-identical to static ones.
        """
        if length <= 0:
            raise ValueError("trajectory length must be positive")
        trajectory = np.empty(length, dtype=np.int64)
        if initial_state is None:
            first, uniforms = self.sample_trajectory_randomness(length, rng)
            trajectory[0] = first
        else:
            self._check_state(initial_state)
            trajectory[0] = initial_state
            uniforms = (
                rng.random(length - 1) if length > 1 else np.empty(0, dtype=float)
            )
        if length > 1:
            per_step = (
                None
                if transition_stack is None
                else self._cumulative_stack(transition_stack, length)
            )
            last = self.n_states - 1
            state = int(trajectory[0])
            for t in range(1, length):
                cumulative = (
                    self._cumulative_transition[state]
                    if per_step is None
                    else per_step[t - 1, state]
                )
                state = int(
                    min(
                        np.searchsorted(cumulative, uniforms[t - 1], side="right"),
                        last,
                    )
                )
                trajectory[t] = state
        return trajectory

    def sample_trajectories(
        self, count: int, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``count`` independent trajectories as a ``(count, length)`` array.

        Draws randomness in exactly the same per-trajectory order as
        repeated :meth:`sample_trajectory` calls (initial-state draw, then
        the uniform block), so the output is bit-identical to stacking
        scalar samples — but the chain evolution itself is vectorised over
        all trajectories, turning ``count * length`` Python iterations into
        ``length`` numpy steps.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if length <= 0:
            raise ValueError("trajectory length must be positive")
        initial = np.empty(count, dtype=np.int64)
        uniforms = np.empty((count, max(length - 1, 0)), dtype=float)
        for row in range(count):
            initial[row], uniforms[row] = self.sample_trajectory_randomness(
                length, rng
            )
        return self.evolve_from_uniforms(initial, uniforms)

    def sample_trajectories_batch(
        self,
        length: int,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sample one trajectory per generator as an ``(len(rngs), length)`` array.

        Each row consumes its generator exactly like a scalar
        :meth:`sample_trajectory` call would, so the batched Monte-Carlo
        engine reproduces the looped engine's trajectories run for run.
        ``transition_stack`` makes the evolution time-varying (see
        :meth:`evolve_from_uniforms`) without changing the draw order.
        """
        rngs = list(rngs)
        if not rngs:
            raise ValueError("need at least one generator")
        if length <= 0:
            raise ValueError("trajectory length must be positive")
        initial = np.empty(len(rngs), dtype=np.int64)
        uniforms = np.empty((len(rngs), max(length - 1, 0)), dtype=float)
        for row, rng in enumerate(rngs):
            initial[row], uniforms[row] = self.sample_trajectory_randomness(
                length, rng
            )
        return self.evolve_from_uniforms(
            initial, uniforms, transition_stack=transition_stack
        )

    def _validate_transition_stack(
        self, stack: np.ndarray, length: int
    ) -> np.ndarray:
        """Shape-check a per-step ``(T - 1, L, L)`` transition stack.

        The matrices themselves are trusted (they come out of validated
        :class:`MarkovChain` instances via the world layer); only the
        dimensions are checked so the per-slot kernels stay cheap.
        """
        arr = np.asarray(stack, dtype=float)
        n = self.n_states
        if arr.ndim != 3 or arr.shape[1:] != (n, n):
            raise ValueError(
                f"transition_stack must be (T - 1, {n}, {n}), got {arr.shape}"
            )
        if arr.shape[0] != length - 1:
            raise ValueError(
                f"transition_stack covers {arr.shape[0]} steps but the "
                f"trajectory has {length - 1}"
            )
        return arr

    def _cumulative_stack(self, stack: np.ndarray, length: int) -> np.ndarray:
        """The per-step cumulative rows of a transition stack, memoized.

        The memo holds a strong reference to the stack object and is keyed
        by identity, so repeated sampling calls against one simulation's
        (immutable) stack pay the cumsum exactly once.
        """
        cached = self._stack_cumulative
        if (
            cached is not None
            and cached[0] is stack
            and cached[1].shape[0] == length - 1
        ):
            return cached[1]
        cumulative = np.cumsum(
            self._validate_transition_stack(stack, length), axis=2
        )
        self._stack_cumulative = (stack, cumulative)
        return cumulative

    def evolve_from_uniforms(
        self,
        initial_states: np.ndarray,
        uniforms: np.ndarray,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evolve many trajectories from initial states and uniform draws.

        ``initial_states`` has shape ``(R,)`` and ``uniforms`` shape
        ``(R, T - 1)``; returns an ``(R, T)`` int64 array.  Each step is
        the same inverse-CDF lookup as :meth:`sample_next_state` — counting
        how many cumulative-row entries are ``<= u`` matches
        ``searchsorted(..., side="right")`` exactly — applied to all rows
        at once.

        With ``transition_stack`` (a ``(T - 1, L, L)`` stack of per-step
        matrices, e.g. from
        :meth:`repro.world.timeline.WorldSchedule.transition_stack`), step
        ``t`` uses ``transition_stack[t - 1]`` instead of this chain's
        matrix: the evolution follows the true time-varying chain while
        consuming the exact same uniforms.
        """
        initial = np.asarray(initial_states, dtype=np.int64)
        u = np.asarray(uniforms, dtype=float)
        if initial.ndim != 1 or u.ndim != 2 or u.shape[0] != initial.size:
            raise ValueError("initial_states must be (R,) and uniforms (R, T - 1)")
        if initial.size and (initial.min() < 0 or initial.max() >= self.n_states):
            raise ValueError("initial states out of range")
        length = u.shape[1] + 1
        per_step = (
            None
            if transition_stack is None
            else self._cumulative_stack(transition_stack, length)
        )
        trajectories = np.empty((initial.size, length), dtype=np.int64)
        trajectories[:, 0] = initial
        cumulative = self._cumulative_transition
        last = self.n_states - 1
        states = initial
        for t in range(1, length):
            rows = (
                cumulative[states] if per_step is None else per_step[t - 1, states]
            )
            states = np.minimum((rows <= u[:, t - 1, None]).sum(axis=1), last)
            trajectories[:, t] = states
        return trajectories

    # ------------------------------------------------------------------
    # Likelihood
    # ------------------------------------------------------------------
    def log_likelihood(self, trajectory: Sequence[int] | np.ndarray) -> float:
        """Log-likelihood of a trajectory under this chain (Eq. 1's objective).

        ``log pi(x_1) + sum_t log P(x_t | x_{t-1})``; the initial term uses
        the stationary distribution, matching the paper's ML detector.
        """
        traj = np.asarray(trajectory, dtype=np.int64)
        if traj.ndim != 1 or traj.size == 0:
            raise ValueError("trajectory must be a non-empty 1-D sequence")
        self._check_state(int(traj.min()))
        self._check_state(int(traj.max()))
        value = float(self.log_stationary[traj[0]])
        if traj.size > 1:
            value += float(self.log_transition_entries(traj[:-1], traj[1:]).sum())
        return value

    def log_likelihoods(
        self,
        trajectories: np.ndarray,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Log-likelihood of every trajectory in an ``(..., T)`` array.

        The time axis is last; any number of leading batch axes is
        supported (``(N, T)`` for one episode's observations, ``(R, N, T)``
        for a whole Monte-Carlo batch).  Computed by vectorised
        log-probability indexing, one shot for the entire tensor.

        With ``transition_stack`` the step into slot ``t`` is scored under
        ``transition_stack[t - 1]`` instead of this chain's matrix, so
        detectors and trackers evaluate observations against the *true*
        time-varying chain of a dynamic world.  The initial term stays
        ``log pi(x_1)`` under this chain's stationary distribution (the
        eavesdropper's steady-state prior).
        """
        traj = np.asarray(trajectories, dtype=np.int64)
        if traj.ndim < 1 or traj.size == 0:
            raise ValueError("trajectories must be a non-empty array")
        self._check_state(int(traj.min()))
        self._check_state(int(traj.max()))
        scores = self.log_stationary[traj[..., 0]].astype(float)
        if traj.shape[-1] > 1:
            if transition_stack is None:
                step_logs = self.log_transition_entries(
                    traj[..., :-1], traj[..., 1:]
                )
            else:
                stack = self._validate_transition_stack(
                    transition_stack, traj.shape[-1]
                )
                step_logs = _safe_log(stack)[
                    np.arange(traj.shape[-1] - 1), traj[..., :-1], traj[..., 1:]
                ]
            scores = scores + step_logs.sum(axis=-1)
        return scores

    def stepwise_log_likelihood(self, trajectory: Sequence[int] | np.ndarray) -> np.ndarray:
        """Per-slot log-likelihood contributions of a trajectory.

        Element 0 is ``log pi(x_1)`` and element ``t`` is
        ``log P(x_{t+1} | x_t)``.
        """
        traj = np.asarray(trajectory, dtype=np.int64)
        if traj.ndim != 1 or traj.size == 0:
            raise ValueError("trajectory must be a non-empty 1-D sequence")
        out = np.empty(traj.size, dtype=float)
        out[0] = self.log_stationary[traj[0]]
        if traj.size > 1:
            out[1:] = self.log_transition_entries(traj[:-1], traj[1:])
        return out

    def likelihood(self, trajectory: Sequence[int] | np.ndarray) -> float:
        """Likelihood (probability) of a trajectory under this chain."""
        return float(np.exp(self.log_likelihood(trajectory)))

    # ------------------------------------------------------------------
    # Information-theoretic quantities
    # ------------------------------------------------------------------
    def entropy_rate(self) -> float:
        """Entropy rate ``H(X_t | X_{t-1})`` in nats under stationarity."""
        P = self.transition_matrix
        # The floored log equals the raw log on the positive entries the
        # mask keeps, and needs no errstate guard on the zeros it drops.
        logs = np.where(P > 0, _safe_log(P), 0.0)
        row_entropies = -(P * logs).sum(axis=1)
        return float(self._stationary @ row_entropies)

    def stationary_collision_probability(self) -> float:
        """``sum_x pi(x)^2`` — the probability two independent stationary
        copies coincide, which drives the IM-strategy floor (Eq. 11)."""
        return float(np.sum(self._stationary**2))

    def kl_row_distance_matrix(self) -> np.ndarray:
        """Pairwise KL divergences between rows of the transition matrix.

        The paper uses the average of these distances as a measure of
        temporal skewness (Section VII-A1).
        """
        P = self.transition_matrix
        n = self.n_states
        out = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                out[i, j] = _kl_divergence(P[i], P[j])
        return out

    def mean_kl_row_distance(self) -> float:
        """Average KL distance between distinct rows (temporal skewness)."""
        n = self.n_states
        if n < 2:
            return 0.0
        distances = self.kl_row_distance_matrix()
        return float(distances.sum() / (n * (n - 1)))

    # ------------------------------------------------------------------
    # Mixing
    # ------------------------------------------------------------------
    def mixing_time(self, epsilon: float = 0.25, *, max_steps: int = 10_000) -> int:
        """Smallest ``t`` with ``max_x ||P^t(x, .) - pi||_TV <= epsilon``.

        Returns ``max_steps`` if the bound is not reached within the cap
        (callers treat that as "slow mixing").
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        P = self.transition_matrix
        pi = self._stationary
        power = np.eye(self.n_states)
        for t in range(1, max_steps + 1):
            power = power @ P
            distance = 0.5 * np.abs(power - pi[None, :]).sum(axis=1).max()
            if distance <= epsilon:
                return t
        return max_steps

    def n_step_matrix(self, steps: int) -> np.ndarray:
        """The ``steps``-step transition matrix ``P^steps``."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        return np.linalg.matrix_power(self.transition_matrix, steps)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.n_states:
            raise ValueError(f"state {state} out of range [0, {self.n_states})")

    def top_two_successors(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-state best and second-best successor cells.

        ``top1[i]`` is ``restricted_argmax_row(i)`` and ``top2[i]`` is
        ``restricted_argmax_row(i, {top1[i]})`` for every state at once —
        the lookup tables the vectorised MO / CML controllers index
        instead of recomputing argmaxes per slot.  Tie-breaking (first
        maximum) matches the scalar helpers exactly.
        """
        P = self.transition_matrix
        top1 = np.argmax(P, axis=1)
        masked = P.copy()
        masked[np.arange(self.n_states), top1] = -np.inf
        top2 = np.argmax(masked, axis=1)
        return top1, top2

    def top_two_stationary(self) -> tuple[int, int]:
        """Best and second-best stationary cells (same tie-breaking as
        :meth:`restricted_argmax_stationary`)."""
        top1 = int(np.argmax(self._stationary))
        weights = self._stationary.copy()
        weights[top1] = -np.inf
        top2 = int(np.argmax(weights))
        return top1, top2

    def restricted_argmax_row(self, state: int, excluded: Iterable[int] = ()) -> int:
        """Most likely next state from ``state`` excluding ``excluded`` cells.

        Used by the CML / MO strategies which repeatedly need the best and
        second-best successor cells.
        """
        self._check_state(state)
        row = self.transition_matrix[state].copy()
        for cell in excluded:
            self._check_state(int(cell))
            row[int(cell)] = -np.inf
        best = int(np.argmax(row))
        if row[best] == -np.inf:
            raise ValueError("all successor states are excluded")
        return best

    def restricted_argmax_stationary(self, excluded: Iterable[int] = ()) -> int:
        """Most likely stationary cell excluding ``excluded`` cells."""
        weights = self._stationary.copy()
        for cell in excluded:
            self._check_state(int(cell))
            weights[int(cell)] = -np.inf
        best = int(np.argmax(weights))
        if weights[best] == -np.inf:
            raise ValueError("all states are excluded")
        return best


def _kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL divergence D(p || q) in nats with 0 log 0 = 0 convention.

    Entries where ``p > 0`` but ``q == 0`` contribute a large finite
    penalty (log of the floor) rather than infinity so that averages over
    many rows stay finite, mirroring common practice when estimating KL
    from empirical matrices.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    mask = p > 0
    # p[mask] is strictly positive, so the floored log is the raw log.
    return float(np.sum(p[mask] * (_safe_log(p[mask]) - _safe_log(q[mask]))))
