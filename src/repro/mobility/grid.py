"""Two-dimensional grid mobility models.

The MEC substrate (``repro.mec``) places edge sites on a rectangular grid
of cells; these helpers build Markov chains over that grid so that the
chaff strategies and eavesdropper — which only see cell indices — work
unchanged on 2-D topologies.  The paper's related work on MEC service
migration ([5], [14]) uses exactly this kind of 2-D Markov mobility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from .markov import MarkovChain, validate_transition_matrix
from .sparse import SparseMarkovChain, resolve_backend

__all__ = ["GridTopology", "grid_random_walk", "grid_drift_walk"]

#: The four grid moves in the order the drift weights refer to them.
_DIRECTIONS = ((1, 0), (-1, 0), (0, 1), (0, -1))


@dataclass(frozen=True)
class GridTopology:
    """A rectangular grid of ``rows x cols`` cells.

    Cells are indexed row-major: cell ``(r, c)`` has index ``r * cols + c``.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid dimensions must be positive")

    @property
    def n_cells(self) -> int:
        """Total number of cells in the grid."""
        return self.rows * self.cols

    def index(self, row: int, col: int) -> int:
        """Cell index for grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coordinates ({row}, {col}) outside grid")
        return row * self.cols + col

    def coordinates(self, index: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of a cell index."""
        if not 0 <= index < self.n_cells:
            raise ValueError(f"index {index} outside grid")
        return divmod(index, self.cols)

    def neighbors(self, index: int) -> list[int]:
        """4-neighbourhood of a cell (excluding the cell itself)."""
        row, col = self.coordinates(index)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                out.append(self.index(r, c))
        return out

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(index, row, col)`` for every cell."""
        for index in range(self.n_cells):
            row, col = self.coordinates(index)
            yield index, row, col

    def manhattan_distance(self, a: int, b: int) -> int:
        """Manhattan (hop) distance between two cells."""
        ra, ca = self.coordinates(a)
        rb, cb = self.coordinates(b)
        return abs(ra - rb) + abs(ca - cb)


def _resolve_grid_backend(
    topology: GridTopology, backend: str, epsilon: float, builder: str
) -> str:
    """Resolve the backend for a grid chain; sparse forbids teleports."""
    n = topology.n_cells
    resolved = resolve_backend(backend, n_states=n, density=min(5.0 / n, 1.0))
    if resolved == "sparse" and epsilon > 0:
        if backend == "auto":
            return "dense"
        raise ValueError(
            f"{builder} with epsilon > 0 teleports to every cell, which "
            "densifies the matrix; pass epsilon=0 for the sparse backend"
        )
    return resolved


def _grid_neighbor_steps(
    topology: GridTopology,
) -> Iterator[tuple[tuple[int, int], np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(direction, valid_mask, sources, destinations)`` per move."""
    n = topology.n_cells
    coords_r, coords_c = np.divmod(np.arange(n), topology.cols)
    for dr, dc in _DIRECTIONS:
        r2 = coords_r + dr
        c2 = coords_c + dc
        valid = (
            (r2 >= 0) & (r2 < topology.rows) & (c2 >= 0) & (c2 < topology.cols)
        )
        yield (dr, dc), valid, np.flatnonzero(valid), (r2 * topology.cols + c2)[
            valid
        ]


def grid_random_walk(
    topology: GridTopology,
    *,
    stay_probability: float = 0.2,
    epsilon: float = 0.0,
    backend: str = "dense",
) -> MarkovChain:
    """Uniform random walk on the grid's 4-neighbourhood.

    The walker stays put with ``stay_probability`` and otherwise moves to a
    uniformly random neighbour.  A small ``epsilon`` teleport probability to
    any cell keeps the chain ergodic even on degenerate grids.

    With ``backend="sparse"`` (or ``"auto"`` on a large grid) the ~5
    nonzeros per row are assembled directly in CSR coordinates — no dense
    ``(L, L)`` array is ever materialised, which is what makes city-scale
    grids (``L = 10^4 .. 10^5``) constructible.  Teleports (``epsilon > 0``)
    are dense by nature and therefore rejected by the sparse backend.
    """
    if not 0 <= stay_probability < 1:
        raise ValueError("stay_probability must be in [0, 1)")
    n = topology.n_cells
    if epsilon < 0 or epsilon * n >= 1:
        raise ValueError("epsilon too large")
    if _resolve_grid_backend(topology, backend, epsilon, "grid_random_walk") == "sparse":
        degree = np.zeros(n, dtype=np.int64)
        edge_rows, edge_cols = [], []
        for _, _, sources, destinations in _grid_neighbor_steps(topology):
            degree[sources] += 1
            edge_rows.append(sources)
            edge_cols.append(destinations)
        stay = np.full(n, stay_probability)
        stay[degree == 0] += 1.0 - stay_probability
        share = np.divide(
            1.0 - stay_probability,
            degree,
            out=np.zeros(n, dtype=float),
            where=degree > 0,
        )
        rows = np.concatenate([np.arange(n), *edge_rows])
        cols = np.concatenate([np.arange(n), *edge_cols])
        data = np.concatenate([stay, *(share[src] for src in edge_rows)])
        matrix = sp.csr_array((data, (rows, cols)), shape=(n, n))
        return SparseMarkovChain(matrix)
    matrix = np.zeros((n, n), dtype=float)
    for index in range(n):
        neighbors = topology.neighbors(index)
        matrix[index, index] += stay_probability
        if neighbors:
            share = (1.0 - stay_probability) / len(neighbors)
            for other in neighbors:
                matrix[index, other] += share
        else:
            matrix[index, index] += 1.0 - stay_probability
    if epsilon > 0:
        matrix = (1.0 - epsilon * n) * matrix + epsilon
    return MarkovChain(validate_transition_matrix(matrix))


def grid_drift_walk(
    topology: GridTopology,
    *,
    drift: Sequence[float] = (0.4, 0.2, 0.2, 0.1),
    stay_probability: float = 0.1,
    epsilon: float = 1e-6,
    backend: str = "dense",
) -> MarkovChain:
    """Biased grid walk with a directional drift (commuter-like mobility).

    ``drift`` gives the relative preference for moving (down, up, right,
    left); probability mass toward a missing neighbour (grid boundary) is
    folded into staying.  This produces the spatially and temporally skewed
    behaviour that makes users easy to track, mirroring the paper's
    observation that predictable users need stronger chaff strategies.

    ``backend="sparse"`` assembles the chain directly in CSR coordinates
    (see :func:`grid_random_walk`); it requires ``epsilon=0`` since the
    teleport term densifies every row.
    """
    if len(drift) != 4:
        raise ValueError("drift must have four entries: down, up, right, left")
    if any(d < 0 for d in drift):
        raise ValueError("drift entries must be non-negative")
    if not 0 <= stay_probability < 1:
        raise ValueError("stay_probability must be in [0, 1)")
    total_drift = float(sum(drift))
    if total_drift <= 0:
        raise ValueError("at least one drift entry must be positive")
    move_mass = 1.0 - stay_probability
    directions = _DIRECTIONS
    n = topology.n_cells
    if _resolve_grid_backend(topology, backend, epsilon, "grid_drift_walk") == "sparse":
        masses = [move_mass * float(w) / total_drift for w in drift]
        stay = np.full(n, stay_probability)
        edge_rows, edge_cols, edge_data = [], [], []
        for mass, (_, valid, sources, destinations) in zip(
            masses, _grid_neighbor_steps(topology), strict=True
        ):
            if mass <= 0:
                continue
            edge_rows.append(sources)
            edge_cols.append(destinations)
            edge_data.append(np.full(sources.size, mass))
            stay[~valid] += mass
        rows = np.concatenate([np.arange(n), *edge_rows])
        cols = np.concatenate([np.arange(n), *edge_cols])
        data = np.concatenate([stay, *edge_data])
        matrix = sp.csr_array((data, (rows, cols)), shape=(n, n))
        return SparseMarkovChain(matrix)
    matrix = np.zeros((n, n), dtype=float)
    for index in range(n):
        row, col = topology.coordinates(index)
        matrix[index, index] += stay_probability
        for weight, (dr, dc) in zip(drift, directions, strict=True):
            mass = move_mass * weight / total_drift
            r, c = row + dr, col + dc
            if 0 <= r < topology.rows and 0 <= c < topology.cols:
                matrix[index, topology.index(r, c)] += mass
            else:
                matrix[index, index] += mass
    if epsilon > 0:
        matrix = (1.0 - epsilon * n) * matrix + epsilon
    return MarkovChain(validate_transition_matrix(matrix))
