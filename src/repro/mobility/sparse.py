"""Sparse (CSR) Markov chain backend for city-scale state spaces.

The paper's evaluation lives at ``L = 10`` cells, where dense ``(L, L)``
kernels are ideal.  A real metro grid has ``L = 10^3 .. 10^5`` cells of
which each reaches only a handful of neighbours, so everything O(L^2) —
storage, sampling tables, Viterbi layers, the stationary least-squares
solve — must become O(nnz).  :class:`SparseMarkovChain` stores the
transition matrix in scipy CSR form and serves the full
:class:`~repro.mobility.markov.MarkovChain` API:

* sampling consumes uniforms in exactly the same draw order as the dense
  path and maps each uniform through the row's cumulative probabilities
  over its *nonzero* entries, which reproduces the dense inverse-CDF
  lookup bit for bit (zeros contribute exactly ``0.0`` to the running
  cumulative sum, so the nonzero prefix sums equal the full-row prefix
  sums at the nonzero positions);
* ``log_likelihoods`` scoring gathers log-probabilities straight from CSR
  storage (missing transitions score ``log(LOG_FLOOR)`` like the dense
  floored log matrix);
* analysis helpers (entropy rate, top-two successor tables, likelihood
  gap extrema) run over the nonzero structure.

Dense ``(L, L)`` artefacts are only ever materialised behind an explicit
size guard (:data:`DENSE_MATERIALISE_LIMIT`), so accidental
densification of a city-scale chain fails loudly instead of swapping.
"""

from __future__ import annotations

from typing import ClassVar, Iterable

import numpy as np
import scipy.sparse as sp

from ..numerics import LOG_FLOOR, safe_log
from .markov import (
    MarkovChain,
    stationary_distribution,
    validate_sparse_transition_matrix,
    validate_transition_matrix,
)

__all__ = [
    "SparseMarkovChain",
    "resolve_backend",
    "as_backend",
    "chain_density",
    "BACKENDS",
    "SPARSE_AUTO_THRESHOLD",
    "DENSE_MATERIALISE_LIMIT",
]

#: Valid backend names accepted by configs, the CLI and :func:`as_backend`.
BACKENDS = ("dense", "sparse", "auto")

#: ``auto`` switches to the sparse backend at this many states (or earlier
#: for very sparse matrices — see :func:`resolve_backend`).
SPARSE_AUTO_THRESHOLD = 256

#: Refuse to materialise dense ``(L, L)`` artefacts above this many states.
DENSE_MATERIALISE_LIMIT = 2048

#: What a structurally-missing transition scores, matching the dense
#: backend's floored ``log`` of a zero entry exactly.
_LOG_ZERO = float(np.log(LOG_FLOOR))


def chain_density(chain: MarkovChain) -> float:
    """Fraction of nonzero transition-matrix entries of a chain."""
    n = chain.n_states
    if chain.is_sparse:
        nnz = chain.transition_matrix.nnz
    else:
        nnz = int(np.count_nonzero(chain.transition_matrix))
    return nnz / float(n * n)


def resolve_backend(
    backend: str, *, n_states: int, density: float | None = None
) -> str:
    """Resolve ``"auto"`` to a concrete backend name.

    The heuristic favours sparse once the state space is large
    (``n_states >= SPARSE_AUTO_THRESHOLD``) or moderately large with a
    genuinely sparse structure (at most ~1/8 of entries nonzero): below
    that, dense kernels win on constant factors.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend != "auto":
        return backend
    if n_states >= SPARSE_AUTO_THRESHOLD:
        return "sparse"
    if density is not None and n_states >= 64 and density <= 0.125:
        return "sparse"
    return "dense"


def as_backend(chain: MarkovChain, backend: str) -> MarkovChain:
    """Return ``chain`` under the requested backend (``dense``/``sparse``/``auto``).

    Dense -> sparse conversion preserves the validated matrix entries, the
    stationary vector and the initial distribution bit for bit, so runs at
    small L are unchanged by the backend switch.
    """
    resolved = resolve_backend(
        backend, n_states=chain.n_states, density=chain_density(chain)
    )
    if resolved == "sparse":
        return chain if chain.is_sparse else SparseMarkovChain.from_chain(chain)
    return chain.to_dense() if chain.is_sparse else chain


class SparseMarkovChain(MarkovChain):
    """A :class:`MarkovChain` whose transition matrix lives in CSR storage.

    Accepts a scipy sparse matrix (validated and canonicalised without
    densifying) or a dense array (validated through the exact dense
    pipeline first, so the stored floats — and everything derived from
    them — are bit-identical to a dense chain built from the same
    matrix).  All sampling, scoring and analysis entry points of the
    dense API work; the few inherently O(L^2) diagnostics
    (``log_transition_matrix``, ``mixing_time``, ``n_step_matrix``,
    ``kl_row_distance_matrix``) densify behind the
    :data:`DENSE_MATERIALISE_LIMIT` guard.
    """

    is_sparse: ClassVar[bool] = True

    def __init__(
        self,
        transition_matrix: sp.sparray | sp.spmatrix | np.ndarray,
        initial_distribution: np.ndarray | None = None,
        *,
        stationary_method: str = "auto",
    ) -> None:
        if sp.issparse(transition_matrix):
            P = validate_sparse_transition_matrix(transition_matrix)
            stationary = stationary_distribution(P, method=stationary_method)
        else:
            dense = validate_transition_matrix(
                np.asarray(transition_matrix, dtype=float)
            )
            stationary = stationary_distribution(dense)
            P = sp.csr_array(dense)
            P.sort_indices()
        self._init_sparse(P, stationary=stationary, initial=initial_distribution)

    @classmethod
    def from_chain(cls, chain: MarkovChain) -> "SparseMarkovChain":
        """Sparse twin of an existing chain, bypassing re-validation.

        Copies the already-validated matrix, the stationary vector and the
        initial distribution verbatim (re-validating would renormalise rows
        by a sum that is 1.0 only up to rounding, perturbing entries by an
        ulp and breaking bit-identity with the source chain).
        """
        if chain.is_sparse:
            P = sp.csr_array(chain.transition_matrix.copy())
        else:
            P = sp.csr_array(np.asarray(chain.transition_matrix, dtype=float))
            P.sort_indices()
        obj = object.__new__(cls)
        obj._init_sparse(
            P,
            stationary=np.asarray(chain.stationary, dtype=float).copy(),
            initial=np.asarray(chain.initial_distribution, dtype=float).copy(),
        )
        return obj

    def _init_sparse(
        self,
        P: sp.csr_array,
        *,
        stationary: np.ndarray,
        initial: np.ndarray | None,
    ) -> None:
        self.transition_matrix = P
        self._stationary = np.asarray(stationary, dtype=float)
        if self._stationary.shape != (P.shape[0],):
            raise ValueError("stationary vector shape does not match the matrix")
        n = P.shape[0]
        self._log_data = safe_log(P.data)
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(P.indptr))
        #: Sorted ``row * L + col`` keys of the nonzero entries; scoring
        #: gathers resolve (prev, next) pairs by binary search on these.
        self._flat_keys = rows * n + P.indices.astype(np.int64)
        self._entry_rows = rows
        self._cumulative_transition = None
        self._stack_cumulative = None
        self._sampling_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._dense_cache: np.ndarray | None = None
        self._dense_log_cache: np.ndarray | None = None
        self._predecessor_cache = None
        if initial is None:
            self.initial_distribution = self._stationary.copy()
        else:
            init = np.asarray(initial, dtype=float)
            if init.shape != (n,):
                raise ValueError(
                    "initial distribution shape does not match number of states"
                )
            if np.any(init < 0) or not np.isclose(init.sum(), 1.0, atol=1e-6):
                raise ValueError("initial distribution must be a probability vector")
            self.initial_distribution = init / init.sum()

    def __repr__(self) -> str:  # the dataclass repr would dump arrays
        return (
            f"{type(self).__name__}(n_states={self.n_states}, "
            f"nnz={self.transition_matrix.nnz})"
        )

    # ------------------------------------------------------------------
    # Dense materialisation (guarded)
    # ------------------------------------------------------------------
    def _dense_transition(self) -> np.ndarray:
        if self.n_states > DENSE_MATERIALISE_LIMIT:
            raise ValueError(
                f"refusing to materialise a dense ({self.n_states}, "
                f"{self.n_states}) matrix from a sparse chain (limit "
                f"{DENSE_MATERIALISE_LIMIT}); use the sparse-aware API"
            )
        if self._dense_cache is None:
            self._dense_cache = self.transition_matrix.toarray()
        return self._dense_cache

    def to_dense(self) -> MarkovChain:
        """A dense :class:`MarkovChain` over the same transition structure.

        Guarded by :data:`DENSE_MATERIALISE_LIMIT`.  The dense constructor
        re-validates, so entries may differ from this chain's by an ulp.
        """
        return MarkovChain(
            self._dense_transition().copy(),
            np.asarray(self.initial_distribution, dtype=float).copy(),
        )

    def dense_transition(self) -> np.ndarray:
        """Dense matrix view — guarded by :data:`DENSE_MATERIALISE_LIMIT`."""
        return self._dense_transition()

    @property
    def log_transition_matrix(self) -> np.ndarray:
        """Dense floored log matrix — guarded; prefer
        :meth:`log_transition_entries` at scale."""
        if self._dense_log_cache is None:
            self._dense_log_cache = safe_log(self._dense_transition())
        return self._dense_log_cache

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def log_transition_entries(
        self, previous: np.ndarray, current: np.ndarray
    ) -> np.ndarray:
        previous = np.asarray(previous, dtype=np.int64)
        current = np.asarray(current, dtype=np.int64)
        prev_b, cur_b = np.broadcast_arrays(previous, current)
        keys = prev_b.ravel() * np.int64(self.n_states) + cur_b.ravel()
        flat = self._flat_keys
        pos = np.searchsorted(flat, keys)
        clipped = np.minimum(pos, flat.size - 1)
        found = (pos < flat.size) & (flat[clipped] == keys)
        out = np.where(found, self._log_data[clipped], _LOG_ZERO)
        return out.reshape(prev_b.shape)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sampling_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Padded per-row cumulative probabilities and successor columns.

        Row ``i`` of ``padded_cum`` holds the running cumulative sums of
        the row's nonzero probabilities, padded on the right with the row
        total; ``cols_ext[i, k]`` is the state reached when ``k`` of those
        cumulative values are ``<= u``, padded with ``L - 1``.  Counting
        ``padded_cum[i] <= u`` therefore reproduces the dense backend's
        count over the full-row cumulative (including its clamp of
        ``u >= 1`` overflows to the last state) exactly.
        """
        if self._sampling_cache is None:
            P = self.transition_matrix
            n = self.n_states
            counts = np.diff(P.indptr)
            width = int(counts.max())
            rows_of = self._entry_rows
            within = np.arange(P.nnz) - np.repeat(P.indptr[:-1], counts)
            padded = np.zeros((n, width), dtype=float)
            padded[rows_of, within] = P.data
            padded_cum = np.cumsum(padded, axis=1)
            cols_ext = np.full((n, width + 1), n - 1, dtype=np.int64)
            cols_ext[rows_of, within] = P.indices
            self._sampling_cache = (padded_cum, cols_ext)
        return self._sampling_cache

    def sample_next_state(self, state: int, rng: np.random.Generator) -> int:
        self._check_state(state)
        padded_cum, cols_ext = self._sampling_tables()
        count = int((padded_cum[state] <= rng.random()).sum())
        return int(cols_ext[state, count])

    def sample_trajectory(
        self,
        length: int,
        rng: np.random.Generator,
        *,
        initial_state: int | None = None,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        if transition_stack is not None:
            # Per-step stacks are dense (T - 1, L, L) artefacts of the
            # dynamic-world layer; the inherited path handles them.
            return super().sample_trajectory(
                length,
                rng,
                initial_state=initial_state,
                transition_stack=transition_stack,
            )
        if length <= 0:
            raise ValueError("trajectory length must be positive")
        trajectory = np.empty(length, dtype=np.int64)
        if initial_state is None:
            first, uniforms = self.sample_trajectory_randomness(length, rng)
            trajectory[0] = first
        else:
            self._check_state(initial_state)
            trajectory[0] = initial_state
            uniforms = (
                rng.random(length - 1) if length > 1 else np.empty(0, dtype=float)
            )
        if length > 1:
            padded_cum, cols_ext = self._sampling_tables()
            state = int(trajectory[0])
            for t in range(1, length):
                count = int((padded_cum[state] <= uniforms[t - 1]).sum())
                state = int(cols_ext[state, count])
                trajectory[t] = state
        return trajectory

    def evolve_from_uniforms(
        self,
        initial_states: np.ndarray,
        uniforms: np.ndarray,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        if transition_stack is not None:
            return super().evolve_from_uniforms(
                initial_states, uniforms, transition_stack=transition_stack
            )
        initial = np.asarray(initial_states, dtype=np.int64)
        u = np.asarray(uniforms, dtype=float)
        if initial.ndim != 1 or u.ndim != 2 or u.shape[0] != initial.size:
            raise ValueError("initial_states must be (R,) and uniforms (R, T - 1)")
        if initial.size and (initial.min() < 0 or initial.max() >= self.n_states):
            raise ValueError("initial states out of range")
        padded_cum, cols_ext = self._sampling_tables()
        length = u.shape[1] + 1
        trajectories = np.empty((initial.size, length), dtype=np.int64)
        trajectories[:, 0] = initial
        states = initial
        for t in range(1, length):
            counts = (padded_cum[states] <= u[:, t - 1, None]).sum(axis=1)
            states = cols_ext[states, counts]
            trajectories[:, t] = states
        return trajectories

    # ------------------------------------------------------------------
    # Trellis support
    # ------------------------------------------------------------------
    def transition_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The nonzero transitions as ``(rows, cols, probabilities)``."""
        P = self.transition_matrix
        return self._entry_rows, P.indices.astype(np.int64), P.data

    # ------------------------------------------------------------------
    # Information-theoretic quantities and diagnostics
    # ------------------------------------------------------------------
    def entropy_rate(self) -> float:
        # CSR data is strictly positive (explicit zeros are eliminated at
        # validation), so the floored log equals the raw log entry-wise.
        data = self.transition_matrix.data
        contributions = -(data * safe_log(data))
        row_entropies = np.bincount(
            self._entry_rows, weights=contributions, minlength=self.n_states
        )
        return float(self._stationary @ row_entropies)

    def kl_row_distance_matrix(self) -> np.ndarray:
        dense = MarkovChain(
            self._dense_transition().copy(),
            np.asarray(self.initial_distribution, dtype=float).copy(),
        )
        return dense.kl_row_distance_matrix()

    def mixing_time(self, epsilon: float = 0.25, *, max_steps: int = 10_000) -> int:
        # P^t fills in as the chain mixes, so the power iteration is dense
        # regardless of backend; run it on the guarded dense matrix.
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        P = self._dense_transition()
        pi = self._stationary
        power = np.eye(self.n_states)
        for t in range(1, max_steps + 1):
            power = power @ P
            distance = 0.5 * np.abs(power - pi[None, :]).sum(axis=1).max()
            if distance <= epsilon:
                return t
        return max_steps

    def n_step_matrix(self, steps: int) -> np.ndarray:
        if steps < 0:
            raise ValueError("steps must be non-negative")
        power = np.eye(self.n_states)
        dense = self._dense_transition()
        for _ in range(steps):
            power = power @ dense
        return power

    # ------------------------------------------------------------------
    # Successor tables (CML / MO strategy support)
    # ------------------------------------------------------------------
    def transition_row(self, state: int) -> np.ndarray:
        self._check_state(state)
        P = self.transition_matrix
        start, end = P.indptr[state], P.indptr[state + 1]
        row = np.zeros(self.n_states, dtype=float)
        row[P.indices[start:end]] = P.data[start:end]
        return row

    def transition_diagonal(self) -> np.ndarray:
        return np.asarray(self.transition_matrix.diagonal(), dtype=float)

    def positive_transition_extrema(self) -> tuple[float, float, float]:
        P = self.transition_matrix
        data = P.data
        counts = np.diff(P.indptr)
        starts = P.indptr[:-1]
        row_max = np.maximum.reduceat(data, starts)
        positions = np.arange(data.size)
        first_max = np.minimum.reduceat(
            np.where(data == np.repeat(row_max, counts), positions, data.size),
            starts,
        )
        masked = data.copy()
        masked[first_max] = -np.inf
        second_nonzero = np.maximum.reduceat(masked, starts)
        # The second-largest *full-row* entry is the second-largest nonzero
        # when the row has two, else one of the row's zeros.
        second = np.where(counts >= 2, second_nonzero, 0.0)
        return float(data.min()), float(data.max()), float(second.min())

    def top_two_successors(self) -> tuple[np.ndarray, np.ndarray]:
        P = self.transition_matrix
        data = P.data
        cols = P.indices
        counts = np.diff(P.indptr)
        starts = P.indptr[:-1]
        positions = np.arange(data.size)
        # First maximum per row; CSR column indices ascend, so the minimum
        # position among ties is the dense argmax's first-maximum column.
        row_max = np.maximum.reduceat(data, starts)
        first_max = np.minimum.reduceat(
            np.where(data == np.repeat(row_max, counts), positions, data.size),
            starts,
        )
        top1 = cols[first_max].astype(np.int64)
        masked = data.copy()
        masked[first_max] = -np.inf
        second_val = np.maximum.reduceat(masked, starts)
        second_pos = np.minimum.reduceat(
            np.where(masked == np.repeat(second_val, counts), positions, data.size),
            starts,
        )
        second_cols = cols[np.minimum(second_pos, data.size - 1)].astype(np.int64)
        # With a single nonzero the dense argmax over the masked row lands
        # on the first zero column (value 0.0 beats the -inf mask).
        first_zero = np.where(top1 != 0, 0, min(1, self.n_states - 1))
        top2 = np.where(counts >= 2, second_cols, first_zero)
        return top1, top2

    def restricted_argmax_row(self, state: int, excluded: Iterable[int] = ()) -> int:
        self._check_state(state)
        row = self.transition_row(state)
        for cell in excluded:
            self._check_state(int(cell))
            row[int(cell)] = -np.inf
        best = int(np.argmax(row))
        if row[best] == -np.inf:
            raise ValueError("all successor states are excluded")
        return best
