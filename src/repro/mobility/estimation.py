"""Estimating empirical mobility models from observed cell trajectories.

The trace-driven evaluation (Section VII-B) models all taxi traces as
trajectories generated independently from the same Markov chain and fits
the *empirical* transition matrix and steady-state distribution.  This
module implements that fitting step, with additive smoothing so that the
resulting chain is ergodic and every observed trajectory has non-zero
likelihood.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .markov import MarkovChain

__all__ = [
    "count_transitions",
    "count_censored_transitions",
    "empirical_transition_matrix",
    "empirical_state_distribution",
    "fit_markov_chain",
    "chain_from_transition_counts",
]


def count_transitions(
    trajectories: Iterable[Sequence[int]], n_states: int
) -> np.ndarray:
    """Count observed one-step transitions over all trajectories.

    Returns an ``(n_states, n_states)`` integer matrix ``C`` with
    ``C[i, j]`` the number of observed moves from cell ``i`` to cell ``j``.
    """
    if n_states <= 0:
        raise ValueError("n_states must be positive")
    counts = np.zeros((n_states, n_states), dtype=np.int64)
    for trajectory in trajectories:
        traj = np.asarray(trajectory, dtype=np.int64)
        if traj.ndim != 1:
            raise ValueError("each trajectory must be 1-D")
        if traj.size == 0:
            continue
        if traj.min() < 0 or traj.max() >= n_states:
            raise ValueError("trajectory contains out-of-range cell indices")
        if traj.size > 1:
            np.add.at(counts, (traj[:-1], traj[1:]), 1)
    return counts


def count_censored_transitions(
    trajectories: np.ndarray, n_states: int
) -> np.ndarray:
    """Count one-step transitions in a censored ``(..., T)`` cell tensor.

    Entries ``< 0`` mark slots where the trajectory was not observed (a
    censored observation plane, a churned service's dead slots); a
    transition is counted only when *both* endpoints are visible, so the
    counts never bridge an observation gap.  Any number of leading batch
    axes is supported — an ``(N, T)`` plane or a whole ``(R, N, T)``
    Monte-Carlo tensor is counted in one vectorised pass.
    """
    if n_states <= 0:
        raise ValueError("n_states must be positive")
    traj = np.asarray(trajectories, dtype=np.int64)
    counts = np.zeros((n_states, n_states), dtype=np.int64)
    if traj.size == 0 or traj.shape[-1] < 2:
        return counts
    if traj.max() >= n_states:
        raise ValueError("trajectory contains out-of-range cell indices")
    prev = traj[..., :-1]
    nxt = traj[..., 1:]
    valid = (prev >= 0) & (nxt >= 0)
    np.add.at(counts, (prev[valid], nxt[valid]), 1)
    return counts


def empirical_state_distribution(
    trajectories: Iterable[Sequence[int]], n_states: int, *, smoothing: float = 0.0
) -> np.ndarray:
    """Empirical distribution of visited cells across all trajectories."""
    if n_states <= 0:
        raise ValueError("n_states must be positive")
    if smoothing < 0:
        raise ValueError("smoothing must be non-negative")
    counts = np.full(n_states, smoothing, dtype=float)
    total_visits = 0
    for trajectory in trajectories:
        traj = np.asarray(trajectory, dtype=np.int64)
        if traj.size == 0:
            continue
        if traj.min() < 0 or traj.max() >= n_states:
            raise ValueError("trajectory contains out-of-range cell indices")
        np.add.at(counts, traj, 1.0)
        total_visits += traj.size
    if total_visits == 0 and smoothing == 0:
        raise ValueError("no observations and no smoothing; distribution undefined")
    return counts / counts.sum()


def empirical_transition_matrix(
    trajectories: Iterable[Sequence[int]],
    n_states: int,
    *,
    smoothing: float = 1e-3,
) -> np.ndarray:
    """Row-normalised transition matrix with additive (Laplace) smoothing.

    ``smoothing`` is added to every count so rows with no observations
    become uniform and the fitted chain is ergodic, which the chaff
    strategies require (they take logs of transition probabilities).
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive to guarantee ergodicity")
    counts = count_transitions(trajectories, n_states).astype(float)
    counts += smoothing
    return counts / counts.sum(axis=1, keepdims=True)


def fit_markov_chain(
    trajectories: Sequence[Sequence[int]],
    n_states: int,
    *,
    smoothing: float = 1e-3,
) -> MarkovChain:
    """Fit a :class:`MarkovChain` to observed trajectories.

    This is the model the trace-driven eavesdropper uses: the empirical
    transition matrix of the whole population, as in Section VII-B1.
    """
    matrix = empirical_transition_matrix(
        trajectories, n_states, smoothing=smoothing
    )
    return MarkovChain(matrix)


def chain_from_transition_counts(
    counts: np.ndarray, *, smoothing: float = 1e-3
) -> MarkovChain:
    """A :class:`MarkovChain` fitted from a raw transition-count matrix.

    The incremental counterpart of :func:`fit_markov_chain`: callers that
    accumulate counts over time (e.g. a learning eavesdropper observing
    plane after plane) keep the integer count matrix themselves and refit
    whenever they need a scoring model.  ``smoothing`` is added to every
    count so unobserved rows become uniform and the fitted chain is
    ergodic; its stationary distribution serves as the model's prior over
    initial cells.
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive to guarantee ergodicity")
    arr = np.asarray(counts, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1] or arr.shape[0] == 0:
        raise ValueError("counts must be a non-empty square matrix")
    if np.any(arr < 0):
        raise ValueError("counts must be non-negative")
    arr = arr + smoothing
    return MarkovChain(arr / arr.sum(axis=1, keepdims=True))
