"""Mobility substrate: Markov-chain models of user movement over MEC cells."""

from .markov import (
    MarkovChain,
    StationaryDistributionError,
    is_ergodic,
    stationary_distribution,
    total_variation_distance,
    validate_transition_matrix,
)
from .models import (
    SYNTHETIC_MODEL_BUILDERS,
    lazy_uniform_model,
    paper_synthetic_models,
    random_mobility_model,
    spatially_skewed_model,
    spatially_temporally_skewed_model,
    temporally_skewed_model,
    uniform_iid_model,
)
from .sparse import (
    BACKENDS,
    SparseMarkovChain,
    as_backend,
    chain_density,
    resolve_backend,
    validate_sparse_transition_matrix,
)
from .grid import GridTopology, grid_drift_walk, grid_random_walk
from .estimation import (
    count_transitions,
    empirical_state_distribution,
    empirical_transition_matrix,
    fit_markov_chain,
)

__all__ = [
    "MarkovChain",
    "StationaryDistributionError",
    "is_ergodic",
    "stationary_distribution",
    "total_variation_distance",
    "validate_transition_matrix",
    "BACKENDS",
    "SparseMarkovChain",
    "as_backend",
    "chain_density",
    "resolve_backend",
    "validate_sparse_transition_matrix",
    "SYNTHETIC_MODEL_BUILDERS",
    "lazy_uniform_model",
    "paper_synthetic_models",
    "random_mobility_model",
    "spatially_skewed_model",
    "spatially_temporally_skewed_model",
    "temporally_skewed_model",
    "uniform_iid_model",
    "GridTopology",
    "grid_drift_walk",
    "grid_random_walk",
    "count_transitions",
    "empirical_state_distribution",
    "empirical_transition_matrix",
    "fit_markov_chain",
]
