"""Synthetic mobility models used in the paper's evaluation (Section VII-A).

The paper evaluates four user mobility models over ``L = 10`` cells:

(a) *non-skewed*: a Markov chain with randomly generated transition
    probabilities (neither spatially nor temporally skewed);
(b) *spatially-skewed*: as (a) but with a strongly favoured column
    (cell index 5 in the paper, i.e. the 5th cell), so the chain
    concentrates on one cell;
(c) *temporally-skewed*: a cyclic random walk with uniform stationary
    distribution (wrap-around boundaries, p=0.5 right, q=0.25 left);
(d) *spatially and temporally skewed*: the same random walk without
    wrap-around (reflecting boundaries), yielding a non-uniform
    stationary distribution.

Models (c) and (d) allow transitions between non-adjacent cells with a
small probability ``epsilon = 1e-5`` as in the paper's footnote 9.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .markov import MarkovChain, validate_transition_matrix
from .sparse import as_backend

__all__ = [
    "random_mobility_model",
    "spatially_skewed_model",
    "temporally_skewed_model",
    "spatially_temporally_skewed_model",
    "lazy_uniform_model",
    "uniform_iid_model",
    "paper_synthetic_models",
    "SYNTHETIC_MODEL_BUILDERS",
]


def random_mobility_model(
    n_cells: int = 10, *, rng: np.random.Generator | None = None
) -> MarkovChain:
    """Model (a): random row-normalised transition matrix.

    Each entry is drawn uniformly from [0, 1] and rows are normalised,
    producing a chain that is neither spatially nor temporally skewed.
    """
    if n_cells < 2:
        raise ValueError("need at least two cells")
    rng = rng or np.random.default_rng(0)
    matrix = rng.uniform(0.0, 1.0, size=(n_cells, n_cells))
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix)


def spatially_skewed_model(
    n_cells: int = 10,
    *,
    hot_cell: int | None = None,
    hot_weight: float = 2.0,
    rng: np.random.Generator | None = None,
) -> MarkovChain:
    """Model (b): random matrix with one column boosted to ``hot_weight``.

    The paper's footnote 7: generate an LxL matrix of uniform values,
    set the j-th column (j = 5, zero-based 4) to 2, and normalise rows.
    """
    if n_cells < 2:
        raise ValueError("need at least two cells")
    rng = rng or np.random.default_rng(1)
    if hot_cell is None:
        hot_cell = min(4, n_cells - 1)
    if not 0 <= hot_cell < n_cells:
        raise ValueError("hot_cell out of range")
    if hot_weight <= 0:
        raise ValueError("hot_weight must be positive")
    matrix = rng.uniform(0.0, 1.0, size=(n_cells, n_cells))
    matrix[:, hot_cell] = hot_weight
    matrix /= matrix.sum(axis=1, keepdims=True)
    return MarkovChain(matrix)


def _random_walk_matrix(
    n_cells: int,
    p_right: float,
    p_left: float,
    *,
    wrap: bool,
    epsilon: float,
) -> np.ndarray:
    """Build the (wrapping or reflecting) birth-death random-walk matrix.

    Each cell moves right with probability ``p_right``, left with
    ``p_left`` and stays otherwise.  With ``wrap`` the walk is on a ring;
    without it, probability mass that would leave the boundary is folded
    into staying put (the paper's "variation of model (c) without
    wrapping").  A small ``epsilon`` probability of jumping to any
    non-adjacent cell keeps the chain fully connected (footnote 9).
    """
    if n_cells < 3:
        raise ValueError("random-walk models need at least three cells")
    if p_right < 0 or p_left < 0 or p_right + p_left > 1:
        raise ValueError("invalid step probabilities")
    if epsilon < 0 or epsilon * n_cells >= 1:
        raise ValueError("epsilon too large")
    stay = 1.0 - p_right - p_left
    matrix = np.zeros((n_cells, n_cells), dtype=float)
    for i in range(n_cells):
        right = (i + 1) % n_cells
        left = (i - 1) % n_cells
        if wrap:
            matrix[i, right] += p_right
            matrix[i, left] += p_left
            matrix[i, i] += stay
        else:
            if i + 1 < n_cells:
                matrix[i, i + 1] += p_right
            else:
                matrix[i, i] += p_right
            if i - 1 >= 0:
                matrix[i, i - 1] += p_left
            else:
                matrix[i, i] += p_left
            matrix[i, i] += stay
    if epsilon > 0:
        matrix = (1.0 - epsilon * n_cells) * matrix + epsilon
    return validate_transition_matrix(matrix)


def temporally_skewed_model(
    n_cells: int = 10,
    *,
    p_right: float = 0.5,
    p_left: float = 0.25,
    epsilon: float = 1e-5,
) -> MarkovChain:
    """Model (c): wrapping random walk with a uniform stationary distribution."""
    return MarkovChain(
        _random_walk_matrix(n_cells, p_right, p_left, wrap=True, epsilon=epsilon)
    )


def spatially_temporally_skewed_model(
    n_cells: int = 10,
    *,
    p_right: float = 0.5,
    p_left: float = 0.25,
    epsilon: float = 1e-5,
) -> MarkovChain:
    """Model (d): non-wrapping random walk with a skewed stationary distribution."""
    return MarkovChain(
        _random_walk_matrix(n_cells, p_right, p_left, wrap=False, epsilon=epsilon)
    )


def lazy_uniform_model(n_cells: int = 10, *, stay_probability: float = 0.5) -> MarkovChain:
    """A lazy chain that stays with ``stay_probability`` and otherwise moves
    uniformly.  Useful as a maximally unpredictable baseline in tests."""
    if not 0 <= stay_probability < 1:
        raise ValueError("stay_probability must be in [0, 1)")
    off = (1.0 - stay_probability) / (n_cells - 1)
    matrix = np.full((n_cells, n_cells), off, dtype=float)
    np.fill_diagonal(matrix, stay_probability)
    return MarkovChain(matrix)


def uniform_iid_model(n_cells: int = 10) -> MarkovChain:
    """I.i.d. uniform movement: every row is the uniform distribution."""
    matrix = np.full((n_cells, n_cells), 1.0 / n_cells, dtype=float)
    return MarkovChain(matrix)


#: Builders for the paper's four synthetic models, keyed by the labels used
#: in the figures.
SYNTHETIC_MODEL_BUILDERS: Dict[str, Callable[..., MarkovChain]] = {
    "non-skewed": random_mobility_model,
    "spatially-skewed": spatially_skewed_model,
    "temporally-skewed": temporally_skewed_model,
    "spatially&temporally-skewed": spatially_temporally_skewed_model,
}


def paper_synthetic_models(
    n_cells: int = 10, *, seed: int = 2017, backend: str = "dense"
) -> Dict[str, MarkovChain]:
    """Build the four mobility models (a)-(d) used in Figs. 4-7.

    Parameters
    ----------
    n_cells:
        Number of cells ``L`` (the paper uses 10).
    seed:
        Seed for the random matrices of models (a) and (b); models (c)
        and (d) are deterministic.
    backend:
        Chain storage backend (``"dense"``, ``"sparse"`` or ``"auto"``).
        The transition matrices are built densely either way — these
        models are fully connected — so this only switches the kernels a
        downstream simulation exercises; results are bit-identical.
    """
    # Imported lazily: repro.sim pulls in the whole harness, which imports
    # this package back (runner -> core -> mobility).
    from ..sim.seeding import spawn_generators

    rng_a, rng_b = spawn_generators(seed, 2, key="paper-models")
    models = {
        "non-skewed": random_mobility_model(n_cells, rng=rng_a),
        "spatially-skewed": spatially_skewed_model(n_cells, rng=rng_b),
        "temporally-skewed": temporally_skewed_model(n_cells),
        "spatially&temporally-skewed": spatially_temporally_skewed_model(n_cells),
    }
    if backend == "dense":
        return models
    return {name: as_backend(chain, backend) for name, chain in models.items()}
