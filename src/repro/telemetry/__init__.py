"""Deterministic telemetry: spans, counters and run metrics.

The instrumentation layer is dependency-free and determinism-safe: a
:class:`Recorder` measures nested phase spans through an *injected*
monotonic clock (never an ambient ``time.perf_counter`` — rule RPL008
keeps wall-clock references out of the pure layers), accumulates
counters and gauges, and merges worker-local state back into the parent
with worker attribution.  The :data:`NULL_RECORDER` default makes every
instrumented hot path a near-no-op when telemetry is off, and the
exporters emit one flat ``metrics.json`` schema plus Chrome trace-event
JSON loadable in Perfetto / ``about:tracing``.
"""

from repro.telemetry.export import (
    METRICS_SCHEMA,
    chrome_trace,
    metrics_json,
    phase_summary_table,
    write_metrics,
    write_trace,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    RecorderSpec,
    default_clock,
)

__all__ = [
    "METRICS_SCHEMA",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RecorderSpec",
    "chrome_trace",
    "default_clock",
    "metrics_json",
    "phase_summary_table",
    "write_metrics",
    "write_trace",
]
