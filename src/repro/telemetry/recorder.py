"""Span / counter / gauge recorder with an injected monotonic clock.

Determinism contract: recording telemetry never touches an RNG stream
and never feeds timing back into a computation, so a run instrumented
with a live :class:`Recorder` is bit-identical to the same run under
:data:`NULL_RECORDER`.  The clock is injected (``Recorder(clock=...)``)
so the pure layers (``sim``/``mec``/``adversary``/``world``) never name
a wall-clock function themselves — rule RPL008 enforces exactly that.

Worker protocol: the parent calls :meth:`Recorder.spawn_spec` to get a
picklable :class:`RecorderSpec` carrying the injected clock, ships it
inside the shard task, and each worker rebuilds a local recorder with
``spec.build()``.  The worker returns ``recorder.to_state()`` alongside
its numeric payload and the parent folds it back with
:meth:`Recorder.merge`, attributing the spans to the worker's lane.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Clock",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RecorderSpec",
    "default_clock",
]

Clock = Callable[[], float]

#: Plain-dict snapshot of a recorder (the cross-process wire format).
RecorderState = dict[str, Any]


def default_clock() -> float:
    """The sanctioned process-wide monotonic clock (module-level, picklable)."""
    return time.perf_counter()


class RecorderSpec:
    """Picklable recipe for rebuilding a recorder inside a worker."""

    __slots__ = ("clock",)

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    def build(self) -> "Recorder":
        """Construct a fresh worker-local recorder with the parent's clock."""
        return Recorder(clock=self.clock)


class Recorder:
    """Collects nested phase spans, counters and gauges.

    Parameters
    ----------
    clock:
        Zero-argument monotonic clock returning seconds.  Defaults to
        :func:`default_clock`; tests inject a fake clock to make span
        durations deterministic.
    """

    enabled = True

    def __init__(self, *, clock: Clock | None = None) -> None:
        self._clock: Clock = clock if clock is not None else default_clock
        #: Completed spans: ``{"name", "ts", "dur", "tid"[, "args"]}``.
        self.spans: list[dict[str, Any]] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._stack: list[str] = []

    # -- spans ---------------------------------------------------------

    def begin(self, name: str, **attrs: Any) -> tuple[str, float, int, dict[str, Any]]:
        """Open a phase imperatively; pass the token to :meth:`end`.

        The imperative pair exists for regions that are awkward to wrap
        in a ``with`` block (long engine bodies ending in a ``return``);
        :meth:`span` is the preferred form everywhere else.
        """
        depth = len(self._stack)
        self._stack.append(name)
        return (name, self._clock(), depth, dict(attrs))

    def end(self, token: tuple[str, float, int, dict[str, Any]]) -> None:
        """Close a phase opened by :meth:`begin` and record its span."""
        end = self._clock()
        name, start, depth, attrs = token
        if self._stack and self._stack[-1] == name:
            self._stack.pop()
        record: dict[str, Any] = {
            "name": name,
            "ts": start,
            "dur": end - start,
            "tid": 0,
            "depth": depth,
        }
        if attrs:
            record["args"] = {key: attrs[key] for key in sorted(attrs)}
        self.spans.append(record)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a phase; spans nest through the ``with`` stack."""
        token = self.begin(name, **attrs)
        try:
            yield
        finally:
            self.end(token)

    # -- scalars -------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the monotonically accumulating counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time measurement (last write wins)."""
        self.gauges[name] = value

    def record_stats(self, prefix: str, stats: Mapping[str, Any]) -> None:
        """Fold an ad-hoc stats mapping onto the unified schema.

        Integer values become counters (they are counts: hits, spills,
        evictions...), floats become gauges (ratios, latencies), and
        nested mappings flatten with ``/`` separators.
        """
        for key in sorted(stats):
            value = stats[key]
            name = f"{prefix}/{key}"
            if isinstance(value, Mapping):
                self.record_stats(name, value)
            elif isinstance(value, bool):
                self.gauge(name, float(value))
            elif isinstance(value, int):
                self.counter(name, value)
            elif isinstance(value, float):
                self.gauge(name, value)

    # -- worker merge --------------------------------------------------

    def spawn_spec(self) -> RecorderSpec:
        """Picklable spec a worker rebuilds its local recorder from."""
        return RecorderSpec(self._clock)

    def to_state(self) -> RecorderState:
        """Plain-dict snapshot (JSON/pickle-safe) for cross-process merge."""
        return {
            "spans": [dict(span) for span in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def merge(self, state: RecorderState, *, worker: int | None = None) -> None:
        """Fold a worker's :meth:`to_state` snapshot into this recorder.

        Counters sum; gauges are applied in sorted-key order so the
        merged result is independent of dict insertion order; spans are
        appended with ``worker`` stamped as the trace lane (``tid``) of
        every span the worker had not already attributed (nested merges
        keep the deepest attribution).
        """
        for span in state.get("spans", ()):
            merged = dict(span)
            if worker is not None and not merged.get("tid"):
                merged["tid"] = worker
            self.spans.append(merged)
        counters = state.get("counters", {})
        for key in sorted(counters):
            self.counter(key, counters[key])
        gauges = state.get("gauges", {})
        for key in sorted(gauges):
            self.gauge(key, gauges[key])

    # -- aggregation ---------------------------------------------------

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregate: count, total/mean/min/max duration (s)."""
        totals: dict[str, dict[str, float]] = {}
        for span in self.spans:
            name = str(span["name"])
            dur = float(span["dur"])
            entry = totals.get(name)
            if entry is None:
                totals[name] = {
                    "count": 1,
                    "total_s": dur,
                    "min_s": dur,
                    "max_s": dur,
                }
            else:
                entry["count"] += 1
                entry["total_s"] += dur
                entry["min_s"] = min(entry["min_s"], dur)
                entry["max_s"] = max(entry["max_s"], dur)
        for entry in totals.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return {name: totals[name] for name in sorted(totals)}


class _NullSpan:
    """Reusable no-op context manager (one instance, zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Telemetry-off recorder: every operation is a near-free no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, **attrs: Any) -> None:
        return None

    def end(self, token: Any) -> None:
        return None

    def counter(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def record_stats(self, prefix: str, stats: Mapping[str, Any]) -> None:
        return None

    def spawn_spec(self) -> None:
        return None

    def to_state(self) -> RecorderState:
        return {"spans": [], "counters": {}, "gauges": {}}

    def merge(self, state: RecorderState, *, worker: int | None = None) -> None:
        return None

    def phase_totals(self) -> dict[str, dict[str, float]]:
        return {}


#: The process-wide telemetry-off default every instrumented API takes.
NULL_RECORDER = NullRecorder()
