"""Exporters for the telemetry schema.

Two on-disk shapes, both dependency-free JSON:

* :func:`metrics_json` — the flat ``repro-telemetry/1`` record (schema
  tag, counters, gauges, per-phase aggregates).  Benchmarks and the CLI
  ``--metrics-out`` flag both emit this shape, so every ``BENCH_*.json``
  and ``metrics.json`` in the tree parses identically.
* :func:`chrome_trace` — Chrome trace-event JSON (``"X"`` complete
  events, microsecond timestamps) loadable in Perfetto or
  ``about:tracing``; worker-merged spans land on their own ``tid`` lane.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.telemetry.recorder import NullRecorder, Recorder

__all__ = [
    "METRICS_SCHEMA",
    "chrome_trace",
    "metrics_json",
    "phase_summary_table",
    "write_metrics",
    "write_trace",
]

#: Schema tag stamped into every exported metrics record.
METRICS_SCHEMA = "repro-telemetry/1"

AnyRecorder = Union[Recorder, NullRecorder]


def metrics_json(recorder: AnyRecorder) -> dict[str, Any]:
    """The flat metrics record: counters, gauges and phase aggregates."""
    counters = getattr(recorder, "counters", {})
    gauges = getattr(recorder, "gauges", {})
    return {
        "schema": METRICS_SCHEMA,
        "counters": {key: counters[key] for key in sorted(counters)},
        "gauges": {key: gauges[key] for key in sorted(gauges)},
        "phases": recorder.phase_totals(),
    }


def chrome_trace(recorder: AnyRecorder) -> dict[str, Any]:
    """Chrome trace-event JSON (Perfetto / about:tracing loadable)."""
    events: list[dict[str, Any]] = []
    for span in getattr(recorder, "spans", ()):
        event: dict[str, Any] = {
            "name": span["name"],
            "ph": "X",
            "ts": float(span["ts"]) * 1e6,
            "dur": float(span["dur"]) * 1e6,
            "pid": 0,
            "tid": span.get("tid", 0),
        }
        if "args" in span:
            event["args"] = span["args"]
        events.append(event)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_metrics(recorder: AnyRecorder, path: "str | Path") -> Path:
    """Write :func:`metrics_json` to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(metrics_json(recorder), indent=2, sort_keys=True) + "\n")
    return target


def write_trace(recorder: AnyRecorder, path: "str | Path") -> Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(chrome_trace(recorder), indent=2, sort_keys=True) + "\n")
    return target


def phase_summary_table(recorder: AnyRecorder) -> list[str]:
    """End-of-run phase summary as aligned text rows (CLI / demo output)."""
    totals = recorder.phase_totals()
    if not totals:
        return ["(no spans recorded)"]
    header = ("phase", "count", "total ms", "mean ms", "max ms")
    rows = [header]
    for name, entry in totals.items():
        rows.append(
            (
                name,
                f"{int(entry['count'])}",
                f"{entry['total_s'] * 1e3:.3f}",
                f"{entry['mean_s'] * 1e3:.3f}",
                f"{entry['max_s'] * 1e3:.3f}",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[col].rjust(widths[col]) for col in range(1, len(header))]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines
