"""Tracking / detection accuracy metrics and Monte-Carlo aggregation.

The paper measures a chaff strategy by the eavesdropper's *tracking
accuracy*: the time-average probability that the cell of the detected
trajectory coincides with the user's cell (Section II-D).  Figures 5, 7,
9 and 10 plot this quantity — either its evolution over time (averaged
over Monte-Carlo runs at each slot) or its time average per user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.game import BatchEpisodeResult, EpisodeResult

__all__ = [
    "TrackingStatistics",
    "aggregate_episodes",
    "aggregate_batch",
    "per_slot_accuracy",
    "time_average_accuracy",
    "detection_rate",
]


@dataclass(frozen=True)
class TrackingStatistics:
    """Aggregated eavesdropper performance over Monte-Carlo episodes.

    Attributes
    ----------
    per_slot_accuracy:
        Length-``T`` array: fraction of runs in which the eavesdropper
        tracked the user correctly at each slot (the curves of Fig. 5/7).
    tracking_accuracy:
        Overall time-average tracking accuracy.
    detection_accuracy:
        Fraction of runs in which the detector picked the user's own
        trajectory (different from tracking accuracy, as the paper notes).
    n_episodes:
        Number of Monte-Carlo runs aggregated.
    """

    per_slot_accuracy: np.ndarray
    tracking_accuracy: float
    detection_accuracy: float
    n_episodes: int

    @property
    def horizon(self) -> int:
        """Number of slots ``T``."""
        return int(self.per_slot_accuracy.size)

    def cumulative_accuracy(self) -> np.ndarray:
        """Running time-average accuracy up to each slot ``t``."""
        return np.cumsum(self.per_slot_accuracy) / np.arange(1, self.horizon + 1)


def per_slot_accuracy(episodes: Sequence[EpisodeResult]) -> np.ndarray:
    """Per-slot tracking accuracy averaged over episodes."""
    if not episodes:
        raise ValueError("need at least one episode")
    horizon = episodes[0].horizon
    stacked = np.stack(
        [episode.tracked_per_slot.astype(float) for episode in episodes], axis=0
    )
    if stacked.shape[1] != horizon:
        raise ValueError("episodes have inconsistent horizons")
    return stacked.mean(axis=0)


def time_average_accuracy(episodes: Sequence[EpisodeResult]) -> float:
    """Overall time-average tracking accuracy over episodes."""
    return float(per_slot_accuracy(episodes).mean())


def detection_rate(episodes: Sequence[EpisodeResult]) -> float:
    """Fraction of episodes in which the user's own trajectory was detected."""
    if not episodes:
        raise ValueError("need at least one episode")
    return float(np.mean([episode.detected_user for episode in episodes]))


def aggregate_episodes(episodes: Sequence[EpisodeResult]) -> TrackingStatistics:
    """Aggregate a batch of episodes into :class:`TrackingStatistics`."""
    per_slot = per_slot_accuracy(episodes)
    return TrackingStatistics(
        per_slot_accuracy=per_slot,
        tracking_accuracy=float(per_slot.mean()),
        detection_accuracy=detection_rate(episodes),
        n_episodes=len(episodes),
    )


def aggregate_batch(batch: BatchEpisodeResult) -> TrackingStatistics:
    """Aggregate a :class:`BatchEpisodeResult` into :class:`TrackingStatistics`.

    The tracking indicators are 0/1 values, so the run-axis means here are
    exact and coincide bit for bit with :func:`aggregate_episodes` over the
    materialised episode list.
    """
    per_slot = batch.tracked_per_slot.astype(float).mean(axis=0)
    return TrackingStatistics(
        per_slot_accuracy=per_slot,
        tracking_accuracy=float(per_slot.mean()),
        detection_accuracy=float(batch.detected_user.astype(float).mean()),
        n_episodes=batch.n_runs,
    )
