"""Per-slot log-likelihood differences ``c_t`` and the induced chains.

Eqs. (14)-(15) define ``c_t`` as the difference between the user's and the
chaff's per-slot log-likelihood contributions:

    c_1 = log pi(x_{1,1}) - log pi(x_{2,1})
    c_t = log P(x_{1,t} | x_{1,t-1}) - log P(x_{2,t} | x_{2,t-1}),   t > 1.

The sign of ``E[c_t]`` decides whether the CML/OO and MO strategies drive
the tracking accuracy to zero (Theorems V.4 / V.5); Fig. 6 plots the
empirical CDF of ``c_t``.  For the CML strategy the pair
``y_t = (x_{1,t}, x_{2,t})`` is itself a Markov chain (Eq. 17), so
``E[c_t]`` and the related constants can be computed exactly; this module
builds that induced chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility.markov import MarkovChain
from ..core.strategies.constrained_ml import ConstrainedMLController
from ..core.strategies.myopic_online import MyopicOnlineController

__all__ = [
    "ct_series",
    "simulate_ct_samples",
    "CMLInducedChain",
    "build_cml_induced_chain",
    "estimate_expected_ct",
]


def ct_series(
    chain: MarkovChain, user_trajectory: np.ndarray, chaff_trajectory: np.ndarray
) -> np.ndarray:
    """The ``c_t`` series (length ``T``) for a realised user/chaff pair."""
    user = np.asarray(user_trajectory, dtype=np.int64)
    chaff = np.asarray(chaff_trajectory, dtype=np.int64)
    if user.shape != chaff.shape or user.ndim != 1 or user.size == 0:
        raise ValueError("user and chaff trajectories must be equal-length 1-D arrays")
    user_steps = chain.stepwise_log_likelihood(user)
    chaff_steps = chain.stepwise_log_likelihood(chaff)
    return user_steps - chaff_steps


def simulate_ct_samples(
    chain: MarkovChain,
    strategy_name: str,
    horizon: int,
    n_runs: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``c_t`` values (t > 1) under the CML or MO strategy.

    Returns a flat array of per-slot ``c_t`` samples pooled over
    ``n_runs`` independent episodes, which is what Fig. 6 plots as a CDF.
    """
    if horizon < 2:
        raise ValueError("horizon must be at least 2")
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    name = strategy_name.upper()
    samples = []
    for _ in range(n_runs):
        user = chain.sample_trajectory(horizon, rng)
        if name == "CML":
            chaff = ConstrainedMLController(chain).run(user)
        elif name == "MO":
            chaff = MyopicOnlineController(chain).run(user)
        else:
            raise ValueError("strategy_name must be 'CML' or 'MO'")
        samples.append(ct_series(chain, user, chaff)[1:])
    return np.concatenate(samples)


@dataclass(frozen=True)
class CMLInducedChain:
    """The Markov chain ``y_t = (x_{1,t}, x_{2,t})`` under the CML strategy.

    Attributes
    ----------
    transition_matrix:
        ``(L^2, L^2)`` transition matrix of the pair chain (Eq. 17).
    stationary:
        Stationary (long-run) distribution of the pair chain, obtained by
        power iteration (the chain's chaff component is deterministic, so
        the limit of the averaged distribution is used).
    expected_ct:
        ``E[c_t]`` under the stationary distribution.
    g_values:
        ``g(y) = E[c_t | y_{t-1} = y]`` for every pair state (Eq. 18).
    n_cells:
        Number of cells ``L`` of the underlying mobility model.
    """

    transition_matrix: np.ndarray
    stationary: np.ndarray
    expected_ct: float
    g_values: np.ndarray
    n_cells: int

    def pair_index(self, user_cell: int, chaff_cell: int) -> int:
        """Flat index of the pair state ``(user_cell, chaff_cell)``."""
        if not (0 <= user_cell < self.n_cells and 0 <= chaff_cell < self.n_cells):
            raise ValueError("cell index out of range")
        return user_cell * self.n_cells + chaff_cell

    @property
    def delta(self) -> float:
        """The constant ``delta`` of Lemma V.2:
        ``min(sum_y |g(y)|, 2 max_y |g(y)|)``."""
        abs_g = np.abs(self.g_values)
        return float(min(abs_g.sum(), 2.0 * abs_g.max()))

    def mixing_time(self, epsilon: float = 0.25, *, max_steps: int = 2000) -> int:
        """Cesàro ``epsilon``-mixing time of the pair chain.

        The pair chain can be periodic (its chaff component is a
        deterministic function of the past), so we measure convergence of
        the running average of ``P^t(y0, .)`` to the stationary vector,
        which is what the sub-chain decomposition of Lemma V.2 needs in
        practice.  Returns ``max_steps`` if the target is not reached.
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        P = self.transition_matrix
        n = P.shape[0]
        power = np.eye(n)
        average = np.zeros((n, n))
        for t in range(1, max_steps + 1):
            power = power @ P
            average += (power - average) / t
            distance = 0.5 * np.abs(average - self.stationary[None, :]).sum(axis=1).max()
            if distance <= epsilon:
                return t
        return max_steps


def build_cml_induced_chain(chain: MarkovChain) -> CMLInducedChain:
    """Construct the induced pair chain of Eq. (17) for the CML strategy."""
    L = chain.n_states
    if L < 2:
        raise ValueError("need at least two cells for the CML strategy")
    # The pair chain is an (L^2, L^2) dense construction; the accessor's
    # size guard keeps a city-scale sparse chain from landing here.
    P = chain.dense_transition()
    log_P = chain.log_transition_matrix
    size = L * L
    pair_matrix = np.zeros((size, size), dtype=float)
    # Pre-compute the CML response f(x1_t, x2_{t-1}): most likely successor
    # of the chaff's previous cell excluding the user's current cell.
    response = np.empty((L, L), dtype=np.int64)  # [x1_t, x2_prev]
    for chaff_prev in range(L):
        row = P[chaff_prev]
        order = np.argsort(-row)
        best, second = int(order[0]), int(order[1])
        for user_now in range(L):
            response[user_now, chaff_prev] = second if best == user_now else best
    for user_prev in range(L):
        for chaff_prev in range(L):
            source = user_prev * L + chaff_prev
            for user_now in range(L):
                probability = P[user_prev, user_now]
                if probability <= 0:
                    continue
                chaff_now = int(response[user_now, chaff_prev])
                target = user_now * L + chaff_now
                pair_matrix[source, target] += probability

    # Long-run distribution by power iteration of the averaged distribution
    # (the chain may be periodic / multi-chain; the Cesàro limit exists).
    initial = np.repeat(chain.stationary, L) / L
    current = initial.copy()
    average = np.zeros(size)
    for t in range(1, 2000 + 1):
        current = current @ pair_matrix
        average += (current - average) / t
        if t > 10 and np.abs(average @ pair_matrix - average).max() < 1e-10:
            break
    stationary = average / average.sum()

    # g(y) = E[c_t | y_{t-1} = y]
    g_values = np.zeros(size, dtype=float)
    for user_prev in range(L):
        for chaff_prev in range(L):
            source = user_prev * L + chaff_prev
            value = 0.0
            for user_now in range(L):
                probability = P[user_prev, user_now]
                if probability <= 0:
                    continue
                chaff_now = int(response[user_now, chaff_prev])
                ct = float(log_P[user_prev, user_now] - log_P[chaff_prev, chaff_now])
                value += probability * ct
            g_values[source] = value
    expected_ct = float(stationary @ g_values)
    return CMLInducedChain(
        transition_matrix=pair_matrix,
        stationary=stationary,
        expected_ct=expected_ct,
        g_values=g_values,
        n_cells=L,
    )


def estimate_expected_ct(
    chain: MarkovChain,
    strategy_name: str,
    *,
    horizon: int = 200,
    n_runs: int = 50,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of ``E[c_t]`` (t > 1) under CML or MO.

    Used for the MO strategy, whose induced chain has a continuous state
    component (``gamma_t``) and therefore no tractable exact stationary
    distribution.
    """
    rng = rng or np.random.default_rng(0)
    samples = simulate_ct_samples(chain, strategy_name, horizon, n_runs, rng)
    return float(samples.mean())
