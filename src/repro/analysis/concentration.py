"""Concentration inequalities used in the performance analysis (Section V).

Lemma V.3 of the paper generalises the Chernoff-Hoeffding bound to random
variables whose conditional means are only known up to an ``epsilon``
slack: for ``X_1, ..., X_n`` with range ``[a, b]`` and
``E[X_t | X_1..X_{t-1}] in [mu - eps, mu]``,

    Pr{ S_n >= n (mu + Delta) } <= exp( -2 n Delta^2 / (b - a + eps)^2 ).

These bounds power Theorems V.4 / V.5 via the sub-chain decomposition of
Lemma V.2.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "hoeffding_bound",
    "lemma_v3_bound",
    "empirical_tail_probability",
]


def hoeffding_bound(n: int, delta: float, a: float, b: float) -> float:
    """Classic Hoeffding tail bound ``exp(-2 n delta^2 / (b - a)^2)``.

    Bounds ``Pr{ S_n / n >= mu + delta }`` for independent variables in
    ``[a, b]`` with mean ``mu``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if b <= a:
        raise ValueError("range must satisfy b > a")
    return float(math.exp(-2.0 * n * delta**2 / (b - a) ** 2))


def lemma_v3_bound(n: int, delta: float, a: float, b: float, epsilon: float) -> float:
    """The generalised bound of Lemma V.3.

    Parameters
    ----------
    n:
        Number of summands.
    delta:
        Deviation above the conditional-mean upper bound ``mu``.
    a, b:
        Range of each variable.
    epsilon:
        Slack in the conditional mean (``E[X_t | past] in [mu - eps, mu]``).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if b <= a:
        raise ValueError("range must satisfy b > a")
    return float(math.exp(-2.0 * n * delta**2 / (b - a + epsilon) ** 2))


def empirical_tail_probability(
    samples: np.ndarray, threshold: float
) -> float:
    """Empirical ``Pr{ mean(sample) >= threshold }`` across sample rows.

    ``samples`` is an ``(n_runs, n)`` array; each row is one realisation of
    the summands.  Used in tests to check that the analytic bounds really
    dominate the simulated tail probabilities.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError("samples must be a non-empty (n_runs, n) array")
    means = arr.mean(axis=1)
    return float(np.mean(means >= threshold))
