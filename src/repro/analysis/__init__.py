"""Analysis: information measures, concentration bounds and Section V results."""

from .information import (
    conditional_step_entropy,
    entropy,
    entropy_gap_condition,
    kl_divergence,
    spatial_skewness,
    temporal_skewness,
)
from .concentration import (
    empirical_tail_probability,
    hoeffding_bound,
    lemma_v3_bound,
)
from .loglik import (
    CMLInducedChain,
    build_cml_induced_chain,
    ct_series,
    estimate_expected_ct,
    simulate_ct_samples,
)
from .bounds import (
    LikelihoodGapConstants,
    cml_tracking_bound,
    corollary_v6_bound,
    im_tracking_accuracy,
    im_tracking_accuracy_limit,
    lemma_v1_holds,
    likelihood_gap_constants,
    ml_tracking_accuracy,
    mo_tracking_bound,
    theorem_v4_bound,
    theorem_v5_bound,
)
from .metrics import (
    TrackingStatistics,
    aggregate_episodes,
    detection_rate,
    per_slot_accuracy,
    time_average_accuracy,
)

__all__ = [
    "conditional_step_entropy",
    "entropy",
    "entropy_gap_condition",
    "kl_divergence",
    "spatial_skewness",
    "temporal_skewness",
    "empirical_tail_probability",
    "hoeffding_bound",
    "lemma_v3_bound",
    "CMLInducedChain",
    "build_cml_induced_chain",
    "ct_series",
    "estimate_expected_ct",
    "simulate_ct_samples",
    "LikelihoodGapConstants",
    "cml_tracking_bound",
    "corollary_v6_bound",
    "im_tracking_accuracy",
    "im_tracking_accuracy_limit",
    "lemma_v1_holds",
    "likelihood_gap_constants",
    "ml_tracking_accuracy",
    "mo_tracking_bound",
    "theorem_v4_bound",
    "theorem_v5_bound",
    "TrackingStatistics",
    "aggregate_episodes",
    "detection_rate",
    "per_slot_accuracy",
    "time_average_accuracy",
]
