"""Closed forms and bounds from the performance analysis (Section V).

Implemented results:

* Eq. (11)  — exact tracking accuracy of the IM strategy.
* Eq. (12)  — tracking accuracy of the ML strategy given its chaff
  trajectory.
* Lemma V.1 — ``sum_x pi(x)^2 <= max_x pi(x)``.
* Theorem V.4 — exponential-decay bound on the CML (and hence OO)
  tracking accuracy, built from the induced pair chain of Eq. (17).
* Theorem V.5 / Corollary V.6 — the analogous bounds for the MO strategy,
  expressed as formulas over estimated parameters (the MO induced chain
  has a continuous component, so its parameters are estimated by
  simulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..mobility.markov import MarkovChain
from ..numerics import LOG_FLOOR
from ..core.trellis import most_likely_trajectory
from .loglik import build_cml_induced_chain, estimate_expected_ct

__all__ = [
    "im_tracking_accuracy",
    "im_tracking_accuracy_limit",
    "ml_tracking_accuracy",
    "lemma_v1_holds",
    "LikelihoodGapConstants",
    "likelihood_gap_constants",
    "theorem_v4_bound",
    "cml_tracking_bound",
    "theorem_v5_bound",
    "mo_tracking_bound",
    "corollary_v6_bound",
]


def im_tracking_accuracy(chain: MarkovChain, n_services: int) -> float:
    """Eq. (11): exact tracking accuracy under the IM strategy.

    ``P_IM = sum_x pi(x)^2 + (1 - sum_x pi(x)^2) / N`` where ``N`` is the
    total number of trajectories (user + chaffs).
    """
    if n_services < 2:
        raise ValueError("IM requires at least one chaff (n_services >= 2)")
    collision = chain.stationary_collision_probability()
    return collision + (1.0 - collision) / n_services


def im_tracking_accuracy_limit(chain: MarkovChain) -> float:
    """Limit of Eq. (11) as the number of chaffs grows: ``sum_x pi(x)^2``."""
    return chain.stationary_collision_probability()


def ml_tracking_accuracy(chain: MarkovChain, horizon: int) -> float:
    """Eq. (12): tracking accuracy under the ML strategy.

    The ML chaff trajectory is deterministic, so the accuracy is the
    average stationary probability of the cells it occupies.
    """
    chaff = most_likely_trajectory(chain, horizon)
    return float(chain.stationary[chaff].mean())


def lemma_v1_holds(distribution: np.ndarray, *, atol: float = 1e-12) -> bool:
    """Check Lemma V.1: ``sum_x pi(x)^2 <= max_x pi(x)``."""
    pi = np.asarray(distribution, dtype=float)
    return bool(np.sum(pi**2) <= np.max(pi) + atol)


@dataclass(frozen=True)
class LikelihoodGapConstants:
    """The constants ``c0``, ``c_min``, ``c_max`` of Section V-C2.

    ``c0 = log(pi_max / pi_2)`` bounds the first-slot gap, ``c_min`` and
    ``c_max`` bound the per-slot gap for ``t > 1``:
    ``c_min = log(p_min / p_max)``, ``c_max = log(p_max / p_2)`` where
    ``p_min``/``p_max`` are the smallest/largest positive transition
    probabilities and ``p_2`` is the smallest second-largest row entry.
    """

    c0: float
    c_min: float
    c_max: float


def likelihood_gap_constants(chain: MarkovChain) -> LikelihoodGapConstants:
    """Compute ``c0``, ``c_min`` and ``c_max`` for a mobility model."""
    pi = chain.stationary
    if chain.n_states < 2:
        raise ValueError("need at least two cells")
    sorted_pi = np.sort(pi)[::-1]
    pi_max, pi_2 = float(sorted_pi[0]), float(max(sorted_pi[1], LOG_FLOOR))
    p_min, p_max, second_min = chain.positive_transition_extrema()
    p_2 = float(max(second_min, LOG_FLOOR))
    return LikelihoodGapConstants(
        c0=math.log(pi_max / pi_2),
        c_min=math.log(p_min / p_max),
        c_max=math.log(p_max / p_2),
    )


def theorem_v4_bound(
    *,
    horizon: int,
    mu: float,
    epsilon: float,
    delta: float,
    w: int,
    c0: float,
    c_min: float,
    c_max: float,
) -> float:
    """Evaluate the Theorem V.4 bound formula.

    Returns the right-hand side of Eq. (21); values >= 1 mean the bound is
    vacuous for the given horizon.  Raises ``ValueError`` when the
    theorem's applicability condition ``mu - eps*delta - c0/(T - w) >= 0``
    fails.
    """
    if horizon <= w:
        raise ValueError("horizon must exceed the sub-chain spacing w")
    slack = mu - epsilon * delta - c0 / (horizon - w)
    if slack < 0:
        raise ValueError("Theorem V.4 condition not satisfied for these parameters")
    denominator = (c_max - c_min + 2.0 * epsilon * delta) ** 2
    if denominator <= 0:
        raise ValueError("degenerate denominator in Theorem V.4 bound")
    exponent = -2.0 * (horizon / w - 1.0) * slack**2 / denominator
    return float(w * math.exp(exponent))


def cml_tracking_bound(
    chain: MarkovChain, horizon: int, *, epsilon: float = 0.05
) -> float:
    """Theorem V.4 bound on the CML (and OO) tracking accuracy.

    Builds the induced pair chain of Eq. (17), extracts ``mu``, ``delta``
    and the mixing-time spacing ``w``, and evaluates Eq. (21).  Returns
    ``1.0`` (the trivial bound) when the decay condition ``E[c_t] < 0``
    does not hold or when the horizon is too short for the theorem to
    apply — mirroring how the paper only claims decay under its condition.
    """
    if horizon < 2:
        raise ValueError("horizon must be at least 2")
    induced = build_cml_induced_chain(chain)
    mu = -induced.expected_ct
    if mu <= 0:
        return 1.0
    constants = likelihood_gap_constants(chain)
    w = induced.mixing_time(epsilon) + 1
    delta = induced.delta
    try:
        bound = theorem_v4_bound(
            horizon=horizon,
            mu=mu,
            epsilon=epsilon,
            delta=delta,
            w=w,
            c0=constants.c0,
            c_min=constants.c_min,
            c_max=constants.c_max,
        )
    except ValueError:
        return 1.0
    return min(1.0, bound)


def theorem_v5_bound(
    *,
    horizon: int,
    mu_prime: float,
    epsilon: float,
    delta_prime: float,
    w_prime: int,
    c0: float,
    c_min: float,
    c_max: float,
) -> float:
    """Evaluate the Theorem V.5 bound on the per-slot MO tracking accuracy."""
    if horizon <= w_prime + 1:
        raise ValueError("horizon must exceed w' + 1")
    slack = mu_prime - epsilon * delta_prime - (c0 + c_max) / (horizon - w_prime - 1)
    if slack < 0:
        raise ValueError("Theorem V.5 condition not satisfied for these parameters")
    denominator = (c_max - c_min + 2.0 * epsilon * delta_prime) ** 2
    if denominator <= 0:
        raise ValueError("degenerate denominator in Theorem V.5 bound")
    exponent = -2.0 * ((horizon - w_prime - 1.0) / w_prime) * slack**2 / denominator
    return float(w_prime * math.exp(exponent))


def mo_tracking_bound(
    chain: MarkovChain,
    horizon: int,
    *,
    epsilon: float = 0.05,
    w_prime: int | None = None,
    n_estimation_runs: int = 50,
    rng: np.random.Generator | None = None,
) -> float:
    """Theorem V.5 bound with simulation-estimated MO parameters.

    ``mu'`` and ``delta'`` depend on the MO-induced chain, whose state
    includes the continuous log-likelihood gap; we estimate ``mu'`` by
    Monte-Carlo and take ``delta' = 2 |mu'|`` (the Lemma V.2 definition
    with the estimate substituted for ``max |g'|``).  Returns 1.0 when the
    decay condition fails.
    """
    if horizon < 4:
        raise ValueError("horizon must be at least 4")
    rng = rng or np.random.default_rng(0)
    expected_ct = estimate_expected_ct(
        chain, "MO", horizon=max(horizon, 100), n_runs=n_estimation_runs, rng=rng
    )
    mu_prime = -expected_ct
    if mu_prime <= 0:
        return 1.0
    constants = likelihood_gap_constants(chain)
    if w_prime is None:
        w_prime = chain.mixing_time(epsilon, max_steps=500) + 1
    delta_prime = 2.0 * abs(mu_prime)
    try:
        bound = theorem_v5_bound(
            horizon=horizon,
            mu_prime=mu_prime,
            epsilon=epsilon,
            delta_prime=delta_prime,
            w_prime=w_prime,
            c0=constants.c0,
            c_min=constants.c_min,
            c_max=constants.c_max,
        )
    except ValueError:
        return 1.0
    return min(1.0, bound)


def corollary_v6_bound(
    *,
    horizon: int,
    t0: int,
    alpha: float,
    w_prime: int,
) -> float:
    """Corollary V.6: bound on the time-average MO tracking accuracy.

    ``P_MO <= (1/T) * (T0 - 1 + w' * exp(alpha (w' + 1 - T0)) / (1 - exp(-alpha)))``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not 1 <= t0 <= horizon:
        raise ValueError("t0 must lie in [1, horizon]")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    tail = w_prime * math.exp(alpha * (w_prime + 1 - t0)) / (1.0 - math.exp(-alpha))
    return float(min(1.0, (t0 - 1 + tail) / horizon))
