"""Information-theoretic measures used by the paper.

The paper characterises mobility models along two axes:

* *spatial skewness* — how far the stationary distribution is from
  uniform (Fig. 4);
* *temporal skewness* — the average Kullback-Leibler distance between
  rows of the transition matrix (Section VII-A1 reports 0.44, 0.34, 8.18
  and 8.48 for models (a)-(d)).

It also interprets the decay condition of Theorem V.4 through conditional
entropies: tracking accuracy decays to zero when the user's movement
entropy exceeds the chaff's.
"""

from __future__ import annotations

import numpy as np

from ..mobility.markov import MarkovChain
from ..numerics import safe_log

__all__ = [
    "entropy",
    "kl_divergence",
    "spatial_skewness",
    "temporal_skewness",
    "conditional_step_entropy",
    "entropy_gap_condition",
]


def entropy(distribution: np.ndarray) -> float:
    """Shannon entropy of a pmf in nats (0 log 0 = 0)."""
    p = np.asarray(distribution, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("distribution must be a non-empty 1-D array")
    if np.any(p < -1e-12) or not np.isclose(p.sum(), 1.0, atol=1e-6):
        raise ValueError("distribution must be a probability vector")
    mask = p > 0
    # p[mask] is strictly positive, so the floored log is the raw log.
    return float(-(p[mask] * safe_log(p[mask])).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL divergence ``D(p || q)`` in nats with a floored log for q = 0."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    mask = p > 0
    return float(np.sum(p[mask] * (safe_log(p[mask]) - safe_log(q[mask]))))


def spatial_skewness(chain: MarkovChain) -> float:
    """KL distance of the stationary distribution from uniform.

    Zero iff the stationary distribution is uniform; grows with spatial
    concentration.  This quantifies the "deviation from the uniform
    distribution" the paper uses to describe Fig. 4.
    """
    uniform = np.full(chain.n_states, 1.0 / chain.n_states)
    return kl_divergence(chain.stationary, uniform)


def temporal_skewness(chain: MarkovChain) -> float:
    """Average pairwise KL distance between transition-matrix rows."""
    return chain.mean_kl_row_distance()


def conditional_step_entropy(chain: MarkovChain) -> float:
    """Conditional entropy ``H(X_t | X_{t-1})`` of one movement step (nats)."""
    return chain.entropy_rate()


def entropy_gap_condition(user_chain: MarkovChain, chaff_step_entropy: float) -> bool:
    """Theorem V.4's decay condition in entropy form.

    Tracking accuracy under CML/OO decays to zero when the user's
    conditional movement entropy exceeds the chaff's, i.e.
    ``H(X_1,t | X_1,t-1) > H(X_2,t | X_2,t-1)``.
    """
    if chaff_step_entropy < 0:
        raise ValueError("entropy cannot be negative")
    return conditional_step_entropy(user_chain) > chaff_step_entropy
