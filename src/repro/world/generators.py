"""Scenario generators: building blocks for dynamic-world timelines.

Three families of events, each seeded through the repo-wide
:mod:`~repro.sim.seeding` SeedSequence discipline so generated worlds are
reproducible, cacheable and worker-count independent:

* :func:`periodic_regime_events` — deterministic regime rotation (commute
  / lunch-hour style mobility switching);
* :func:`poisson_site_failures` — site failures arriving as a Poisson
  process with geometric downtimes (failure/recovery pairs);
* :func:`random_user_churn` — a random fraction of users are transient
  sessions with uniformly drawn arrival/departure windows.

:func:`dynamic_timeline` combines all three into one :class:`Timeline`
from a single master seed, which is what the registered ``dynamic``
experiment and the CLI use.
"""

from __future__ import annotations

import numpy as np

from ..mobility.markov import MarkovChain
from ..sim.seeding import as_seed_sequence, spawn_sequences
from .events import (
    RegimeSwitch,
    SiteDown,
    SiteUp,
    UserArrival,
    UserDeparture,
    WorldEvent,
)
from .timeline import Timeline

__all__ = [
    "periodic_regime_events",
    "poisson_site_failures",
    "random_user_churn",
    "dynamic_timeline",
]


def periodic_regime_events(
    horizon: int, period: int, n_regimes: int
) -> tuple[RegimeSwitch, ...]:
    """Rotate through ``n_regimes`` mobility regimes every ``period`` slots.

    The episode starts in regime 0 (the base chain); at slot ``k *
    period`` the world switches to regime ``k % n_regimes``.  With two
    regimes and ``period=25`` over ``T=100`` that is the classic
    commute/lunch alternation: 0, 1, 0, 1.
    """
    if horizon < 1:
        raise ValueError("horizon must be positive")
    if period < 1:
        raise ValueError("period must be positive")
    if n_regimes < 1:
        raise ValueError("n_regimes must be positive")
    return tuple(
        RegimeSwitch(slot=k * period, regime=k % n_regimes)
        for k in range(1, -(-horizon // period))
    )


def poisson_site_failures(
    horizon: int,
    n_cells: int,
    failure_rate: float,
    seed: "int | np.random.SeedSequence",
    *,
    mean_downtime: float = 5.0,
) -> tuple[WorldEvent, ...]:
    """Site failures as a Poisson process with geometric downtimes.

    Each slot from 1 onward (slot 0 is kept failure-free so the initial
    placement always sees the declared deployment), ``Poisson(
    failure_rate)`` of the currently-up sites fail; each failed site
    recovers after a ``Geometric(1 / mean_downtime)`` downtime.  Every
    failure emits a :class:`SiteDown` and, when the recovery lands inside
    the horizon, the matching :class:`SiteUp`.
    """
    if horizon < 1:
        raise ValueError("horizon must be positive")
    if n_cells < 1:
        raise ValueError("n_cells must be positive")
    if failure_rate < 0:
        raise ValueError("failure_rate must be non-negative")
    if mean_downtime < 1:
        raise ValueError("mean_downtime must be at least 1 slot")
    rng = np.random.default_rng(as_seed_sequence(seed))
    up_until = np.zeros(n_cells, dtype=np.int64)  # first slot the site is up again
    events: list[WorldEvent] = []
    for slot in range(1, horizon):
        failures = int(rng.poisson(failure_rate))
        if failures == 0:
            continue
        up = np.flatnonzero(up_until <= slot)
        if up.size == 0:
            continue
        failed = rng.choice(up, size=min(failures, up.size), replace=False)
        for cell in np.sort(failed):
            downtime = int(rng.geometric(1.0 / mean_downtime))
            events.append(SiteDown(slot=slot, cell=int(cell)))
            up_until[cell] = slot + downtime
            if slot + downtime < horizon:
                events.append(SiteUp(slot=slot + downtime, cell=int(cell)))
    return tuple(events)


def random_user_churn(
    horizon: int,
    n_users: int,
    churn_rate: float,
    seed: "int | np.random.SeedSequence",
) -> tuple[WorldEvent, ...]:
    """Mark a random ``churn_rate`` fraction of users as transient sessions.

    Each user independently churns with probability ``churn_rate``; a
    churned user arrives uniformly in the first half of the episode and
    departs uniformly afterwards (always keeping at least one active
    slot).  Non-churned users are present for the whole episode.
    """
    if horizon < 1:
        raise ValueError("horizon must be positive")
    if n_users < 1:
        raise ValueError("n_users must be positive")
    if not 0.0 <= churn_rate <= 1.0:
        raise ValueError("churn_rate must be in [0, 1]")
    rng = np.random.default_rng(as_seed_sequence(seed))
    events: list[WorldEvent] = []
    for user in range(n_users):
        if rng.random() >= churn_rate:
            continue
        arrival = int(rng.integers(0, horizon // 2 + 1))
        departure = int(rng.integers(arrival + 1, horizon + 1))
        if arrival > 0:
            events.append(UserArrival(slot=arrival, user=user))
        if departure < horizon:
            events.append(UserDeparture(slot=departure, user=user))
    return tuple(events)


def dynamic_timeline(
    *,
    horizon: int,
    n_cells: int,
    n_users: int,
    seed: "int | np.random.SeedSequence",
    regime_chains: "tuple[MarkovChain, ...]" = (),
    regime_period: int | None = None,
    failure_rate: float = 0.0,
    churn_rate: float = 0.0,
    mean_downtime: float = 5.0,
) -> Timeline:
    """One :class:`Timeline` combining regimes, failures and churn.

    All randomness derives from two spawned children of ``seed`` (one for
    failures, one for churn; the regime rotation is deterministic).  An
    integer seed is mixed with the ``"world"`` key so a timeline never
    shares streams with the mobility sampling of the episode it drives;
    spawned children are already scoped by their ancestry.
    """
    key = None if isinstance(seed, np.random.SeedSequence) else "world"
    children = spawn_sequences(seed, 2, key=key)
    events: list[WorldEvent] = []
    if regime_period is not None and regime_chains:
        events.extend(
            periodic_regime_events(horizon, regime_period, len(regime_chains) + 1)
        )
    if failure_rate > 0:
        events.extend(
            poisson_site_failures(
                horizon,
                n_cells,
                failure_rate,
                children[0],
                mean_downtime=mean_downtime,
            )
        )
    if churn_rate > 0:
        events.extend(random_user_churn(horizon, n_users, churn_rate, children[1]))
    return Timeline(events=tuple(events), regime_chains=tuple(regime_chains))
