"""Dynamic worlds: time-varying mobility, topology events and user churn.

The world layer sits *below* every simulation layer: a
:class:`~repro.world.timeline.Timeline` of typed events
(:mod:`~repro.world.events`) compiles into dense per-slot state — the
mobility regime, the effective per-site capacities and the per-user
activity windows — which the mobility, placement, fleet and experiment
layers consume instead of assuming an episode-constant world.

Layer diagram::

    world (Timeline)  →  mobility (regime stacks)  →  mec (capacity views,
    evictions, churned placements)  →  fleet (masked batch kernels)  →
    sim/experiments/CLI (the ``dynamic`` experiment)

An empty timeline is the frozen world: every consumer is bit-identical to
the static code path in that case.
"""

from .events import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    UserArrival,
    UserDeparture,
    WorldEvent,
)
from .generators import (
    dynamic_timeline,
    periodic_regime_events,
    poisson_site_failures,
    random_user_churn,
)
from .timeline import Timeline, WorldSchedule

__all__ = [
    "WorldEvent",
    "RegimeSwitch",
    "SiteDown",
    "SiteUp",
    "CapacityChange",
    "UserArrival",
    "UserDeparture",
    "Timeline",
    "WorldSchedule",
    "periodic_regime_events",
    "poisson_site_failures",
    "random_user_churn",
    "dynamic_timeline",
]
