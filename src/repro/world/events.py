"""Typed world events: everything that can change mid-episode.

The static simulator assumes a frozen world — one mobility model for all
``T`` slots, every edge site at its declared capacity forever, all ``M``
users present from slot 0 to slot ``T``.  Real MEC deployments are not
frozen: mobility regimes switch (commute vs. lunch hours), sites fail and
recover, capacities are re-provisioned, and users arrive and depart
mid-episode.  Each of those facts is one event type here; a
:class:`~repro.world.timeline.Timeline` is an ordered collection of them.

Every event carries the ``slot`` at which it takes effect; its effect
persists until another event overrides it.  Events are plain frozen
dataclasses so timelines pickle cleanly into the parallel workers and
hash stably into the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WorldEvent",
    "RegimeSwitch",
    "SiteDown",
    "SiteUp",
    "CapacityChange",
    "UserArrival",
    "UserDeparture",
]


@dataclass(frozen=True)
class WorldEvent:
    """Base class: something that changes the world at one slot.

    Attributes
    ----------
    slot:
        First slot at which the event's effect is visible.  Events at
        slots past the episode horizon are ignored at compile time (open
        -ended generators may emit them).
    """

    slot: int

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError("event slot must be non-negative")


@dataclass(frozen=True)
class RegimeSwitch(WorldEvent):
    """From ``slot`` onward, mobility follows regime ``regime``.

    Regime ``0`` is always the simulation's base mobility chain; regime
    ``k >= 1`` selects ``timeline.regime_chains[k - 1]``.  The transition
    *into* slot ``t`` is governed by the regime in effect at slot ``t``.
    """

    regime: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.regime < 0:
            raise ValueError("regime index must be non-negative")


@dataclass(frozen=True)
class SiteDown(WorldEvent):
    """Edge site ``cell`` fails at ``slot``: its capacity drops to zero.

    Services hosted there are forcibly evicted to the nearest site with a
    free slot (a charged migration); if no site has room they are
    *stranded* on the failed site until capacity reappears.
    """

    cell: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cell < 0:
            raise ValueError("cell must be non-negative")


@dataclass(frozen=True)
class SiteUp(WorldEvent):
    """Edge site ``cell`` recovers at ``slot``.

    The site returns to its *declared* capacity: the topology's base
    capacity, or the most recent :class:`CapacityChange` value if one was
    applied earlier on the timeline.
    """

    cell: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cell < 0:
            raise ValueError("cell must be non-negative")


@dataclass(frozen=True)
class CapacityChange(WorldEvent):
    """Edge site ``cell`` is re-provisioned to ``capacity`` service slots.

    Takes effect at ``slot`` and persists (it changes the site's declared
    capacity, which is also what a later :class:`SiteUp` restores).  A
    shrink below the site's current load evicts the excess services like
    a failure does.
    """

    cell: int
    capacity: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cell < 0:
            raise ValueError("cell must be non-negative")
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")


@dataclass(frozen=True)
class UserArrival(WorldEvent):
    """User ``user`` joins the deployment at ``slot``.

    A user with an arrival event is inactive before it: none of their
    services (real or chaff) exist on the MEC, and they accrue no cost.
    Their services are instantiated at the planned cells for ``slot``.
    """

    user: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.user < 0:
            raise ValueError("user index must be non-negative")


@dataclass(frozen=True)
class UserDeparture(WorldEvent):
    """User ``user`` leaves the deployment at ``slot``.

    All of the user's services are torn down at ``slot`` (their site
    slots are freed *before* that slot's evictions and arrivals are
    resolved), and the user accrues no further cost.
    """

    user: int

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.user < 0:
            raise ValueError("user index must be non-negative")
