"""The Timeline: an event-sourced description of a dynamic world.

A :class:`Timeline` is an ordered collection of
:mod:`~repro.world.events` plus the mobility chains of any non-base
regimes.  It is *declarative* — nothing happens until
:meth:`Timeline.compile` materialises it against a concrete episode shape
(horizon ``T``, topology with ``L`` cells, ``M`` users) into a
:class:`WorldSchedule`: dense per-slot views that the simulation kernels
consume directly:

* ``regimes`` — ``(T,)`` regime index in effect at each slot (0 = the
  base mobility chain); the transition *into* slot ``t`` follows
  ``regimes[t]``;
* ``capacities`` — ``(T, L)`` effective per-site capacity at each slot
  (0 while a site is down);
* ``user_windows`` — ``(M, 2)`` activity window ``[start, stop)`` of
  each user (``[0, T)`` for users who never churn).

An **empty timeline compiles to the static world**, and the fleet engines
treat it as such — runs with an empty timeline are bit-identical to the
pre-dynamic code path (pinned by golden-seed tests).

Users are restricted to one contiguous activity window (at most one
arrival and one departure); everything else on the timeline may repeat
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mobility.markov import MarkovChain
from .events import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    UserArrival,
    UserDeparture,
    WorldEvent,
)

__all__ = ["Timeline", "WorldSchedule", "ScheduleWindow"]


@dataclass(frozen=True)
class ScheduleWindow:
    """One chunk ``[start, stop)`` of a compiled world schedule.

    The streaming fleet engine consumes the world chunk by chunk; a
    window carries exactly the per-slot views of its own slots plus the
    one-slot lookback context the chunk-boundary transitions need
    (``prev_capacities`` — ``None`` when the window starts at slot 0).
    ``user_windows`` stays absolute (``[arrival, departure)`` in global
    slots) because churn spans chunk boundaries.
    """

    start: int
    stop: int
    regimes: np.ndarray
    capacities: np.ndarray
    user_windows: np.ndarray
    base_capacities: np.ndarray
    matrices: tuple[np.ndarray, ...] = field(repr=False)
    prev_capacities: np.ndarray | None = None
    #: Whether *any* slot of the whole episode runs a non-base regime.
    #: The window must mirror the full schedule's use-the-stack decision
    #: even on all-base windows, so chunked runs stay bit-identical to
    #: the monolithic path (which builds one stack for the episode).
    episode_has_regimes: bool = False

    @property
    def n_slots(self) -> int:
        """Number of slots in the window."""
        return self.stop - self.start

    def active_users(self) -> np.ndarray:
        """The ``(M, n_slots)`` activity mask restricted to the window."""
        slots = np.arange(self.start, self.stop)
        return (self.user_windows[:, :1] <= slots) & (
            slots < self.user_windows[:, 1:]
        )

    def transition_stack(self) -> np.ndarray | None:
        """Per-step matrices of the transitions *into* the window's slots.

        Entry ``k`` governs the transition into slot
        ``max(start, 1) + k`` (slot 0 has no incoming transition), i.e.
        the window's slice of :meth:`WorldSchedule.transition_stack` —
        only ever ``O(n_slots)`` matrices, never the full horizon.
        Returns ``None`` when the episode never leaves the base regime
        (matching the full schedule's decision, even for windows whose
        own slots are all base-regime).
        """
        first = max(self.start, 1)
        if not self.episode_has_regimes or first >= self.stop:
            return None
        covered = self.regimes[first - self.start :]
        return np.stack(
            [self.matrices[int(regime)] for regime in covered], axis=0
        )


@dataclass(frozen=True)
class WorldSchedule:
    """Dense per-slot world state compiled from a :class:`Timeline`.

    Attributes
    ----------
    regimes:
        ``(T,)`` int64 regime index per slot.
    capacities:
        ``(T, L)`` int64 effective per-site capacity per slot.
    user_windows:
        ``(M, 2)`` int64 activity windows ``[start, stop)``.
    base_capacities:
        ``(L,)`` declared (static) capacities the per-slot views derive
        from.
    matrices:
        Transition matrix of each regime index (entry 0 is the base
        chain's).
    """

    regimes: np.ndarray
    capacities: np.ndarray
    user_windows: np.ndarray
    base_capacities: np.ndarray
    matrices: tuple[np.ndarray, ...] = field(repr=False)

    @property
    def horizon(self) -> int:
        """Number of slots ``T``."""
        return int(self.regimes.size)

    @property
    def n_cells(self) -> int:
        """Number of edge sites ``L``."""
        return int(self.capacities.shape[1])

    @property
    def n_users(self) -> int:
        """Number of users ``M``."""
        return int(self.user_windows.shape[0])

    @property
    def has_regime_switches(self) -> bool:
        """Whether any slot runs a non-base mobility regime."""
        return bool(np.any(self.regimes != 0))

    @property
    def has_capacity_events(self) -> bool:
        """Whether any site's capacity ever differs from its declared one.

        Compared against the *base* capacities, not slot 0's view: an
        event at slot 0 that persists for the whole episode (a site that
        is down from the start) is still a capacity event.
        """
        return bool(np.any(self.capacities != self.base_capacities))

    @property
    def has_churn(self) -> bool:
        """Whether any user's window is narrower than the full episode."""
        return bool(
            np.any(self.user_windows[:, 0] != 0)
            or np.any(self.user_windows[:, 1] != self.horizon)
        )

    @property
    def is_static(self) -> bool:
        """Whether the schedule is indistinguishable from a frozen world."""
        return not (
            self.has_regime_switches or self.has_capacity_events or self.has_churn
        )

    def transition_stack(self) -> np.ndarray | None:
        """Per-step ``(T - 1, L, L)`` transition matrices, or ``None``.

        Step ``t - 1`` of the stack governs the transition into slot
        ``t``.  Returns ``None`` when every slot runs the base regime, so
        callers fall back to the (bit-identical) static sampling path.
        """
        if not self.has_regime_switches or self.horizon < 2:
            return None
        return np.stack(
            [self.matrices[int(regime)] for regime in self.regimes[1:]], axis=0
        )

    def active_users(self) -> np.ndarray:
        """The ``(M, T)`` boolean activity mask of all users."""
        slots = np.arange(self.horizon)
        return (self.user_windows[:, :1] <= slots) & (
            slots < self.user_windows[:, 1:]
        )

    def window(self, start: int, stop: int) -> ScheduleWindow:
        """The ``[start, stop)`` chunk of this schedule as a window view.

        Slices of the dense arrays (no copies beyond the lookback row);
        equivalent to :meth:`Timeline.compile_window` on the source
        timeline, which never materialises the dense arrays at all.
        """
        if not 0 <= start < stop <= self.horizon:
            raise ValueError(
                f"window [{start}, {stop}) outside the horizon {self.horizon}"
            )
        return ScheduleWindow(
            start=start,
            stop=stop,
            regimes=self.regimes[start:stop],
            capacities=self.capacities[start:stop],
            user_windows=self.user_windows,
            base_capacities=self.base_capacities,
            matrices=self.matrices,
            prev_capacities=None if start == 0 else self.capacities[start - 1],
            episode_has_regimes=self.has_regime_switches,
        )

    def transition_stack_window(self, start: int, stop: int) -> np.ndarray | None:
        """The window slice of :meth:`transition_stack`, built lazily.

        Only the ``O(stop - start)`` matrices covering the transitions
        into slots ``max(start, 1) .. stop - 1`` are stacked; ``None``
        without regime switches (the static sampling path)."""
        return self.window(start, stop).transition_stack()


@dataclass(frozen=True)
class Timeline:
    """An ordered collection of world events plus the regime chains.

    Attributes
    ----------
    events:
        The events, in any order; compilation applies them in ``(slot,
        position)`` order, so same-slot events take effect in the order
        they appear here.
    regime_chains:
        Mobility chains of regimes ``1 .. len(regime_chains)``; regime 0
        is always the simulation's base chain.
    """

    events: tuple[WorldEvent, ...] = ()
    regime_chains: tuple[MarkovChain, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "regime_chains", tuple(self.regime_chains))
        for event in self.events:
            if not isinstance(event, WorldEvent):
                raise TypeError(f"not a world event: {event!r}")
        for chain in self.regime_chains:
            if not isinstance(chain, MarkovChain):
                raise TypeError("regime_chains must contain MarkovChain objects")

    @property
    def is_empty(self) -> bool:
        """Whether the timeline describes a frozen world."""
        return not self.events

    def _validate_shape(
        self,
        horizon: int,
        n_cells: int,
        n_users: int,
        base_capacities: np.ndarray,
        base_chain: MarkovChain,
    ) -> np.ndarray:
        if horizon < 1:
            raise ValueError("horizon must be positive")
        if n_users < 1:
            raise ValueError("n_users must be positive")
        base = np.asarray(base_capacities, dtype=np.int64)
        if base.shape != (n_cells,):
            raise ValueError("base_capacities must list one capacity per cell")
        if base_chain.n_states != n_cells:
            raise ValueError("base chain and topology disagree on cell count")
        for index, chain in enumerate(self.regime_chains):
            if chain.n_states != n_cells:
                raise ValueError(
                    f"regime chain {index + 1} has {chain.n_states} states, "
                    f"topology has {n_cells} cells"
                )
        return base

    def _replay(
        self,
        start: int,
        stop: int,
        horizon: int,
        n_cells: int,
        n_users: int,
        base: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Replay events through slot ``stop - 1``, materialising only
        ``[start, stop)``.

        Returns ``(regimes, capacities, user_windows, prev_capacities)``
        where the first two cover the window, ``user_windows`` is the
        full absolute ``(M, 2)`` array (churn is global information) and
        ``prev_capacities`` is the slot ``start - 1`` view (``None`` at
        ``start == 0``).  Slots before the window replay their events
        into the carried ``declared`` / ``down`` state without
        allocating their per-slot views, which is what makes chunked
        compilation O(window), not O(horizon).
        """
        ordered = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].slot, pair[0])
        )

        width = stop - start
        regimes = np.zeros(width, dtype=np.int64)
        declared = base.copy()
        down = np.zeros(n_cells, dtype=bool)
        capacities = np.empty((width, n_cells), dtype=np.int64)
        prev_capacities: np.ndarray | None = None
        arrivals = np.full(n_users, -1, dtype=np.int64)
        departures = np.full(n_users, -1, dtype=np.int64)
        current_regime = 0

        pointer = 0
        for slot in range(stop):
            while pointer < len(ordered) and ordered[pointer][1].slot == slot:
                event = ordered[pointer][1]
                pointer += 1
                if isinstance(event, RegimeSwitch):
                    if event.regime > len(self.regime_chains):
                        raise ValueError(
                            f"regime {event.regime} undefined: timeline has "
                            f"{len(self.regime_chains)} regime chains"
                        )
                    current_regime = event.regime
                elif isinstance(event, (SiteDown, SiteUp, CapacityChange)):
                    if event.cell >= n_cells:
                        raise ValueError(
                            f"event cell {event.cell} outside the topology"
                        )
                    if isinstance(event, SiteDown):
                        down[event.cell] = True
                    elif isinstance(event, SiteUp):
                        down[event.cell] = False
                    else:
                        declared[event.cell] = event.capacity
                elif isinstance(event, (UserArrival, UserDeparture)):
                    if event.user >= n_users:
                        raise ValueError(
                            f"event user {event.user} outside the fleet"
                        )
                    record = (
                        arrivals if isinstance(event, UserArrival) else departures
                    )
                    if record[event.user] >= 0:
                        raise ValueError(
                            f"user {event.user} has more than one "
                            f"{'arrival' if record is arrivals else 'departure'}; "
                            "windows must be contiguous"
                        )
                    record[event.user] = slot
                else:  # pragma: no cover - sealed hierarchy
                    raise TypeError(f"unhandled event type: {type(event)!r}")
            if slot >= start:
                regimes[slot - start] = current_regime
                capacities[slot - start] = np.where(down, 0, declared)
            elif slot == start - 1:
                prev_capacities = np.where(down, 0, declared)

        # Churn is global information: a window must know about arrivals
        # and departures *after* itself too, so the in-horizon tail of
        # the event list is still scanned (events at or past the horizon
        # stay ignored, exactly as in a full compile).
        for _, event in ordered[pointer:]:
            if event.slot >= horizon:
                break
            if isinstance(event, (UserArrival, UserDeparture)):
                if event.user >= n_users:
                    raise ValueError(f"event user {event.user} outside the fleet")
                record = arrivals if isinstance(event, UserArrival) else departures
                if record[event.user] >= 0:
                    raise ValueError(
                        f"user {event.user} has more than one "
                        f"{'arrival' if record is arrivals else 'departure'}; "
                        "windows must be contiguous"
                    )
                record[event.user] = event.slot

        for event in self.events:
            if isinstance(event, UserArrival) and event.slot >= horizon:
                raise ValueError(
                    f"user {event.user} arrives at slot {event.slot}, past the "
                    f"horizon {horizon}: the user would never be active"
                )

        windows = np.empty((n_users, 2), dtype=np.int64)
        windows[:, 0] = np.where(arrivals >= 0, arrivals, 0)
        windows[:, 1] = np.where(departures >= 0, departures, horizon)
        bad = np.flatnonzero(windows[:, 0] >= windows[:, 1])
        if bad.size:
            raise ValueError(
                f"user {int(bad[0])} has an empty activity window "
                f"[{int(windows[bad[0], 0])}, {int(windows[bad[0], 1])})"
            )
        return regimes, capacities, windows, prev_capacities

    def compile(
        self,
        *,
        horizon: int,
        n_cells: int,
        n_users: int,
        base_capacities: np.ndarray,
        base_chain: MarkovChain,
    ) -> WorldSchedule:
        """Materialise the timeline against one episode shape.

        Events at slots ``>= horizon`` are ignored (open-ended generators
        emit them freely), except that a user whose *arrival* lies beyond
        the horizon would never be active — that is an error.
        """
        base = self._validate_shape(
            horizon, n_cells, n_users, base_capacities, base_chain
        )
        regimes, capacities, windows, _ = self._replay(
            0, horizon, horizon, n_cells, n_users, base
        )
        matrices = (
            base_chain.dense_transition(),
            *(chain.dense_transition() for chain in self.regime_chains),
        )
        return WorldSchedule(
            regimes=regimes,
            capacities=capacities,
            user_windows=windows,
            base_capacities=base,
            matrices=matrices,
        )

    def compile_window(
        self,
        start: int,
        stop: int,
        *,
        horizon: int,
        n_cells: int,
        n_users: int,
        base_capacities: np.ndarray,
        base_chain: MarkovChain,
    ) -> ScheduleWindow:
        """Compile only the ``[start, stop)`` chunk of the schedule.

        Equivalent to ``compile(...).window(start, stop)`` slot for slot,
        but the dense per-slot views are materialised for the window
        alone — earlier slots replay their events into O(L) carried
        state.  This is what lets the streaming fleet engine walk a
        large-``T`` dynamic world without an O(T·L) schedule in memory.
        """
        base = self._validate_shape(
            horizon, n_cells, n_users, base_capacities, base_chain
        )
        if not 0 <= start < stop <= horizon:
            raise ValueError(
                f"window [{start}, {stop}) outside the horizon {horizon}"
            )
        regimes, capacities, windows, prev_capacities = self._replay(
            start, stop, horizon, n_cells, n_users, base
        )
        matrices = (
            base_chain.dense_transition(),
            *(chain.dense_transition() for chain in self.regime_chains),
        )
        episode_has_regimes = any(
            isinstance(event, RegimeSwitch)
            and event.regime != 0
            and event.slot < horizon
            for event in self.events
        )
        return ScheduleWindow(
            start=start,
            stop=stop,
            regimes=regimes,
            capacities=capacities,
            user_windows=windows,
            base_capacities=base,
            matrices=matrices,
            prev_capacities=prev_capacities,
            episode_has_regimes=episode_has_regimes,
        )
