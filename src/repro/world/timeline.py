"""The Timeline: an event-sourced description of a dynamic world.

A :class:`Timeline` is an ordered collection of
:mod:`~repro.world.events` plus the mobility chains of any non-base
regimes.  It is *declarative* — nothing happens until
:meth:`Timeline.compile` materialises it against a concrete episode shape
(horizon ``T``, topology with ``L`` cells, ``M`` users) into a
:class:`WorldSchedule`: dense per-slot views that the simulation kernels
consume directly:

* ``regimes`` — ``(T,)`` regime index in effect at each slot (0 = the
  base mobility chain); the transition *into* slot ``t`` follows
  ``regimes[t]``;
* ``capacities`` — ``(T, L)`` effective per-site capacity at each slot
  (0 while a site is down);
* ``user_windows`` — ``(M, 2)`` activity window ``[start, stop)`` of
  each user (``[0, T)`` for users who never churn).

An **empty timeline compiles to the static world**, and the fleet engines
treat it as such — runs with an empty timeline are bit-identical to the
pre-dynamic code path (pinned by golden-seed tests).

Users are restricted to one contiguous activity window (at most one
arrival and one departure); everything else on the timeline may repeat
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mobility.markov import MarkovChain
from .events import (
    CapacityChange,
    RegimeSwitch,
    SiteDown,
    SiteUp,
    UserArrival,
    UserDeparture,
    WorldEvent,
)

__all__ = ["Timeline", "WorldSchedule"]


@dataclass(frozen=True)
class WorldSchedule:
    """Dense per-slot world state compiled from a :class:`Timeline`.

    Attributes
    ----------
    regimes:
        ``(T,)`` int64 regime index per slot.
    capacities:
        ``(T, L)`` int64 effective per-site capacity per slot.
    user_windows:
        ``(M, 2)`` int64 activity windows ``[start, stop)``.
    base_capacities:
        ``(L,)`` declared (static) capacities the per-slot views derive
        from.
    matrices:
        Transition matrix of each regime index (entry 0 is the base
        chain's).
    """

    regimes: np.ndarray
    capacities: np.ndarray
    user_windows: np.ndarray
    base_capacities: np.ndarray
    matrices: tuple[np.ndarray, ...] = field(repr=False)

    @property
    def horizon(self) -> int:
        """Number of slots ``T``."""
        return int(self.regimes.size)

    @property
    def n_cells(self) -> int:
        """Number of edge sites ``L``."""
        return int(self.capacities.shape[1])

    @property
    def n_users(self) -> int:
        """Number of users ``M``."""
        return int(self.user_windows.shape[0])

    @property
    def has_regime_switches(self) -> bool:
        """Whether any slot runs a non-base mobility regime."""
        return bool(np.any(self.regimes != 0))

    @property
    def has_capacity_events(self) -> bool:
        """Whether any site's capacity ever differs from its declared one.

        Compared against the *base* capacities, not slot 0's view: an
        event at slot 0 that persists for the whole episode (a site that
        is down from the start) is still a capacity event.
        """
        return bool(np.any(self.capacities != self.base_capacities))

    @property
    def has_churn(self) -> bool:
        """Whether any user's window is narrower than the full episode."""
        return bool(
            np.any(self.user_windows[:, 0] != 0)
            or np.any(self.user_windows[:, 1] != self.horizon)
        )

    @property
    def is_static(self) -> bool:
        """Whether the schedule is indistinguishable from a frozen world."""
        return not (
            self.has_regime_switches or self.has_capacity_events or self.has_churn
        )

    def transition_stack(self) -> np.ndarray | None:
        """Per-step ``(T - 1, L, L)`` transition matrices, or ``None``.

        Step ``t - 1`` of the stack governs the transition into slot
        ``t``.  Returns ``None`` when every slot runs the base regime, so
        callers fall back to the (bit-identical) static sampling path.
        """
        if not self.has_regime_switches or self.horizon < 2:
            return None
        return np.stack(
            [self.matrices[int(regime)] for regime in self.regimes[1:]], axis=0
        )

    def active_users(self) -> np.ndarray:
        """The ``(M, T)`` boolean activity mask of all users."""
        slots = np.arange(self.horizon)
        return (self.user_windows[:, :1] <= slots) & (
            slots < self.user_windows[:, 1:]
        )


@dataclass(frozen=True)
class Timeline:
    """An ordered collection of world events plus the regime chains.

    Attributes
    ----------
    events:
        The events, in any order; compilation applies them in ``(slot,
        position)`` order, so same-slot events take effect in the order
        they appear here.
    regime_chains:
        Mobility chains of regimes ``1 .. len(regime_chains)``; regime 0
        is always the simulation's base chain.
    """

    events: tuple[WorldEvent, ...] = ()
    regime_chains: tuple[MarkovChain, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "regime_chains", tuple(self.regime_chains))
        for event in self.events:
            if not isinstance(event, WorldEvent):
                raise TypeError(f"not a world event: {event!r}")
        for chain in self.regime_chains:
            if not isinstance(chain, MarkovChain):
                raise TypeError("regime_chains must contain MarkovChain objects")

    @property
    def is_empty(self) -> bool:
        """Whether the timeline describes a frozen world."""
        return not self.events

    def compile(
        self,
        *,
        horizon: int,
        n_cells: int,
        n_users: int,
        base_capacities: np.ndarray,
        base_chain: MarkovChain,
    ) -> WorldSchedule:
        """Materialise the timeline against one episode shape.

        Events at slots ``>= horizon`` are ignored (open-ended generators
        emit them freely), except that a user whose *arrival* lies beyond
        the horizon would never be active — that is an error.
        """
        if horizon < 1:
            raise ValueError("horizon must be positive")
        if n_users < 1:
            raise ValueError("n_users must be positive")
        base = np.asarray(base_capacities, dtype=np.int64)
        if base.shape != (n_cells,):
            raise ValueError("base_capacities must list one capacity per cell")
        if base_chain.n_states != n_cells:
            raise ValueError("base chain and topology disagree on cell count")
        for index, chain in enumerate(self.regime_chains):
            if chain.n_states != n_cells:
                raise ValueError(
                    f"regime chain {index + 1} has {chain.n_states} states, "
                    f"topology has {n_cells} cells"
                )

        ordered = sorted(
            enumerate(self.events), key=lambda pair: (pair[1].slot, pair[0])
        )

        regimes = np.zeros(horizon, dtype=np.int64)
        declared = base.copy()
        down = np.zeros(n_cells, dtype=bool)
        capacities = np.empty((horizon, n_cells), dtype=np.int64)
        arrivals = np.full(n_users, -1, dtype=np.int64)
        departures = np.full(n_users, -1, dtype=np.int64)

        pointer = 0
        for slot in range(horizon):
            while pointer < len(ordered) and ordered[pointer][1].slot == slot:
                event = ordered[pointer][1]
                pointer += 1
                if isinstance(event, RegimeSwitch):
                    if event.regime > len(self.regime_chains):
                        raise ValueError(
                            f"regime {event.regime} undefined: timeline has "
                            f"{len(self.regime_chains)} regime chains"
                        )
                    regimes[slot:] = event.regime
                elif isinstance(event, (SiteDown, SiteUp, CapacityChange)):
                    if event.cell >= n_cells:
                        raise ValueError(
                            f"event cell {event.cell} outside the topology"
                        )
                    if isinstance(event, SiteDown):
                        down[event.cell] = True
                    elif isinstance(event, SiteUp):
                        down[event.cell] = False
                    else:
                        declared[event.cell] = event.capacity
                elif isinstance(event, (UserArrival, UserDeparture)):
                    if event.user >= n_users:
                        raise ValueError(
                            f"event user {event.user} outside the fleet"
                        )
                    record = (
                        arrivals if isinstance(event, UserArrival) else departures
                    )
                    if record[event.user] >= 0:
                        raise ValueError(
                            f"user {event.user} has more than one "
                            f"{'arrival' if record is arrivals else 'departure'}; "
                            "windows must be contiguous"
                        )
                    record[event.user] = slot
                else:  # pragma: no cover - sealed hierarchy
                    raise TypeError(f"unhandled event type: {type(event)!r}")
            capacities[slot] = np.where(down, 0, declared)

        for event in self.events:
            if isinstance(event, UserArrival) and event.slot >= horizon:
                raise ValueError(
                    f"user {event.user} arrives at slot {event.slot}, past the "
                    f"horizon {horizon}: the user would never be active"
                )

        windows = np.empty((n_users, 2), dtype=np.int64)
        windows[:, 0] = np.where(arrivals >= 0, arrivals, 0)
        windows[:, 1] = np.where(departures >= 0, departures, horizon)
        bad = np.flatnonzero(windows[:, 0] >= windows[:, 1])
        if bad.size:
            raise ValueError(
                f"user {int(bad[0])} has an empty activity window "
                f"[{int(windows[bad[0], 0])}, {int(windows[bad[0], 1])})"
            )

        matrices = (
            base_chain.dense_transition(),
            *(chain.dense_transition() for chain in self.regime_chains),
        )
        return WorldSchedule(
            regimes=regimes,
            capacities=capacities,
            user_windows=windows,
            base_capacities=base,
            matrices=matrices,
        )
