"""Fig. 5: tracking accuracy of the basic (ML) eavesdropper over time.

For each of the four synthetic mobility models, the per-slot tracking
accuracy of the ML detector is plotted for the strategies
IM (N = 2), ML (N = 2), OO (N = 2), MO (N = 2), CML (N = 2) and
IM (N = 10), averaged over Monte-Carlo runs.
"""

from __future__ import annotations

from ..core.eavesdropper.detector import MaximumLikelihoodDetector
from ..mobility.models import paper_synthetic_models
from ..sim.config import SyntheticExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.runner import sweep_strategies
from ..sim.seeding import spawn_sequences

__all__ = ["run_fig5", "FIG5_SERIES"]

#: The (strategy, N) combinations plotted in Fig. 5, in legend order.
FIG5_SERIES: tuple[tuple[str, str, int], ...] = (
    ("IM (N = 2)", "IM", 2),
    ("ML (N = 2)", "ML", 2),
    ("OO (N = 2)", "OO", 2),
    ("MO (N = 2)", "MO", 2),
    ("CML (N = 2)", "CML", 2),
    ("IM (N = 10)", "IM", 10),
)


def run_fig5(config: SyntheticExperimentConfig | None = None) -> ExperimentResult:
    """Run the Fig. 5 sweep and return per-slot accuracy curves."""
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    detector = MaximumLikelihoodDetector()
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    model_children = spawn_sequences(
        config.seed, len(config.mobility_models), key="fig5"
    )
    for model_child, label in zip(model_children, config.mobility_models, strict=True):
        chain = models[label]
        specs = {
            series_label: (strategy_name, n_services)
            for series_label, strategy_name, n_services in FIG5_SERIES
        }
        sweep = sweep_strategies(
            chain,
            detector,
            specs,
            horizon=config.horizon,
            n_runs=config.n_runs,
            seed=model_child,
            model_label=label,
            engine=config.engine,
            workers=config.workers,
        )
        groups[label] = sweep.series()
        for series_label, stats in sweep.statistics.items():
            scalars[f"{label}/{series_label}/tracking"] = stats.tracking_accuracy
    return ExperimentResult(
        experiment_id="fig5",
        description="Tracking accuracy of the basic ML eavesdropper over time",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
